"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this to do
a legacy editable install; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
