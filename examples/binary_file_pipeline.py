#!/usr/bin/env python
"""End-to-end pipeline: binary edge-list file -> distributed ingest ->
community detection -> output.

Mirrors the paper's production flow (§V): graphs are converted to a
binary edge-list format once, then every run ingests the file in
parallel (each rank reads an equal slice of records, MPI-IO style) and
routes edges to their owners.  This example writes such a file, runs
the full SPMD pipeline on it, and verifies the paper's claim that I/O
stays a tiny fraction of the execution time.

Run:  python examples/binary_file_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import LouvainConfig, distributed_louvain
from repro.generators import generate_webgraph
from repro.graph import DistGraph, read_header, write_edgelist
from repro.runtime import run_spmd

RANKS = 6

workdir = Path(tempfile.mkdtemp(prefix="dlouvain-"))
path = workdir / "webcrawl.bin"

print("1. generating a web-crawl-like graph and writing the binary file")
crawl = generate_webgraph(4000, mean_host_size=30, inter_fraction=0.02,
                          seed=7)
nbytes = write_edgelist(path, crawl.edges)
header = read_header(path)
print(
    f"   wrote {path} ({nbytes} bytes, {header.num_vertices} vertices, "
    f"{header.num_edges} edges)"
)


def main(comm):
    # Every rank reads its own slice of the file and participates in
    # routing edges to their owners — no rank ever holds the full graph.
    dg = DistGraph.load_binary(comm, str(path), partition="even_edge")
    local_share = dg.num_local_entries
    result = distributed_louvain(comm, dg, LouvainConfig())
    return local_share, result


print(f"2. running the SPMD pipeline on {RANKS} simulated ranks")
spmd = run_spmd(RANKS, main)
shares = [v[0] for v in spmd.values]
result = spmd.values[0][1]

print(f"   per-rank edge shares: {shares} (even-edge distribution)")
print(f"   {result.summary()}")

print("3. verifying the paper's I/O claim (ingest ~1-2% of runtime)")
fractions = spmd.trace.fraction_by_category()
io_share = fractions.get("io", 0.0)
print(f"   modelled I/O share: {io_share:.1%}")
print()
print(spmd.trace.format())

print()
print(f"communities found: {result.num_communities} "
      f"(planted hosts: {crawl.num_hosts})")
