#!/usr/bin/env python
"""Strong-scaling study: how the distributed Louvain algorithm scales.

Reproduces the methodology behind the paper's Fig. 3 for one input:
run Baseline and the best heuristics across process counts, print the
modelled execution-time curves, speedups, and the time breakdown that
explains where scaling stops (§V-A: the modularity allreduce and the
community-info exchange grow with p while local compute shrinks).

Run:  python examples/scaling_study.py [dataset]
"""

import sys

from repro import LouvainConfig, Variant, run_louvain
from repro.bench import format_table, speedup_table
from repro.generators import dataset, make_graph
from repro.runtime import CORI_HASWELL

NAME = sys.argv[1] if len(sys.argv) > 1 else "web-cc12-PayLevelDomain"
PROCESS_COUNTS = [1, 2, 4, 8, 16]

spec = dataset(NAME)
graph = make_graph(NAME, scale="small")
# Scale the machine model so each synthetic edge represents the right
# number of paper-input edges (keeps the compute/comm balance honest).
machine = CORI_HASWELL.scaled(spec.edge_scale_factor(graph))
print(
    f"input: {NAME} stand-in ({graph.num_vertices} vertices, "
    f"{graph.num_edges} edges; paper: {spec.paper_edges} edges)"
)
print(f"machine model: {machine.name}")

configs = [
    LouvainConfig(variant=Variant.BASELINE),
    LouvainConfig(variant=Variant.ETC, alpha=0.25),
    LouvainConfig(variant=Variant.ET_TC, alpha=0.25),
]

for config in configs:
    curve = []
    last = None
    for p in PROCESS_COUNTS:
        last = run_louvain(graph, p, config, machine=machine)
        curve.append((p, last.elapsed))
    rows = [
        [p, f"{t:.4f}", f"{s:.2f}x"] for p, t, s in speedup_table(curve)
    ]
    print()
    print(
        format_table(
            ["processes", "model time (s)", "speedup"],
            rows,
            title=f"{config.label()}  (final Q={last.modularity:.4f})",
        )
    )

print()
print("time breakdown at the largest process count (Baseline):")
result = run_louvain(
    graph, PROCESS_COUNTS[-1], configs[0], machine=machine
)
print(result.trace.format())

# Extrapolate the Baseline curve over the paper's actual process range
# (16-4096) with the calibrated closed-form model.
from repro.bench import ascii_plot, calibrate

model = calibrate(graph, machine=machine)
paper_range = [16, 64, 256, 1024, 4096]
curve = model.predict_curve(paper_range)
print()
print(
    ascii_plot(
        {"Baseline (predicted)": curve},
        logx=True,
        logy=True,
        xlabel="processes (paper range)",
        ylabel="model seconds",
        title="extrapolated strong scaling "
              f"(end point ~p={model.sweet_spot()})",
    )
)
