#!/usr/bin/env python
"""Multi-tenant serving demo: 2 shards, 3 tenants, streamed updates.

Exercises the sharded serving tier end to end:

* three tenants with their own graphs, quotas, and churn policies,
  spread by graph fingerprint over two engine worker *processes*;
* batch detections that are bit-identical to inline single-process
  runs of the same requests (determinism survives sharding);
* a stream of edge insertions/deletions into one tenant — duplicates
  dedupe to *net* churn, and the configured threshold fires exactly
  when net churn reaches it, triggering an incremental re-detection
  warm-started from the previous assignment;
* a fair-share check: a heavy tenant's backlog does not starve a light
  tenant on the same shard (deficit round robin);
* a fault drill: one shard is hard-killed, the health check marks it,
  and resubmitted work re-homes onto the survivor;
* a drain, the per-tenant/per-shard metrics snapshot, and a JSON
  metrics artifact (written when METRICS_OUT is set — CI uploads it);
* observability artifacts: a fleet Prometheus snapshot (per-shard
  registries merged under a ``shard`` label, PROM_OUT) and the
  structured JSON-lines event log spanning the tier and every shard
  process (EVENTS_OUT) — CI uploads both.

Run:  python examples/serving_demo.py
"""

import json
import os

import numpy as np

from repro import make_graph
from repro.service import execute_request
from repro.serving import ChurnPolicy, ServingTier, TenantQuota


def main() -> None:
    graphs = {
        "analytics": make_graph("channel", scale="tiny", seed=0),
        "social": make_graph("com-orkut", scale="tiny", seed=1),
        "batchjobs": make_graph("soc-friendster", scale="tiny", seed=2),
    }

    tier = ServingTier(
        shards=2,
        workers_per_shard=2,
        event_log_path=os.environ.get("EVENTS_OUT"),
    )
    try:
        # ------------------------------------------------------------
        # 1. Three tenants over two shards
        # ------------------------------------------------------------
        tier.create_tenant(
            "analytics",
            nranks=2,
            quota=TenantQuota(max_queued=8),
            churn=ChurnPolicy(absolute=4),
        )
        tier.create_tenant("social", nranks=2, quota=TenantQuota(max_queued=8))
        tier.create_tenant(
            "batchjobs", nranks=2, quota=TenantQuota(max_queued=16)
        )
        for name, graph in graphs.items():
            tier.load_graph(name, graph)
            print(tier.registry.get(name).describe())

        # ------------------------------------------------------------
        # 2. Batch detections, bit-identical to single-process runs
        # ------------------------------------------------------------
        handles = {name: tier.detect(name) for name in graphs}
        for name, handle in handles.items():
            response = tier.wait(handle, timeout=300)
            assert response.state.value == "done", response.error
            reference = execute_request(
                tier.registry.get(name).build_request(incremental=False)
            )
            assert np.array_equal(
                response.result.assignment, reference.assignment
            ), f"{name}: sharded result differs from single-process run"
            print(
                f"{name}: shard {handle.shard_id} Q="
                f"{response.result.modularity:.4f} (bit-identical to "
                "single-process reference)"
            )

        # ------------------------------------------------------------
        # 3. Streamed updates: net-churn dedupe + exact trigger
        # ------------------------------------------------------------
        assert tier.add_edges("analytics", [0, 1], [790, 791]) is None
        # Re-adding a pending edge is raw churn but not net churn.
        assert tier.add_edges("analytics", [0], [790]) is None
        assert tier.add_edges("analytics", [2], [792]) is None  # net 3 < 4
        trigger = tier.add_edges("analytics", [3], [793])  # net 4: fires
        assert trigger is not None and trigger.net_churn == 4
        response = tier.wait(trigger, timeout=300)
        assert response.state.value == "done"
        assert response.request.mode == "incremental"
        print(
            f"analytics: net churn {trigger.net_churn} triggered "
            f"incremental re-detection, Q={response.result.modularity:.4f}"
        )

        # ------------------------------------------------------------
        # 4. Fair share: heavy backlog does not starve the light tenant
        # ------------------------------------------------------------
        heavy = [
            tier.detect("batchjobs", priority=0) for _ in range(6)
        ]
        light = tier.detect("social", priority=0)
        light_response = tier.wait(light, timeout=300)
        heavy_responses = [tier.wait(h, timeout=300) for h in heavy]
        assert light_response.state.value == "done"
        heavy_p95 = float(
            np.percentile(
                [r.queue_seconds for r in heavy_responses], 95
            )
        )
        print(
            f"fair share: light tenant queued "
            f"{light_response.queue_seconds:.4f}s vs heavy p95 "
            f"{heavy_p95:.4f}s over a 6-job backlog"
        )

        # ------------------------------------------------------------
        # 5. Fault drill: kill one shard, re-home onto the survivor
        # ------------------------------------------------------------
        victim = handles["analytics"].shard_id
        tier.kill_shard(victim)
        health = tier.health_check()
        assert health[victim] is False
        print(f"killed shard {victim}; health: {health}")
        retry = tier.detect("analytics")
        assert retry.shard_id != victim
        response = tier.wait(retry, timeout=300)
        assert response.state.value == "done"
        print(
            f"analytics re-homed onto shard {retry.shard_id}: "
            f"Q={response.result.modularity:.4f}"
        )

        # ------------------------------------------------------------
        # 6. Drain + metrics artifact
        # ------------------------------------------------------------
        report = tier.drain(cancel_pending=False)
        for sid in sorted(report):
            print(f"shard {sid} drained: {len(report[sid])} job(s) settled")
        metrics = tier.metrics()
        for name, stats in sorted(metrics["tenants"].items()):
            print(f"  {name}: {stats['counters']}")
        out = os.environ.get("METRICS_OUT")
        if out:
            with open(out, "w", encoding="utf-8") as fh:
                json.dump(metrics, fh, indent=1)
            print(f"metrics written to {out}")
        prom_out = os.environ.get("PROM_OUT")
        if prom_out:
            from repro.obs import write_prometheus

            write_prometheus(prom_out, tier.registry_snapshot())
            print(f"fleet Prometheus snapshot written to {prom_out}")
    finally:
        tier.shutdown()
    events_out = os.environ.get("EVENTS_OUT")
    if events_out:
        from repro.obs import read_events

        origins = sorted({e["origin"] for e in read_events(events_out)})
        print(f"event log written to {events_out} (origins: {origins})")
    print("serving demo OK")


if __name__ == "__main__":
    main()
