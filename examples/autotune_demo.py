#!/usr/bin/env python
"""Autotuner demo: per-graph planned configs vs the paper defaults.

The paper fixes its heuristic parameters globally (ET α=0.25, the
Fig. 2 threshold cycle, ETC's 90% exit) even though Tables II-VII show
the best setting varies per input.  This demo runs the full tuning
pipeline (:mod:`repro.tune`) on two generator graphs:

* cost-model screening collapses a few-hundred-point search space to a
  handful of measured successive-halving trials;
* the planned config beats the paper-default baseline on modelled time
  while the quality guard keeps modularity within tolerance;
* the plan persists in a tuning database — the second call for the same
  graph is an instant hit with **zero** measured trials;
* a structurally similar (but not identical) graph is served the plan
  of its nearest tuned neighbour in feature space.

Run:  python examples/autotune_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro import make_graph
from repro.tune import (
    TunerSettings,
    TuningDB,
    compute_features,
    default_space,
    tune_graph,
)

GRAPHS = ("channel", "com-orkut")

with tempfile.TemporaryDirectory() as td:
    db = TuningDB(Path(td) / "tuning.json")
    space = default_space(max_ranks=8)
    settings = TunerSettings(trials=6)

    for name in GRAPHS:
        g = make_graph(name, scale="tiny")
        print(f"=== {name}: {compute_features(g).format()}")
        record, cached = tune_graph(g, db, space=space, settings=settings)
        assert not cached
        print(f"  {record.summary()}")
        print(
            f"  searched {len(space.candidates())} candidates with "
            f"{len(record.trials)} measured trials "
            f"({record.tune_seconds:.4f} modelled s)"
        )
        assert record.speedup > 1.0, "tuned plan must beat the baseline"
        assert record.quality_guard_passed

    # ------------------------------------------------------------------
    # Second invocation: a pure database hit, no trials at all.
    # ------------------------------------------------------------------
    g = make_graph(GRAPHS[0], scale="tiny")
    t0 = time.perf_counter()
    record, cached = tune_graph(g, db, space=space, settings=settings)
    dt = time.perf_counter() - t0
    assert cached
    print(f"=== re-tune {GRAPHS[0]}: database hit in {dt * 1e3:.1f} ms, "
          "zero measured trials")

    # ------------------------------------------------------------------
    # A similar-but-different graph gets its neighbour's plan.
    # ------------------------------------------------------------------
    sibling = make_graph(GRAPHS[0], scale="tiny", seed=3)
    assert db.get(sibling.fingerprint()) is None
    hit = db.nearest(compute_features(sibling))
    assert hit is not None
    print(
        f"=== unseen {GRAPHS[0]} (different seed): nearest tuned "
        f"neighbour at feature distance {hit.distance:.3f} -> "
        f"{hit.record.config.label()} x{hit.record.ranks}"
    )

print("autotune demo ok")
