#!/usr/bin/env python
"""Detection service demo: one engine, ~20 concurrent mixed-variant jobs.

Exercises the serving tier end to end:

* 20 mixed jobs (two graphs x the paper's variant sweep x 2/4 ranks)
  multiplexed over a 4-worker engine — all complete, none lost;
* one job killed mid-run by a deterministic injected fault — the engine
  retries it, *resuming* from the job's automatic checkpoint, and the
  recovered result is bit-identical to an uninterrupted reference run;
* a repeated (graph, config) submission — served from the
  content-addressed result cache (hit counted in the metrics) with a
  bit-identical result;
* the metrics snapshot and the aggregate modelled-time trace across the
  whole workload.

Run:  python examples/service_demo.py
"""

import tempfile

import numpy as np

from repro import (
    DetectionRequest,
    Engine,
    JobState,
    LouvainConfig,
    ResultStore,
    make_graph,
)
from repro.core import PAPER_VARIANTS
from repro.core.distlouvain import run_louvain as reference_run
from repro.resilience import FaultPlan

graphs = {
    "soc-friendster": make_graph("soc-friendster", scale="tiny"),
    "channel": make_graph("channel", scale="tiny"),
}

# 20 mixed jobs: every paper variant on both graphs at 2 and 4 ranks,
# minus the slowest few to land exactly on 20.
requests = [
    DetectionRequest(graph=g, nranks=p, config=cfg, tag=f"{name}/{cfg.label()}/p{p}")
    for name, g in graphs.items()
    for cfg in PAPER_VARIANTS
    for p in (2, 4)
][:20]

# One more job that *will* be killed: rank 1 dies at its 60th
# communication op.  max_retries lets the engine retry it; the engine's
# automatic per-job checkpointing lets the retry resume mid-run.
faulty = DetectionRequest(
    graph=graphs["soc-friendster"],
    nranks=4,
    config=LouvainConfig(seed=3),
    fault_plan=FaultPlan(kills={1: 60}),
    max_retries=2,
    tag="chaos-drill",
)

with tempfile.TemporaryDirectory() as tmp:
    engine = Engine(
        workers=4,
        queue_depth=64,
        store=ResultStore(capacity=64, directory=f"{tmp}/cache"),
        workdir=f"{tmp}/jobs",
        checkpoint_every_iterations=2,
    )
    with engine:
        ids = [engine.submit(r) for r in requests]
        fault_id = engine.submit(faulty)

        responses = [engine.wait(i, timeout=300) for i in ids]
        fault_resp = engine.wait(fault_id, timeout=300)

        # Repeat the first request verbatim: must be a cache hit.
        repeat = engine.detect(requests[0], timeout=300)

    done = sum(r.state is JobState.DONE for r in responses)
    print(f"concurrent jobs: {done}/{len(responses)} done, 0 lost")
    assert done == len(responses) == 20, [r.summary() for r in responses]

    print(f"chaos drill:     {fault_resp.summary()}")
    assert fault_resp.state is JobState.DONE
    assert fault_resp.retries >= 1, "injected fault did not trigger a retry"
    assert fault_resp.resumed_from_checkpoint, "retry restarted from scratch"
    reference = reference_run(
        graphs["soc-friendster"], 4, LouvainConfig(seed=3)
    )
    recovered_identical = bool(
        np.array_equal(fault_resp.result.assignment, reference.assignment)
        and fault_resp.result.modularity == reference.modularity
    )
    print(f"recovered result bit-identical to uninterrupted run: "
          f"{recovered_identical}")
    assert recovered_identical

    print(f"repeat:          {repeat.summary()}")
    assert repeat.cache_hit, "repeated submission was recomputed"
    first = next(r for r in responses if r.job_id == ids[0])
    repeat_identical = bool(
        np.array_equal(repeat.result.assignment, first.result.assignment)
        and repeat.result.modularity == first.result.modularity
        and repeat.result.elapsed == first.result.elapsed
    )
    print(f"cached result bit-identical to original: {repeat_identical}")
    assert repeat_identical

    snapshot = engine.metrics.snapshot()
    assert snapshot["counters"]["cache_hits"] >= 1
    assert snapshot["counters"].get("failed", 0) == 0
    assert snapshot["counters"].get("cancelled", 0) == 0
    print()
    print(engine.metrics.format())
    print()
    print(engine.trace_report().format())
