#!/usr/bin/env python
"""Detect and validate communities in a synthetic social network.

The workload the paper's introduction motivates: a social graph with
known (planted) community structure.  This example

1. generates an LFR benchmark graph with ground-truth communities,
2. runs every variant of the distributed Louvain algorithm on it,
3. scores each against the ground truth (precision / recall / F-score,
   the §V-D methodology) and against each other (NMI), and
4. prints a comparison table.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import LouvainConfig, Variant, run_louvain
from repro.bench import format_table
from repro.generators import generate_lfr
from repro.quality import best_match_scores, normalized_mutual_information

RANKS = 4

print("generating an LFR social network (2,000 people, mixing 0.15)...")
network = generate_lfr(
    2000,
    mu=0.15,
    avg_degree=16.0,
    min_community=30,
    max_community=80,
    seed=42,
)
graph = network.edges.to_csr()
print(
    f"  {graph.num_vertices} vertices, {graph.num_edges} friendships, "
    f"{network.num_communities} planted communities, "
    f"realized mixing {network.mu_realized:.3f}"
)

variants = [
    LouvainConfig(variant=Variant.BASELINE),
    LouvainConfig(variant=Variant.THRESHOLD_CYCLING),
    LouvainConfig(variant=Variant.ET, alpha=0.25),
    LouvainConfig(variant=Variant.ET, alpha=0.75),
    LouvainConfig(variant=Variant.ETC, alpha=0.25),
]

rows = []
baseline_assignment = None
for config in variants:
    result = run_louvain(graph, RANKS, config)
    scores = best_match_scores(network.community_of, result.assignment)
    if baseline_assignment is None:
        baseline_assignment = result.assignment
        agreement = 1.0
    else:
        agreement = normalized_mutual_information(
            baseline_assignment, result.assignment
        )
    rows.append(
        [
            config.label(),
            round(result.modularity, 4),
            result.num_communities,
            result.total_iterations,
            f"{result.elapsed:.4f}",
            round(scores.precision, 4),
            round(scores.fscore, 4),
            round(agreement, 3),
        ]
    )

print()
print(
    format_table(
        [
            "Variant",
            "Q",
            "#comms",
            "iters",
            "model time (s)",
            "precision",
            "F-score",
            "NMI vs Baseline",
        ],
        rows,
        title=f"Distributed Louvain variants on {RANKS} ranks "
              "vs LFR ground truth",
    )
)

# Show what the detected communities look like.
best = run_louvain(graph, RANKS, variants[0])
sizes = np.sort(best.community_sizes())[::-1]
print()
print(f"ten largest detected communities: {sizes[:10].tolist()}")
