#!/usr/bin/env python
"""Checkpoint/restore: survive a rank failure and resume bit-identically.

Runs distributed Louvain with checkpointing enabled, kills one rank
mid-run with a deterministic fault plan, then resumes from the last
valid checkpoint and verifies the final communities match an
uninterrupted run exactly.

Run:  python examples/checkpoint_resume.py
"""

import tempfile

import numpy as np

from repro import LouvainConfig, Variant, make_graph, run_louvain
from repro.resilience import FaultPlan, latest_valid_manifest
from repro.runtime import InjectedFault, RankFailedError

NRANKS = 4

graph = make_graph("soc-friendster", scale="tiny")
config = LouvainConfig(variant=Variant.ETC, alpha=0.25, seed=7)
print(f"input: {graph}")

# Reference: the uninterrupted run we must reproduce.
reference = run_louvain(graph, nranks=NRANKS, config=config)
print(f"uninterrupted run: {reference.summary()}")

with tempfile.TemporaryDirectory() as ckpt_dir:
    # Deterministic fault plan: rank 2 dies at its 40th communication
    # operation.  Same plan => same failure point, every run.
    plan = FaultPlan(kills={2: 40})
    try:
        run_louvain(
            graph,
            nranks=NRANKS,
            config=config,
            checkpoint_dir=ckpt_dir,
            checkpoint_every_iterations=2,
            fault_plan=plan,
        )
        raise SystemExit("fault plan did not fire?!")
    except (RankFailedError, InjectedFault) as exc:
        print(f"injected failure: {exc}")

    manifest = latest_valid_manifest(ckpt_dir, expect_size=NRANKS)
    print(f"last valid checkpoint: {manifest.describe()}")

    # Resume from the checkpoint directory: the graph ingest is skipped
    # and the run continues from the last consistent snapshot.
    resumed = run_louvain(
        graph,
        nranks=NRANKS,
        config=config,
        checkpoint_dir=ckpt_dir,
        resume=True,
    )
    print(f"resumed run:       {resumed.summary()}")

    identical = bool(
        np.array_equal(reference.assignment, resumed.assignment)
        and reference.modularity == resumed.modularity
    )
    print(f"bit-identical to uninterrupted run: {identical}")
    ck = resumed.trace.seconds_by_category().get("checkpoint", 0.0)
    print(f"modelled checkpoint overhead: {ck:.6f}s")
    if not identical:
        raise SystemExit(1)
