#!/usr/bin/env python
"""Dynamic community detection: track communities through graph churn.

A social network evolves — friendships form and dissolve.  Re-running
Louvain from scratch after every batch wastes the structure already
found; the incremental mode warm-starts from the previous solution and
only lets disturbed vertices reconsider (the dynamic capability of the
Grappolo line of work, Halappanavar et al. [14]).

This example simulates five churn batches and compares incremental
re-detection against from-scratch runs: quality stays on par while the
iteration count (and modelled time) drops sharply.

Run:  python examples/dynamic_communities.py
"""

from repro import run_louvain
from repro.bench import format_table
from repro.core.dynamic import (
    EdgeChurn,
    apply_churn,
    churn_statistics,
    incremental_louvain,
)
from repro.generators import generate_lfr

RANKS = 4
BATCHES = 5
CHURN = 0.02  # 2% of edges inserted and deleted per batch

print("initial network: LFR, 1,500 people")
network = generate_lfr(
    1500, mu=0.12, avg_degree=14.0, min_community=25, max_community=60,
    seed=11,
)
graph = network.edges.to_csr()

result = run_louvain(graph, RANKS)
print(f"initial detection: {result.summary()}")
print()

rows = []
for batch in range(BATCHES):
    churn = EdgeChurn.random(graph, CHURN, CHURN, seed=100 + batch)
    stats = churn_statistics(churn, result.assignment)
    graph = apply_churn(graph, churn)

    incremental = incremental_louvain(
        graph,
        result.assignment,
        nranks=RANKS,
        reset_touched=churn.touched_vertices(),
    )
    scratch = run_louvain(graph, RANKS)

    rows.append(
        [
            batch + 1,
            f"{stats.touched_fraction:.1%}",
            stats.intra_deleted,
            stats.inter_inserted,
            round(incremental.modularity, 4),
            round(scratch.modularity, 4),
            incremental.total_iterations,
            scratch.total_iterations,
            f"{incremental.elapsed / scratch.elapsed:.2f}x"
            if scratch.elapsed
            else "-",
        ]
    )
    result = incremental  # carry the solution forward

print(
    format_table(
        [
            "batch",
            "touched",
            "intra del",
            "inter ins",
            "Q (incremental)",
            "Q (scratch)",
            "iters (inc)",
            "iters (scratch)",
            "time ratio",
        ],
        rows,
        title=f"{BATCHES} churn batches of {CHURN:.0%} edges "
              f"({RANKS} ranks)",
    )
)
