#!/usr/bin/env python
"""Observability demo: the drift monitor closes the online tuning loop.

Walks the whole ``repro.obs`` surface on one small workload:

1. a tuning database is seeded with a deliberately mis-calibrated
   machine model (8x too optimistic), so every served detection
   measures far above its cost-model prediction;
2. an engine runs with full observability attached — labeled metrics
   registry, structured JSON-lines event log, and the drift monitor —
   and serves a stream of detection jobs;
3. the per-config-family EWMA of log(measured/predicted) crosses the
   drift threshold, the machine model is recalibrated from the
   observed ratio, and a *forced* background re-tune fires against the
   calibrated model (the existing low-priority ``tune`` job path);
4. the recalibrated model's prediction error is shown to shrink;
5. the same jobs run again on an engine with observability off, and
   the detection outputs are asserted bit-identical — the whole
   subsystem is passive.

Artifacts: Prometheus text exposition (PROM_OUT) and the event log
(EVENTS_OUT) — CI uploads both.

Run:  python examples/observability_demo.py
"""

import math
import os
import tempfile
import time

import numpy as np

from repro import make_graph
from repro.obs import DriftMonitor, EventLog, read_events, write_prometheus
from repro.runtime.perfmodel import CORI_HASWELL
from repro.service import DetectionRequest, Engine
from repro.tune import TuningDB
from repro.tune.costmodel import predict_cost
from repro.tune.features import compute_features
from repro.tune.search import TunerSettings, tune_graph
from repro.tune.space import Candidate


def main() -> None:
    graph = make_graph("soc-friendster", scale="tiny", seed=3)
    workdir = tempfile.mkdtemp(prefix="obs-demo-")
    events_path = os.environ.get(
        "EVENTS_OUT", os.path.join(workdir, "events.jsonl")
    )
    prom_path = os.environ.get(
        "PROM_OUT", os.path.join(workdir, "metrics.prom")
    )

    # ----------------------------------------------------------------
    # 1. Seed the tuning DB with a model that is 8x too optimistic
    # ----------------------------------------------------------------
    wrong = CORI_HASWELL.calibrated(1 / 8)
    settings = TunerSettings(trials=2, rung_phase_caps=(1,), machine=wrong)
    db = TuningDB(os.path.join(workdir, "tuning.json"))
    tune_graph(graph, db, settings=settings)
    record = db.get(graph.fingerprint())
    print(f"seeded plan: {record.config.label()} on {record.ranks} "
          f"rank(s) (machine {wrong.name})")

    # ----------------------------------------------------------------
    # 2. Serve a stream of jobs with full observability attached
    # ----------------------------------------------------------------
    log = EventLog(events_path, origin="demo")
    drift = DriftMonitor(machine=wrong)
    request = DetectionRequest(graph=graph, nranks=2, machine=CORI_HASWELL)
    observed_results = []
    with Engine(
        workers=1,
        tuning_db=db,
        tune_settings=settings,
        event_log=log,
        drift=drift,
    ) as engine:
        for _ in range(10):
            response = engine.detect(request, timeout=300)
            assert response.result is not None, response.error
            observed_results.append(response.result)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            counters = engine.metrics.snapshot()["counters"]
            if counters.get("background_tunes", 0) >= 1:
                break
            time.sleep(0.05)
        write_prometheus(prom_path, engine.metrics.registry)
        counters = engine.metrics.snapshot()["counters"]
    log.close()

    # ----------------------------------------------------------------
    # 3. The loop closed: drift crossed, forced re-tune ran
    # ----------------------------------------------------------------
    assert counters["drift_observations"] >= 1
    assert counters["drift_retunes"] >= 1, "drift never crossed threshold"
    retune = read_events(events_path, event="drift_retune")[0]
    print(
        f"drift crossed after {counters['drift_observations']} "
        f"observation(s): calibration x{retune['calibration']:.2f} "
        f"-> machine {retune['machine']}"
    )
    forced = read_events(events_path, event="tune_spawned", forced=True)
    assert forced, "forced re-tune was not spawned"
    assert counters.get("background_tunes", 0) >= 1, "re-tune never ran"
    print(f"forced background re-tune ran (job {forced[0]['job_id']})")

    # ----------------------------------------------------------------
    # 4. Prediction error shrinks under the calibrated model
    # ----------------------------------------------------------------
    measured = read_events(events_path, event="drift_observed")[-1][
        "measured"
    ]
    features = compute_features(graph)
    cand = Candidate(config=request.config, ranks=request.nranks)

    def log_error(machine):
        predicted = predict_cost(features, cand, machine).seconds
        return abs(math.log(max(measured, 1e-12) / max(predicted, 1e-12)))

    err_before = log_error(wrong)
    err_after = log_error(drift.machine)
    assert err_after < err_before
    print(
        f"prediction |log error|: {err_before:.3f} (mis-calibrated) -> "
        f"{err_after:.3f} ({drift.machine.name})"
    )

    # ----------------------------------------------------------------
    # 5. Passivity: identical detection outputs with obs off
    # ----------------------------------------------------------------
    with Engine(workers=1) as plain:
        for result in observed_results:
            bare = plain.detect(request, timeout=300).result
            assert np.array_equal(bare.assignment, result.assignment)
            assert bare.modularity == result.modularity
    print("passivity: detection outputs bit-identical with obs on/off")

    print(f"event log written to {events_path}")
    print(f"Prometheus snapshot written to {prom_path}")
    print("observability demo OK")


if __name__ == "__main__":
    main()
