#!/usr/bin/env python
"""Quickstart: distributed Louvain community detection in ten lines.

Generates a stand-in for the paper's soc-friendster input, runs the
distributed Louvain algorithm on 8 simulated MPI ranks, and prints the
result with the modelled execution-time breakdown.

Run:  python examples/quickstart.py
"""

from repro import LouvainConfig, Variant, make_graph, run_louvain

# A scaled-down synthetic graph with the structure class of the paper's
# 1.8B-edge soc-friendster input (see repro.generators.registry).
graph = make_graph("soc-friendster", scale="small")
print(f"input: {graph}")

# The paper's best-performing configuration for this input: ETC(0.25)
# (early termination + the global inactive-count exit, Table IV).
config = LouvainConfig(variant=Variant.ETC, alpha=0.25)
result = run_louvain(graph, nranks=8, config=config)

print(f"result: {result.summary()}")
print(f"communities found: {result.num_communities}")
print(f"largest community: {result.community_sizes().max()} vertices")
print()
print("modelled time breakdown (per §V-A of the paper):")
print(result.trace.format())
