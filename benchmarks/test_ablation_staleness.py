"""Ablation: the cost of stale community state (§III-B).

The paper's central consistency compromise: each rank decides moves
against community state from the last synchronisation point.  At p=1
there is no staleness (every decision sees fresh state); increasing p
increases both the staleness surface (more ghosts) and concurrent
decision making.  This ablation isolates the quality impact.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import run_louvain
from repro.runtime import FREE

from _cache import graph


def collect():
    rows = []
    for name in ("channel", "com-orkut", "arabic-2005"):
        g = graph(name)
        qs = {}
        for p in (1, 2, 4, 8):
            qs[p] = run_louvain(g, p, machine=FREE).modularity
        rows.append([name] + [round(qs[p], 4) for p in (1, 2, 4, 8)])
    return rows


def test_ablation_staleness(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_staleness",
        format_table(
            ["Graph", "Q p=1 (no staleness)", "Q p=2", "Q p=4", "Q p=8"],
            rows,
            title="Ablation — quality vs staleness surface "
                  "(paper §III-B; paper reports <1% difference)",
        ),
    )
    # The paper's claim: staleness costs little quality.
    for row in rows:
        qs = row[1:]
        assert max(qs) - min(qs) < 0.03, row
