"""Fig. 6: convergence characteristics of web-cc12-PayLevelDomain.

Paper (6a/6b, 64 processes): the converse trend of Fig. 5 — the
aggressive ET(0.75) beats ET(0.25) on this input (16% faster) at the
cost of ~4% modularity, thanks to fewer iterations per phase.
"""

from __future__ import annotations

from repro.bench import ascii_plot, format_series

from _cache import single_run

GRAPH = "web-cc12-PayLevelDomain"
RANKS = 8
VARIANTS = [
    ("baseline", 0.25, "Baseline"),
    ("et", 0.25, "ET(0.25)"),
    ("et", 0.75, "ET(0.75)"),
    ("etc", 0.25, "ETC(0.25)"),
    ("etc", 0.75, "ETC(0.75)"),
]


def collect():
    return {
        label: single_run(GRAPH, RANKS, variant, alpha)
        for variant, alpha, label in VARIANTS
    }


def test_fig6_convergence_webcc(benchmark, record_result):
    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    blocks = []
    for label, r in results.items():
        blocks.append(
            format_series(
                f"{label} modularity-vs-iteration",
                r.modularity_by_iteration(),
            )
        )
        blocks.append(
            format_series(
                f"{label} iterations-per-phase", r.iterations_per_phase()
            )
        )
        blocks.append(
            f"  {label}: time={r.elapsed:.4f}s phases={r.num_phases} "
            f"iterations={r.total_iterations} Q={r.modularity:.4f}"
        )
    chart = ascii_plot(
        {
            label: [(i, q) for i, q in r.modularity_by_iteration()]
            for label, r in results.items()
        },
        xlabel="iteration",
        ylabel="modularity",
        title=f"{GRAPH}: modularity growth",
    )
    blocks.append(chart)
    record_result(
        f"fig6_{GRAPH}",
        f"Fig. 6 — convergence, {GRAPH}, {RANKS} ranks\n" + "\n".join(blocks),
    )

    base = results["Baseline"]
    et25, et75 = results["ET(0.25)"], results["ET(0.75)"]

    # ET variants never lose much quality (paper: <= 4% for ET(0.75)).
    assert et75.modularity > base.modularity - 0.08
    assert et25.modularity > base.modularity - 0.05
    # At least one ET/ETC configuration beats Baseline.
    others = [r.elapsed for label, r in results.items() if label != "Baseline"]
    assert min(others) < base.elapsed
    # Aggressive ET processes fewer vertex-iterations overall.
    act75 = sum(it.active_fraction for it in et75.iterations)
    act25 = sum(it.active_fraction for it in et25.iterations)
    assert act75 < act25 * 1.2
