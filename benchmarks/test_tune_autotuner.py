"""Autotuner demo: planned configs vs the paper defaults, per graph.

The paper fixes its heuristic parameters globally (α=0.25, the Fig. 2
threshold cycle, ETC's 90% exit) while Tables II-VII show the best
variant varies per input.  This bench runs the full tuning pipeline
(:mod:`repro.tune`) on two generator graphs and checks the contract:

* the tuned plan beats the paper-default baseline on modelled time,
* the quality guard holds (modularity within tolerance of baseline),
* a second invocation is a pure database hit — **zero** measured trials.

Set ``REPRO_BENCH_GRAPHS=channel,com-orkut`` (comma-separated) to
change the inputs.
"""

from __future__ import annotations

import os

from repro.bench import format_table
from repro.tune import TunerSettings, TuningDB, default_space, tune_graph

from _cache import graph, machine

BENCH_GRAPHS = tuple(
    os.environ.get("REPRO_BENCH_GRAPHS", "channel,com-orkut").split(",")
)

SETTINGS_TRIALS = 6


def collect():
    rows = []
    db = TuningDB()  # in-memory: the bench measures search + hit behaviour
    for name in BENCH_GRAPHS:
        g = graph(name)
        settings = TunerSettings(
            trials=SETTINGS_TRIALS,
            machine=machine(name),
            verify_schedule=True,
        )
        space = default_space(max_ranks=8)
        record, cached = tune_graph(g, db, space=space, settings=settings)
        assert not cached, f"first tune of {name} must search"
        again, cached_again = tune_graph(
            g, db, space=space, settings=settings
        )
        assert cached_again, f"second tune of {name} must be a DB hit"
        assert again is record
        rows.append(
            [
                name,
                record.config.label(),
                record.ranks,
                round(record.baseline_seconds, 4),
                round(record.measured_seconds, 4),
                round(record.speedup, 2),
                round(record.baseline_modularity, 4),
                round(record.tuned_modularity, 4),
                "ok" if record.quality_guard_passed else "FALLBACK",
                len(record.trials),
            ]
        )
    return rows


def test_tune_autotuner(benchmark, record_result, record_bench):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "tune_autotuner",
        format_table(
            ["Graph", "Plan", "p", "baseline (s)", "tuned (s)", "speedup",
             "base Q", "tuned Q", "guard", "trials"],
            rows,
            title="Autotuner — planned config vs paper defaults",
        ),
    )
    record_bench(
        "tune",
        {
            "rows": [
                {
                    "graph": name,
                    "plan": plan,
                    "ranks": p,
                    "baseline_seconds": base_s,
                    "tuned_seconds": tuned_s,
                    "speedup": speedup,
                    "baseline_modularity": base_q,
                    "tuned_modularity": tuned_q,
                    "guard": guard,
                    "trials": trials,
                }
                for name, plan, p, base_s, tuned_s, speedup,
                    base_q, tuned_q, guard, trials in rows
            ]
        },
    )
    for name, _, _, base_s, tuned_s, speedup, base_q, tuned_q, guard, _ in rows:
        # The plan must beat the paper defaults on modelled time by a
        # measurable margin...
        assert tuned_s < base_s, f"{name}: tuned plan not faster"
        assert speedup > 1.05, f"{name}: speedup {speedup} not measurable"
        # ...without giving up more modularity than the guard allows.
        assert guard == "ok", f"{name}: quality guard fell back"
        assert tuned_q >= base_q - 0.02 - 1e-9
