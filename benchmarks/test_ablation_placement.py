"""Ablation: rank placement and the hierarchical latency model.

The paper packs 8-16 MPI ranks per Cori node (32 cores / 2-4 OpenMP
threads).  The runtime's node-aware latency model makes co-located
ranks talk through shared memory; this ablation quantifies how much the
1-D contiguous distribution benefits from that locality — neighbouring
vertex ranges land on neighbouring ranks, which land on the same node.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import run_louvain
from repro.runtime import MachineModel

from _cache import graph, machine


def collect():
    rows = []
    for name in ("channel", "soc-friendster"):
        g = graph(name)
        base = machine(name)
        packed = MachineModel(
            **{**base.__dict__, "ranks_per_node": 8}
        )
        spread = MachineModel(
            **{**base.__dict__, "ranks_per_node": 1}
        )
        t_packed = run_louvain(g, 8, machine=packed).elapsed
        t_spread = run_louvain(g, 8, machine=spread).elapsed
        rows.append(
            [
                name,
                t_packed,
                t_spread,
                round((t_spread - t_packed) / t_spread * 100, 1),
            ]
        )
    return rows


def test_ablation_placement(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_placement",
        format_table(
            [
                "Graph",
                "8 ranks/node (s)",
                "1 rank/node (s)",
                "locality gain (%)",
            ],
            rows,
            title="Ablation — node-aware latency (8 ranks on one node "
                  "vs spread over 8 nodes)",
        ),
    )
    # Packing all 8 ranks on one node can never be slower (only the
    # latency term changes, downward).
    for _, t_packed, t_spread, _ in rows:
        assert t_packed <= t_spread * 1.001
    # The banded input (mostly nearest-rank ghost traffic) must show a
    # measurable locality gain.
    assert rows[0][3] >= 0.0
