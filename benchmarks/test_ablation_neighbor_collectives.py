"""Ablation: MPI-3 neighbourhood collectives for the ghost exchange.

§VI lists neighbourhood collectives as future work "to make our
implementation more scalable".  The runtime implements both transports;
this bench measures the saving.  The win comes from latency: a dense
alltoall pays ``(p-1) * alpha`` per rank regardless of who actually has
data, the neighbourhood variant only pays per real neighbour — so the
saving grows with p and with locality of the partition.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain

from _cache import graph, machine

BENCH_GRAPHS = tuple(
    os.environ.get("REPRO_BENCH_GRAPHS", "channel,soc-friendster").split(",")
)


def collect():
    rows = []
    for name in BENCH_GRAPHS:
        g = graph(name)
        mach = machine(name)
        for p in (4, 8):
            dense = run_louvain(
                g, p, LouvainConfig(), machine=mach
            )
            neigh = run_louvain(
                g, p, LouvainConfig(use_neighbor_collectives=True),
                machine=mach,
            )
            assert np.array_equal(dense.assignment, neigh.assignment)
            rows.append(
                [
                    name,
                    p,
                    dense.elapsed,
                    neigh.elapsed,
                    round((dense.elapsed - neigh.elapsed)
                          / dense.elapsed * 100, 1),
                ]
            )
    return rows


def test_ablation_neighbor_collectives(benchmark, record_result, record_bench):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_neighbor_collectives",
        format_table(
            ["Graph", "p", "dense alltoall (s)", "neighborhood (s)",
             "gain (%)"],
            rows,
            title="Ablation — ghost exchange transport (§VI future work)",
        ),
    )
    record_bench(
        "ablation_neighbor_collectives",
        {
            "rows": [
                {
                    "graph": name,
                    "ranks": p,
                    "dense_seconds": dense,
                    "neighborhood_seconds": neigh,
                    "gain_percent": gain,
                }
                for name, p, dense, neigh, gain in rows
            ]
        },
    )
    # Results are identical (asserted in collect); the neighbourhood
    # transport is never slower.
    for _, _, dense, neigh, _ in rows:
        assert neigh <= dense * 1.01
    # channel's banded partition has few neighbours per rank, so the
    # latency saving must materialise somewhere.
    assert any(gain > 0 for *_, gain in rows)
