"""Service-tier throughput: jobs/sec through the engine and cache hit-rate.

Not a paper figure — the service layer is an extension beyond the paper
(see docs/PAPER_MAPPING.md).  This bench keeps the serving tier honest:

* **cold**: N distinct (graph, config) jobs through a 4-worker engine —
  end-to-end throughput of scheduling + SPMD simulation;
* **warm**: the same workload resubmitted against a populated result
  store — throughput when every job is a cache hit, plus the hit-rate.

Wall-clock time here is real (the engine multiplexes actual simulator
runs), unlike the modelled times of the paper-reproduction benches.
"""

from __future__ import annotations

import time

from repro.core import PAPER_VARIANTS
from repro.generators import make_graph
from repro.service import DetectionRequest, Engine, ResultStore


def _workload():
    graphs = [
        make_graph("soc-friendster", scale="tiny"),
        make_graph("channel", scale="tiny"),
    ]
    return [
        DetectionRequest(graph=g, nranks=p, config=cfg)
        for g in graphs
        for cfg in PAPER_VARIANTS
        for p in (2, 4)
    ][:16]


def test_service_throughput(record_result):
    requests = _workload()
    store = ResultStore(capacity=64)

    with Engine(workers=4, store=store) as engine:
        t0 = time.perf_counter()
        engine.wait_all([engine.submit(r) for r in requests], timeout=600)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_ids = [engine.submit(r) for r in requests]
        responses = engine.wait_all(warm_ids, timeout=600)
        warm = time.perf_counter() - t0

        snapshot = engine.metrics.snapshot()

    hits = sum(r.cache_hit for r in responses)
    assert hits == len(requests), "warm pass should be all cache hits"
    assert snapshot["counters"]["cache_hits"] >= len(requests)

    lines = [
        "service throughput (4 workers, tiny graphs, "
        f"{len(requests)} mixed-variant jobs)",
        f"  cold: {cold:8.3f}s  {len(requests) / cold:8.1f} jobs/s",
        f"  warm: {warm:8.3f}s  {len(requests) / warm:8.1f} jobs/s "
        "(all cache hits)",
        f"  cache hit-rate over both passes: "
        f"{snapshot['cache_hit_rate']:.1%}",
    ]
    record_result("service_throughput", "\n".join(lines))
