"""Micro-benchmarks of the simulator's hot kernels (wall time).

Unlike the paper-reproduction benches (which report *modelled* time),
these track the real wall-clock cost of the library's inner kernels so
performance regressions of the simulator itself are visible:

* the vectorised move-selection sweep;
* the vectorised greedy coloring and vertex-following seeds (and their
  reference per-vertex scans, kept as before/after comparisons);
* serial graph coarsening;
* CSR construction from edge lists;
* one full communicator round trip (alltoall) across ranks;
* the subscription-cache push update of the owner-push community
  exchange (overwrite-known + merge-insert-unknown).
"""

from __future__ import annotations

import numpy as np

from repro.core import coarsen_csr, pack_info
from repro.core.commcache import CommunityCache
from repro.core.grappolo import (
    _greedy_coloring_loop,
    _vertex_following_loop,
    greedy_coloring,
    vertex_following_seed,
)
from repro.core.sweep import propose_moves
from repro.generators import generate_lfr
from repro.graph import CSRGraph, DistGraph, EdgeList
from repro.runtime import FREE, run_spmd


def _graph():
    return generate_lfr(3000, avg_degree=16, seed=1).edges


def test_kernel_propose_moves(benchmark):
    g = _graph().to_csr()
    n = g.num_vertices
    k = g.degrees()
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.index))
    comm = np.arange(n, dtype=np.int64)
    tot = k.copy()
    size = np.ones(n, dtype=np.int64)

    result = benchmark(
        propose_moves,
        index=g.index,
        target_comm=comm[g.edges],
        weights=g.weights,
        self_mask=g.edges == rows,
        degrees=k,
        cur_comm=comm,
        total_weight=g.total_weight,
        tot_lookup=lambda ids: tot[ids],
        size_lookup=lambda ids: size[ids],
    )
    assert result.num_moves > 0


def test_kernel_greedy_coloring(benchmark):
    g = _graph().to_csr()

    colors = benchmark(greedy_coloring, g)
    assert colors.min() == 0


def test_kernel_greedy_coloring_loop(benchmark):
    # Reference per-vertex scan: the "before" of the vectorised kernel.
    g = _graph().to_csr()

    colors = benchmark(_greedy_coloring_loop, g)
    assert colors.min() == 0


def test_kernel_vertex_following(benchmark):
    g = _graph().to_csr()

    comm = benchmark(vertex_following_seed, g)
    assert len(comm) == g.num_vertices


def test_kernel_vertex_following_loop(benchmark):
    # Reference per-vertex scan: the "before" of the vectorised kernel.
    g = _graph().to_csr()

    comm = benchmark(_vertex_following_loop, g)
    assert len(comm) == g.num_vertices


def test_kernel_coarsen(benchmark):
    g = _graph().to_csr()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, 100, g.num_vertices)

    meta, _ = benchmark(coarsen_csr, g, assignment)
    assert meta.num_vertices == 100


def test_kernel_csr_construction(benchmark):
    el = _graph()

    g = benchmark(
        CSRGraph.from_edges, el.num_vertices, el.u, el.v, el.w
    )
    assert g.num_vertices == el.num_vertices


def test_kernel_edgelist_dedup(benchmark):
    rng = np.random.default_rng(2)
    n, m = 2000, 40_000
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)

    el = benchmark(EdgeList.from_arrays, n, u, v)
    assert el.num_edges > 0


def test_kernel_subscription_cache_update(benchmark):
    g = _graph().to_csr()
    n = g.num_vertices
    dg = DistGraph.from_global(g, np.array([0, n // 2, n]), 0)
    rng = np.random.default_rng(3)
    # Warm cache over half the remote id space; each push touches a mix
    # of known (overwrite) and unknown (merge-insert) communities.
    warm = np.unique(rng.integers(n // 2, n, 4000))
    pushes = [
        pack_info(
            ids := np.unique(rng.integers(n // 2, n, 800)),
            rng.random(len(ids)),
            rng.integers(1, 50, len(ids)),
        )
        for _ in range(16)
    ]

    def update():
        cache = CommunityCache(dg, comm_size=2)
        cache._insert(
            pack_info(warm, rng.random(len(warm)),
                      np.ones(len(warm), np.int64))
        )
        for packed in pushes:
            cache._apply_push(packed)
        return cache

    cache = benchmark(update)
    assert cache.pushed_entries == sum(len(x) for x in pushes)
    assert len(cache.ids) >= len(warm)


def test_kernel_alltoall_roundtrip(benchmark):
    payloads = [np.arange(500, dtype=np.int64)] * 4

    def roundtrip():
        def prog(comm):
            got = comm.alltoall(list(payloads[: comm.size]))
            return len(got)

        return run_spmd(4, prog, machine=FREE, timeout=10.0)

    r = benchmark.pedantic(roundtrip, rounds=3, iterations=1,
                           warmup_rounds=1)
    assert r.values == [4] * 4
