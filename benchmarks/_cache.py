"""Memoised experiment runs shared between benchmark modules.

Fig. 3 (strong scaling curves) and Table IV (best variant per graph) are
two views of the same sweep; caching keeps the benchmark suite's runtime
proportional to the number of *distinct* experiments.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench import SweepResultSet, run_variant_sweep
from repro.core import PAPER_VARIANTS, LouvainConfig, Variant
from repro.core.distlouvain import run_louvain
from repro.core.result import LouvainResult
from repro.generators import dataset, make_graph
from repro.runtime import CORI_HASWELL, MachineModel

#: Simulated process counts standing in for the paper's 16-4096 range.
#: Structure (who wins, where scaling flattens) is what transfers; see
#: EXPERIMENTS.md for the mapping notes.
PROCESS_COUNTS = [1, 2, 4, 8]


@lru_cache(maxsize=None)
def graph(name: str, scale: str = "tiny", seed: int = 0):
    return make_graph(name, scale=scale, seed=seed)


@lru_cache(maxsize=None)
def machine(name: str, scale: str = "tiny") -> MachineModel:
    """Cori model scaled so each stand-in edge represents the right
    number of paper-input edges (DESIGN.md §2)."""
    return CORI_HASWELL.scaled(
        dataset(name).edge_scale_factor(graph(name, scale))
    )


@lru_cache(maxsize=None)
def variant_sweep(
    name: str,
    process_counts: tuple[int, ...],
    scale: str = "tiny",
) -> SweepResultSet:
    """All paper variants x process counts for one input graph."""
    return run_variant_sweep(
        graph(name, scale),
        name,
        list(PAPER_VARIANTS),
        list(process_counts),
        machine=machine(name, scale),
    )


@lru_cache(maxsize=None)
def single_run(
    name: str,
    nranks: int,
    variant: str = "baseline",
    alpha: float = 0.25,
    scale: str = "tiny",
) -> LouvainResult:
    config = LouvainConfig(variant=Variant(variant), alpha=alpha)
    return run_louvain(
        graph(name, scale), nranks, config, machine=machine(name, scale)
    )
