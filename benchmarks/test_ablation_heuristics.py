"""Ablation: Grappolo heuristics + Leiden refinement — the quality/speed frontier.

The paper's §VI names Grappolo's shared-memory heuristics (distance-1
coloring, vertex following) as future work for the distributed setting;
this repo promotes them — plus Leiden-style refinement — into config
knobs of the distributed pipeline.  None of the three is a pure win:

* **coloring** orders the sweep by independent sets — usually a little
  more modularity, always more synchronised sweep rounds;
* **vertex following** pre-merges degree-one vertices — pays a one-time
  pre-coarsening, then every phase runs on the smaller graph, so it
  wins outright exactly when the input is leaf-heavy;
* **refine** splits internally disconnected communities after each
  phase — a per-phase propagation cost buying a structural guarantee
  (zero disconnected communities) the baseline demonstrably violates.

So instead of a single winner, the ablation reports the **Pareto
frontier** over (modelled seconds, modularity) per graph and rank
count.  Inputs are the stand-in graphs decorated with one pendant
vertex per original vertex — the degree-one halo every real web/social
crawl drags along and the stock generators omit.

Set ``REPRO_BENCH_GRAPHS=channel`` (comma-separated names) to restrict
the sweep — the CI smoke job runs the small graph only.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain
from repro.graph import EdgeList
from repro.quality import count_disconnected_communities

from _cache import graph, machine

BENCH_GRAPHS = tuple(
    os.environ.get(
        "REPRO_BENCH_GRAPHS", "soc-friendster,com-orkut,channel"
    ).split(",")
)

PROCESS_COUNTS = (1, 4, 8)

CONFIGS = (
    ("baseline", LouvainConfig()),
    ("+coloring", LouvainConfig(use_coloring=True)),
    ("+vf", LouvainConfig(vertex_following=True)),
    ("+refine", LouvainConfig(refine="leiden")),
)


@lru_cache(maxsize=None)
def leafy(name: str):
    """The stand-in graph with one pendant vertex hung off each vertex
    (uniformly random anchor, deterministic seed)."""
    g = graph(name)
    rng = np.random.default_rng(0)
    n = g.num_vertices
    el = EdgeList.from_csr(g)
    anchors = rng.integers(0, n, size=n)
    leaves = n + np.arange(n)
    return EdgeList.from_arrays(
        2 * n,
        np.concatenate([el.u, anchors]),
        np.concatenate([el.v, leaves]),
        np.concatenate([el.w, np.ones(n)]),
    ).to_csr()


def pareto(points):
    """Non-dominated (elapsed, Q) points, fastest first, strictly
    increasing modularity."""
    frontier = []
    best_q = -np.inf
    for label, elapsed, q in sorted(points, key=lambda r: (r[1], -r[2])):
        if q > best_q:
            best_q = q
            frontier.append((label, elapsed, q))
    return frontier


def collect():
    rows = []
    for name in BENCH_GRAPHS:
        g = leafy(name)
        mach = machine(name)
        for p in PROCESS_COUNTS:
            for label, cfg in CONFIGS:
                r = run_louvain(g, p, cfg, machine=mach)
                rows.append(
                    [
                        name,
                        p,
                        label,
                        round(r.elapsed, 4),
                        round(r.modularity, 4),
                        count_disconnected_communities(g, r.assignment),
                    ]
                )
    return rows


def test_ablation_heuristics(benchmark, record_result, record_bench):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    frontiers = {}
    for name in BENCH_GRAPHS:
        for p in PROCESS_COUNTS:
            pts = [
                (label, t, q)
                for g_, p_, label, t, q, _ in rows
                if g_ == name and p_ == p
            ]
            frontiers[(name, p)] = pareto(pts)

    table = format_table(
        ["Graph", "p", "config", "time (s)", "modularity",
         "disconnected comms"],
        rows,
        title="Ablation — Grappolo heuristics + Leiden refinement "
              "(leaf-decorated inputs)",
    )
    frontier_lines = [
        f"{name} p={p}: " + " -> ".join(
            f"{label}({t:.3f}s, Q={q:.4f})" for label, t, q in pts
        )
        for (name, p), pts in sorted(frontiers.items())
    ]
    record_result(
        "ablation_heuristics",
        table + "\n\nPareto frontiers (modelled seconds x modularity):\n"
        + "\n".join(frontier_lines),
    )
    record_bench(
        "ablation_heuristics",
        {
            "rows": [
                {
                    "graph": name,
                    "ranks": p,
                    "config": label,
                    "elapsed": t,
                    "modularity": q,
                    "disconnected_communities": d,
                }
                for name, p, label, t, q, d in rows
            ],
            "frontiers": [
                {
                    "graph": name,
                    "ranks": p,
                    "points": [
                        {"config": label, "elapsed": t, "modularity": q}
                        for label, t, q in pts
                    ],
                }
                for (name, p), pts in sorted(frontiers.items())
            ],
        },
    )

    # Refinement's structural guarantee: zero internally disconnected
    # communities, on every graph at every rank count.
    for name, p, label, _, _, disconnected in rows:
        if label == "+refine":
            assert disconnected == 0, (name, p)

    # The frontier is a real trade-off curve: at least one (graph, p)
    # exposes >= 2 non-dominated configurations.
    assert any(len(pts) >= 2 for pts in frontiers.values())

    # And the heuristics earn their keep: somewhere in the sweep a
    # heuristic config strictly beats baseline on modelled seconds at
    # equal-or-better modularity (vertex following on leaf-heavy
    # inputs is the designed-for case).
    base = {
        (name, p): (t, q)
        for name, p, label, t, q, _ in rows
        if label == "baseline"
    }
    assert any(
        t < base[(name, p)][0] and q >= base[(name, p)][1]
        for name, p, label, t, q, _ in rows
        if label != "baseline"
    )
