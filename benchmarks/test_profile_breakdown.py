"""§V-A time breakdown: where the Baseline run spends its time.

Paper (HPCToolkit, soc-friendster, 256 processes): ~98% of time in the
Louvain iterations; of that, ~34% communicating community information,
~40% in the modularity allreduce, ~22% local compute; graph rebuild and
input reading ~1% each.
"""

from __future__ import annotations

from repro.bench import format_table

from _cache import single_run


def test_profile_breakdown(benchmark, record_result):
    r = benchmark.pedantic(
        single_run,
        args=("soc-friendster", 32),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    fracs = r.trace.fraction_by_category()
    rows = sorted(fracs.items(), key=lambda kv: -kv[1])
    record_result(
        "profile_breakdown",
        format_table(
            ["Category", "Fraction"],
            [[k, round(v, 4)] for k, v in rows],
            title="§V-A — Baseline time breakdown, soc-friendster "
                  "stand-in, 32 ranks (paper at 256 procs: community comm "
                  "~34%, allreduce ~40%, compute ~22%, rebuild ~1%)",
        ),
    )

    comm_related = (
        fracs.get("community_comm", 0)
        + fracs.get("ghost_comm", 0)
        + fracs.get("allreduce", 0)
    )
    # The paper's §V-A structure at scale: communication is the majority
    # of the iteration loop, compute a substantial minority, and graph
    # rebuilding + input reading are small.
    assert comm_related > 0.45
    assert fracs.get("community_comm", 0) > fracs.get("allreduce", 0)
    assert 0.1 < fracs.get("compute", 0) < 0.6
    assert fracs.get("rebuild", 0) < 0.15
    assert fracs.get("io", 0.0) < 0.05
