"""Ablation: partitioning knobs — input distribution and phase layout.

Two experiments share this module:

* even-edge vs even-vertex *input* distribution.  The paper loads
  "such that each process receives roughly the same number of edges"
  (§IV); this quantifies why: on skewed (social) inputs, even-vertex
  ranges concentrate the heavy rows on a few ranks and the stragglers
  dominate the synchronizing collectives.
* ``repartition="none"`` vs ``"community"`` *phase-boundary* layout.
  The paper re-establishes the even split at every reconstruction
  (§IV-A step 6); community-aware placement instead keeps whole coarse
  communities per rank, shrinking the achieved coarse-phase ghost
  fraction — and with it the modelled ghost + community communication —
  while staying bit-identical.  Mesh-like inputs (channel), whose
  vertex ids already encode locality, are the honest negative case.

Set ``REPRO_BENCH_GRAPHS=channel`` (comma-separated names) to restrict
the repartition sweep — the CI smoke job runs the small graph only.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain
from repro.graph import even_edge, even_vertex

from _cache import graph, machine

BENCH_GRAPHS = tuple(
    os.environ.get(
        "REPRO_BENCH_GRAPHS", "soc-friendster,com-orkut,channel"
    ).split(",")
)

#: Social inputs where community placement must strictly win (meshes
#: with id-locality are allowed to regress — that is the point of the
#: ablation).
SOCIAL_GRAPHS = frozenset({"soc-friendster", "com-orkut"})


def imbalance(g, offsets) -> float:
    """Max/mean stored-entry count across ranks under ``offsets``."""
    row_len = np.diff(g.index)
    loads = [
        row_len[offsets[r]:offsets[r + 1]].sum()
        for r in range(len(offsets) - 1)
    ]
    mean = np.mean(loads)
    return float(max(loads) / mean) if mean else 1.0


def collect():
    rows = []
    for name in ("soc-friendster", "channel"):
        g = graph(name)
        mach = machine(name)
        for p in (4, 8):
            bal_v = imbalance(g, even_vertex(g.num_vertices, p))
            bal_e = imbalance(g, even_edge(np.diff(g.index), p))
            t_v = run_louvain(
                g, p, machine=mach, partition="even_vertex"
            ).elapsed
            t_e = run_louvain(
                g, p, machine=mach, partition="even_edge"
            ).elapsed
            rows.append([name, p, round(bal_v, 2), round(bal_e, 2),
                         t_v, t_e])
    return rows


def test_ablation_partition(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_partition",
        format_table(
            ["Graph", "p", "imbalance (vertex)", "imbalance (edge)",
             "time vertex (s)", "time edge (s)"],
            rows,
            title="Ablation — even-vertex vs even-edge distribution",
        ),
    )
    # Even-edge always balances the stored entries at least as well.
    for _, _, bal_v, bal_e, _, _ in rows:
        assert bal_e <= bal_v + 0.01
    # On the skewed social input it must not be slower overall.
    social = [r for r in rows if r[0] == "soc-friendster"]
    assert min(r[5] for r in social) <= min(r[4] for r in social) * 1.1


def collect_repartition():
    rows = []
    for name in BENCH_GRAPHS:
        g = graph(name)
        mach = machine(name)
        for p in (4, 8):
            ref = run_louvain(g, p, LouvainConfig(), machine=mach)
            rep = run_louvain(
                g, p, LouvainConfig(repartition="community"), machine=mach
            )
            # Layout-only: the detection outcome is untouched.
            assert np.array_equal(ref.assignment, rep.assignment)
            assert ref.modularity == rep.modularity
            # Phase 0 runs on the identical input split either way;
            # coarse phases are where the layout differs.
            gf_none = float(
                np.mean([ph.ghost_fraction for ph in ref.phases[1:]])
            )
            gf_comm = float(
                np.mean([ph.ghost_fraction for ph in rep.phases[1:]])
            )
            s_none = ref.trace.seconds_by_category()
            s_comm = rep.trace.seconds_by_category()
            comm_none = s_none.get("ghost_comm", 0.0) + s_none.get(
                "community_comm", 0.0
            )
            comm_comm = s_comm.get("ghost_comm", 0.0) + s_comm.get(
                "community_comm", 0.0
            )
            rows.append(
                [
                    name,
                    p,
                    round(gf_none, 4),
                    round(gf_comm, 4),
                    round(comm_none, 4),
                    round(comm_comm, 4),
                    round(ref.elapsed, 4),
                    round(rep.elapsed, 4),
                ]
            )
    return rows


def test_ablation_repartition(benchmark, record_result, record_bench):
    rows = benchmark.pedantic(
        collect_repartition, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_repartition",
        format_table(
            ["Graph", "p", "ghost frac (none)", "ghost frac (community)",
             "ghost+community s (none)", "ghost+community s (community)",
             "time none (s)", "time community (s)"],
            rows,
            title="Ablation — phase-boundary layout: even split vs "
                  "community placement (coarse-phase means)",
        ),
    )
    record_bench(
        "ablation_partition",
        {
            "rows": [
                {
                    "graph": name,
                    "ranks": p,
                    "ghost_fraction_none": gf_n,
                    "ghost_fraction_community": gf_c,
                    "comm_seconds_none": cs_n,
                    "comm_seconds_community": cs_c,
                    "elapsed_none": t_n,
                    "elapsed_community": t_c,
                }
                for name, p, gf_n, gf_c, cs_n, cs_c, t_n, t_c in rows
            ]
        },
    )
    # On every social input, community placement must strictly shrink
    # both the achieved coarse-phase ghost fraction and the modelled
    # ghost + community communication, at every rank count.
    for name, p, gf_n, gf_c, cs_n, cs_c, _, _ in rows:
        if name in SOCIAL_GRAPHS:
            assert gf_c < gf_n, (name, p)
            assert cs_c < cs_n, (name, p)
