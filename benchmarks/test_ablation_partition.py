"""Ablation: even-edge vs even-vertex input distribution.

The paper loads "such that each process receives roughly the same
number of edges" (§IV).  This ablation quantifies why: on skewed
(social) inputs, even-vertex ranges concentrate the heavy rows on a few
ranks and the stragglers dominate the synchronizing collectives.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.core import run_louvain
from repro.graph import even_edge, even_vertex

from _cache import graph, machine


def imbalance(g, offsets) -> float:
    """Max/mean stored-entry count across ranks under ``offsets``."""
    row_len = np.diff(g.index)
    loads = [
        row_len[offsets[r]:offsets[r + 1]].sum()
        for r in range(len(offsets) - 1)
    ]
    mean = np.mean(loads)
    return float(max(loads) / mean) if mean else 1.0


def collect():
    rows = []
    for name in ("soc-friendster", "channel"):
        g = graph(name)
        mach = machine(name)
        for p in (4, 8):
            bal_v = imbalance(g, even_vertex(g.num_vertices, p))
            bal_e = imbalance(g, even_edge(np.diff(g.index), p))
            t_v = run_louvain(
                g, p, machine=mach, partition="even_vertex"
            ).elapsed
            t_e = run_louvain(
                g, p, machine=mach, partition="even_edge"
            ).elapsed
            rows.append([name, p, round(bal_v, 2), round(bal_e, 2),
                         t_v, t_e])
    return rows


def test_ablation_partition(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_partition",
        format_table(
            ["Graph", "p", "imbalance (vertex)", "imbalance (edge)",
             "time vertex (s)", "time edge (s)"],
            rows,
            title="Ablation — even-vertex vs even-edge distribution",
        ),
    )
    # Even-edge always balances the stored entries at least as well.
    for _, _, bal_v, bal_e, _, _ in rows:
        assert bal_e <= bal_v + 0.01
    # On the skewed social input it must not be slower overall.
    social = [r for r in rows if r[0] == "soc-friendster"]
    assert min(r[5] for r in social) <= min(r[4] for r in social) * 1.1
