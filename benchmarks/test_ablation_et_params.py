"""Ablation: ET's fixed constants — the 2% inactive floor and ETC's 90%
exit fraction (§IV-B sets both without justification; this sweeps them).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import LouvainConfig, Variant, run_louvain

from _cache import graph, machine


def collect():
    g = graph("channel")
    mach = machine("channel")
    floor_rows = []
    for floor in (0.0, 0.02, 0.10, 0.30):
        cfg = LouvainConfig(
            variant=Variant.ET, alpha=0.75, et_inactive_floor=floor
        )
        r = run_louvain(g, 4, cfg, machine=mach)
        floor_rows.append(
            [floor, round(r.modularity, 4), r.elapsed, r.total_iterations]
        )
    exit_rows = []
    for frac in (0.5, 0.9, 1.0):
        cfg = LouvainConfig(
            variant=Variant.ETC, alpha=0.75, etc_exit_fraction=frac
        )
        r = run_louvain(g, 4, cfg, machine=mach)
        exit_rows.append(
            [frac, round(r.modularity, 4), r.elapsed, r.total_iterations]
        )
    return floor_rows, exit_rows


def test_ablation_et_params(benchmark, record_result):
    floor_rows, exit_rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [
            format_table(
                ["inactive floor", "Q", "time (s)", "iterations"],
                floor_rows,
                title="Ablation — ET inactive floor (alpha=0.75, channel)",
            ),
            format_table(
                ["exit fraction", "Q", "time (s)", "iterations"],
                exit_rows,
                title="Ablation — ETC exit fraction (alpha=0.75, channel)",
            ),
        ]
    )
    record_result("ablation_et_params", text)

    # Quality stays within a few percent across the whole sweep — the
    # paper's constants are not finely tuned.
    all_q = [r[1] for r in floor_rows + exit_rows]
    assert max(all_q) - min(all_q) < 0.08
    # A lazier exit (0.5) never costs more time than a stricter one (1.0).
    by_frac = {r[0]: r for r in exit_rows}
    assert by_frac[0.5][2] <= by_frac[1.0][2] * 1.3
