"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of Ghosh et al. (IPDPS
2018).  Results print to stdout (run with ``-s`` to watch) and are also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
refreshed from a plain ``pytest benchmarks/ --benchmark-only`` run.

Times reported by these benchmarks are *modelled* execution times from
the LogGP-style machine model (see DESIGN.md §2) — the wall-clock time
pytest-benchmark measures is the simulator's own cost and is only used
to keep the suite honest about regression.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Print a result block and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture
def record_bench():
    """Append one structured record to ``BENCH_<name>.json`` (repo root).

    The machine-readable counterpart of :func:`record_result`: the text
    block is for humans, the JSON record is for CI trend tracking (see
    :mod:`repro.bench.record`).
    """
    import time

    from repro.bench import append_bench_record

    def _record(name: str, record: dict) -> None:
        append_bench_record(name, {"timestamp": time.time(), **record})

    return _record
