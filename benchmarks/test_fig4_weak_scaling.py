"""Table V + Fig. 4: weak scaling on SSCA#2 graphs (Baseline).

The paper fixes work per process (Graph#1-#5, 5M-150M vertices on
1-512 processes; max clique size 100, low inter-clique probability) and
observes near-constant execution time and identical convergence across
the series, with near-perfect modularity (~0.99998).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import modularity, run_louvain
from repro.generators import dataset, weak_scaling_series
from repro.runtime import CORI_HASWELL

#: (process count, vertices-per-process) — scaled Table V.
BASE_VERTICES = 2500
PROCESSES = [1, 2, 4, 8]


def run_series():
    series = weak_scaling_series(
        BASE_VERTICES,
        PROCESSES,
        max_clique_size=20,
        inter_clique_fraction=0.003,
    )
    spec = dataset("ssca2")
    # One fixed scale factor for the whole series (derived from the base
    # graph): every stand-in edge represents the same number of real
    # edges, so per-rank work stays constant — the weak-scaling premise.
    base_csr = series[0][1].edges.to_csr()
    mach = CORI_HASWELL.scaled(spec.edge_scale_factor(base_csr))
    out = []
    for p, g in series:
        csr = g.edges.to_csr()
        r = run_louvain(csr, p, machine=mach)
        q_truth = modularity(csr, g.clique_of)
        out.append(
            {
                "p": p,
                "vertices": csr.num_vertices,
                "edges": csr.num_edges,
                "modularity": r.modularity,
                "truth_modularity": q_truth,
                "time": r.elapsed,
                "iterations": r.total_iterations,
                "phases": r.num_phases,
            }
        )
    return out


def test_fig4_weak_scaling(benchmark, record_result):
    data = benchmark.pedantic(
        run_series, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [
            f"Graph#{i + 1}",
            d["vertices"],
            d["edges"],
            round(d["modularity"], 5),
            d["p"],
            d["time"],
            d["iterations"],
        ]
        for i, d in enumerate(data)
    ]
    record_result(
        "fig4_table5",
        format_table(
            [
                "Name",
                "#Vertices",
                "#Edges",
                "Modularity",
                "#Processes",
                "Model time (s)",
                "Iterations",
            ],
            rows,
            title="Table V / Fig. 4 — SSCA#2 weak scaling (Baseline)",
        ),
    )

    times = [d["time"] for d in data]
    # Fig. 4 shape: near-constant time across the series.  (The p=1
    # point pays no communication at all, so compare within p >= 2.)
    assert max(times[1:]) / min(times[1:]) < 2.5
    # Table V: community structure is near-perfect.
    for d in data:
        assert d["modularity"] > 0.95
    # "exact same convergence criteria for each graph": iteration counts
    # stay in a tight band across the series.
    iters = [d["iterations"] for d in data[1:]]
    assert max(iters) - min(iters) <= 6
