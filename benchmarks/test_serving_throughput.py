"""Serving-tier throughput under a mixed read/update multi-tenant load.

Not a paper figure — the sharded serving tier is an extension beyond
the paper (see docs/PAPER_MAPPING.md and docs/SERVING.md).  This bench
keeps the tier honest under the workload it was built for:

* **cold**: first detection of every tenant through a 2-shard fleet —
  process-spawn + scheduling + SPMD simulation end to end;
* **warm**: repeated detections against the shared disk result store —
  throughput when reads are cache hits;
* **mixed**: reads interleaved with streamed edge updates; the churned
  tenant recomputes (its fingerprint moved) while the untouched
  tenants keep hitting the cache — the sustained-throughput number and
  the submit→done p50/p95 come from this phase;
* **fairness**: a saturated single-worker fair-share scheduler serving
  a heavy (24-job) and a starved (6-job) tenant — the ISSUE's
  acceptance bound, starved p95 queue wait within 2x of the heavy
  tenant's, is asserted here;
* **observability overhead**: fresh-compute jobs/s through one engine
  with the full observability stack on (event log + drift monitor +
  periodic Prometheus exporter) vs off — asserted under 5%.

Wall-clock times are real (the shards multiplex actual simulator
runs), unlike the modelled times of the paper-reproduction benches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.generators import make_graph
from repro.service import DetectionRequest, Engine
from repro.serving import ChurnPolicy, DeficitRoundRobinScheduler, ServingTier

WAIT = 300.0


def test_serving_throughput(record_result, record_bench, tmp_path):
    graphs = {
        "alpha": make_graph("channel", scale="tiny", seed=0),
        "beta": make_graph("com-orkut", scale="tiny", seed=1),
        "gamma": make_graph("soc-friendster", scale="tiny", seed=2),
    }
    tier = ServingTier(
        shards=2,
        workers_per_shard=2,
        cache_dir=str(tmp_path / "cache"),
    )
    try:
        for name, graph in graphs.items():
            tier.create_tenant(
                name, nranks=2, churn=ChurnPolicy(absolute=4)
            )
            tier.load_graph(name, graph)

        # Cold: first detection of each tenant (all misses).
        t0 = time.perf_counter()
        cold_handles = [tier.detect(name) for name in graphs]
        cold_responses = [tier.wait(h, timeout=WAIT) for h in cold_handles]
        cold_seconds = time.perf_counter() - t0
        assert all(r.state.value == "done" for r in cold_responses)

        # Warm: repeated batch reads served from the shared result
        # store (the cold pass populated it; batch keys are stable,
        # unlike incremental keys which mix in the warm-start labels).
        warm_jobs = 9
        t0 = time.perf_counter()
        warm_handles = [
            tier.detect(name, incremental=False)
            for name in graphs
            for _ in range(3)
        ]
        warm_responses = [tier.wait(h, timeout=WAIT) for h in warm_handles]
        warm_seconds = time.perf_counter() - t0
        warm_hits = sum(r.cache_hit for r in warm_responses)
        assert warm_hits == warm_jobs, "warm pass should be all cache hits"

        # Mixed read/update: stream churn into alpha (each batch of 4
        # distinct edges fires its threshold -> incremental recompute)
        # while beta/gamma keep reading.
        mixed_responses = []
        t0 = time.perf_counter()
        for round_idx in range(3):
            base = 790 - 8 * round_idx
            handle = None
            for k in range(4):
                handle = tier.add_edges(
                    "alpha", [k], [base - k]
                ) or handle
            assert handle is not None, "churn threshold should have fired"
            reads = [
                tier.detect("beta", incremental=False),
                tier.detect("gamma", incremental=False),
            ]
            mixed_responses.append(tier.wait(handle, timeout=WAIT))
            mixed_responses.extend(
                tier.wait(h, timeout=WAIT) for h in reads
            )
        mixed_seconds = time.perf_counter() - t0
        assert all(r.state.value == "done" for r in mixed_responses)
        mixed_hits = sum(r.cache_hit for r in mixed_responses)
        hit_rate_under_churn = mixed_hits / len(mixed_responses)
        done = [
            r.finished_at - r.submitted_at
            for r in mixed_responses
            if r.finished_at is not None
        ]
        p50 = float(np.percentile(done, 50))
        p95 = float(np.percentile(done, 95))
    finally:
        tier.shutdown()

    # Fairness under saturation: one worker, DRR fair share, a heavy
    # tenant's 24-job backlog vs a starved tenant's 6 jobs submitted
    # after it.  The acceptance bound: starved p95 queue wait within
    # 2x of the heavy tenant's.
    heavy_req = DetectionRequest(
        graph=graphs["alpha"], nranks=2, tenant="heavy"
    )
    starved_req = DetectionRequest(
        graph=graphs["beta"], nranks=2, tenant="starved"
    )
    with Engine(
        workers=1,
        scheduler=DeficitRoundRobinScheduler(max_pending=64),
        store=None,
    ) as engine:
        heavy_ids = [engine.submit(heavy_req) for _ in range(24)]
        starved_ids = [engine.submit(starved_req) for _ in range(6)]
        heavy_waits = [
            engine.wait(j, timeout=WAIT).queue_seconds for j in heavy_ids
        ]
        starved_waits = [
            engine.wait(j, timeout=WAIT).queue_seconds for j in starved_ids
        ]
    heavy_p95 = float(np.percentile(heavy_waits, 95))
    starved_p95 = float(np.percentile(starved_waits, 95))
    assert starved_p95 <= 2.0 * heavy_p95, (
        f"fair share failed: starved p95 {starved_p95:.4f}s vs heavy "
        f"p95 {heavy_p95:.4f}s"
    )

    cold_rate = len(cold_responses) / cold_seconds
    warm_rate = warm_jobs / warm_seconds
    mixed_rate = len(mixed_responses) / mixed_seconds
    lines = [
        "serving throughput (2 shards x 2 workers, 3 tenants, tiny graphs)",
        f"  cold:  {cold_seconds:8.3f}s  {cold_rate:8.1f} jobs/s "
        f"({len(cold_responses)} first detections)",
        f"  warm:  {warm_seconds:8.3f}s  {warm_rate:8.1f} jobs/s "
        f"({warm_jobs} repeat reads, all cache hits)",
        f"  mixed: {mixed_seconds:8.3f}s  {mixed_rate:8.1f} jobs/s "
        f"({len(mixed_responses)} jobs: 3 churn-triggered incremental "
        "re-detections + 6 reads)",
        f"  submit→done under churn: p50 {p50:.4f}s  p95 {p95:.4f}s",
        f"  cache hit-rate under churn: {hit_rate_under_churn:.1%}",
        "  fair share (1 worker saturated, 24 heavy vs 6 starved jobs):",
        f"    heavy p95 queue wait:   {heavy_p95:.4f}s",
        f"    starved p95 queue wait: {starved_p95:.4f}s "
        f"(bound: <= 2x heavy)",
    ]
    record_result("serving_throughput", "\n".join(lines))
    record_bench(
        "serving_throughput",
        {
            "shards": 2,
            "workers_per_shard": 2,
            "tenants": len(graphs),
            "jobs_per_s_cold": round(cold_rate, 2),
            "jobs_per_s_warm": round(warm_rate, 2),
            "jobs_per_s_mixed": round(mixed_rate, 2),
            "p50_submit_done_s": round(p50, 5),
            "p95_submit_done_s": round(p95, 5),
            "hit_rate_under_churn": round(hit_rate_under_churn, 3),
            "heavy_p95_queue_s": round(heavy_p95, 5),
            "starved_p95_queue_s": round(starved_p95, 5),
        },
    )


def _fresh_compute_rate(tmp_path, tag, repeats, jobs, observed):
    """Best-of-N jobs/s for fresh (uncached) detections on one worker."""
    graph = make_graph("soc-friendster", scale="tiny", seed=5)
    request = DetectionRequest(graph=graph, nranks=2)
    best = 0.0
    for rep in range(repeats):
        event_log = None
        drift = None
        if observed:
            from repro.obs import DriftMonitor, EventLog

            event_log = EventLog(
                tmp_path / f"{tag}-{rep}.jsonl", origin="bench"
            )
            drift = DriftMonitor()
        with Engine(
            workers=1, store=None, event_log=event_log, drift=drift
        ) as engine:
            exporter = None
            if observed:
                from repro.obs import PeriodicExporter

                exporter = PeriodicExporter(
                    lambda: engine.metrics.registry.snapshot(),
                    prometheus_path=tmp_path / f"{tag}-{rep}.prom",
                    interval=0.05,
                )
            try:
                t0 = time.perf_counter()
                ids = [engine.submit(request) for _ in range(jobs)]
                responses = engine.wait_all(ids, timeout=WAIT)
                elapsed = time.perf_counter() - t0
            finally:
                if exporter is not None:
                    exporter.close()
        if event_log is not None:
            event_log.close()
        assert all(r.state.value == "done" for r in responses)
        best = max(best, jobs / elapsed)
    return best


def test_observability_overhead(record_result, record_bench, tmp_path):
    """The obs stack must stay passive in cost, not just in results."""
    repeats, jobs = 3, 8
    rate_off = _fresh_compute_rate(
        tmp_path, "off", repeats, jobs, observed=False
    )
    rate_on = _fresh_compute_rate(
        tmp_path, "on", repeats, jobs, observed=True
    )
    overhead = max(0.0, 1.0 - rate_on / rate_off)
    assert overhead < 0.05, (
        f"observability overhead {overhead:.1%}: "
        f"{rate_off:.1f} jobs/s bare vs {rate_on:.1f} jobs/s observed"
    )
    lines = [
        "observability overhead (1 worker, fresh computes, best of "
        f"{repeats}x{jobs} jobs)",
        f"  obs off: {rate_off:8.1f} jobs/s",
        f"  obs on:  {rate_on:8.1f} jobs/s  (event log + drift monitor "
        "+ 20Hz Prometheus exporter)",
        f"  overhead: {overhead:.1%} (bound: < 5%)",
    ]
    record_result("observability_overhead", "\n".join(lines))
    record_bench(
        "serving_throughput",
        {
            "jobs_per_s_obs_off": round(rate_off, 2),
            "jobs_per_s_obs_on": round(rate_on, 2),
            "obs_overhead_fraction": round(overhead, 4),
        },
    )
