"""Ablation: distance-1 coloring and delta ghost updates (§IV-B/§VI).

Two implemented extensions the paper proposes but does not evaluate:

* coloring trades extra synchronisation per iteration (one sweep round
  per colour class) for fewer iterations to converge;
* delta ghost updates ship only moved vertices' community values,
  cutting ghost-exchange volume at zero quality cost.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain

from _cache import graph, machine


def collect():
    rows = []
    for name in ("channel", "com-orkut"):
        g = graph(name)
        mach = machine(name)
        base = run_louvain(g, 4, LouvainConfig(), machine=mach)
        col = run_louvain(
            g, 4, LouvainConfig(use_coloring=True), machine=mach
        )
        delta = run_louvain(
            g, 4, LouvainConfig(ghost_delta_updates=True), machine=mach
        )
        assert np.array_equal(base.assignment, delta.assignment)
        rows.append(
            [
                name,
                base.total_iterations,
                col.total_iterations,
                round(base.modularity, 4),
                round(col.modularity, 4),
                base.trace.total_bytes,
                delta.trace.total_bytes,
            ]
        )
    return rows


def test_ablation_coloring_and_deltas(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "ablation_coloring",
        format_table(
            [
                "Graph",
                "iters (baseline)",
                "iters (coloring)",
                "Q (baseline)",
                "Q (coloring)",
                "bytes (full ghosts)",
                "bytes (delta ghosts)",
            ],
            rows,
            title="Ablation — §VI coloring and delta ghost updates",
        ),
    )
    for _, it_b, it_c, q_b, q_c, bytes_full, bytes_delta in rows:
        # Coloring: fewer or equal iterations, comparable quality.
        assert it_c <= it_b + 2
        assert q_c >= q_b - 0.03
        # Delta ghosts: strictly less traffic (identical results,
        # asserted inside collect()).
        assert bytes_delta < bytes_full
