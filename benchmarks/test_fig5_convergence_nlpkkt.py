"""Fig. 5: convergence characteristics of nlpkkt240 (ET/ETC variants).

Paper (5a/5b, 64 processes): ET(0.25) converges in fewer phases than
ET(0.75) on this input; ET(0.75) runs more phases/iterations yet is
still faster than Baseline because each iteration processes fewer
active vertices; ETC's 90%-inactive exit makes ETC(0.25) and ETC(0.75)
behave almost identically.
"""

from __future__ import annotations

from repro.bench import ascii_plot, format_series

from _cache import single_run

GRAPH = "nlpkkt240"
RANKS = 8
VARIANTS = [
    ("baseline", 0.25, "Baseline"),
    ("et", 0.25, "ET(0.25)"),
    ("et", 0.75, "ET(0.75)"),
    ("etc", 0.25, "ETC(0.25)"),
    ("etc", 0.75, "ETC(0.75)"),
]


def collect():
    return {
        label: single_run(GRAPH, RANKS, variant, alpha)
        for variant, alpha, label in VARIANTS
    }


def test_fig5_convergence_nlpkkt(benchmark, record_result):
    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    blocks = []
    for label, r in results.items():
        blocks.append(
            format_series(
                f"{label} modularity-vs-iteration",
                r.modularity_by_iteration(),
            )
        )
        blocks.append(
            format_series(
                f"{label} iterations-per-phase", r.iterations_per_phase()
            )
        )
        blocks.append(
            f"  {label}: time={r.elapsed:.4f}s phases={r.num_phases} "
            f"iterations={r.total_iterations} Q={r.modularity:.4f}"
        )
    chart = ascii_plot(
        {
            label: [(i, q) for i, q in r.modularity_by_iteration()]
            for label, r in results.items()
        },
        xlabel="iteration",
        ylabel="modularity",
        title=f"{GRAPH}: modularity growth",
    )
    blocks.append(chart)
    record_result(
        f"fig5_{GRAPH}",
        f"Fig. 5 — convergence, {GRAPH}, {RANKS} ranks\n" + "\n".join(blocks),
    )

    base = results["Baseline"]
    et25, et75 = results["ET(0.25)"], results["ET(0.75)"]
    etc25, etc75 = results["ETC(0.25)"], results["ETC(0.75)"]

    # Quality holds for the mild variants (Fig. 5a plateaus together).
    assert et25.modularity > base.modularity - 0.05
    # ET variants beat Baseline on this input (Table IV row: 8.68x best).
    assert min(et25.elapsed, et75.elapsed, etc25.elapsed, etc75.elapsed) \
        < base.elapsed
    # ETC's exit keeps the two alphas close together (Fig. 5b text).
    gap_etc = abs(etc25.total_iterations - etc75.total_iterations)
    gap_et = abs(et25.total_iterations - et75.total_iterations)
    assert gap_etc <= max(gap_et, 3)
