"""Fig. 3 over the paper's *actual* process range, via extrapolation.

The simulated runs cover 1-8 ranks; the paper's x-axis is 16-4096.
This bench calibrates the closed-form scaling model from two simulated
runs per input and prints the predicted execution-time curve over the
paper's range, asserting its structural properties: the curve falls in
the scaling regime, and its minimum ("end point in scaling", §V-A)
lands between 64 and 8192 processes for every input — the paper sees
moderate/large inputs stop scaling at 1K-2K.
"""

from __future__ import annotations

from repro.bench import ascii_plot, format_series
from repro.bench.extrapolate import calibrate

from _cache import graph, machine

PAPER_RANGE = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
INPUTS = ("channel", "nlpkkt240", "soc-friendster", "uk-2007")


def collect():
    out = {}
    for name in INPUTS:
        model = calibrate(graph(name), machine=machine(name))
        out[name] = (model.predict_curve(PAPER_RANGE),
                     model.sweet_spot(1 << 14))
    return out


def test_fig3_extrapolated(benchmark, record_result):
    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    blocks = []
    for name, (curve, sweet) in results.items():
        blocks.append(format_series(f"{name} (predicted)", curve, "model s"))
        blocks.append(f"  {name}: predicted scaling end point ~p={sweet}")
    blocks.append(
        ascii_plot(
            {name: curve for name, (curve, _) in results.items()},
            logx=True,
            logy=True,
            xlabel="processes (paper range)",
            ylabel="predicted model seconds",
            title="Fig. 3 extrapolated to 16-4096 processes",
        )
    )
    record_result(
        "fig3_extrapolated",
        "Fig. 3 over the paper's 16-4096 process range "
        "(calibrated extrapolation)\n" + "\n".join(blocks),
    )

    for name, (curve, sweet) in results.items():
        times = dict(curve)
        # Scaling regime exists: 16 -> 256 must speed up substantially.
        assert times[256] < times[16] * 0.6, name
        # The end point of scaling is finite and in the paper's band.
        assert 64 <= sweet <= 8192, (name, sweet)
