"""Table III: distributed vs shared memory on a single node, 4-64 threads.

Paper (soc-friendster, one Cori node): the shared-memory code is ~5x
faster at 4 threads and ~2.3x at 32-64; the distributed code scales
better with threads (~4.7x from 4 to 64 vs ~2.2x for shared memory).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import grappolo_louvain, run_louvain
from repro.generators import dataset, make_graph
from repro.runtime import CORI_HASWELL, CORI_HASWELL_SHARED

THREADS = [4, 8, 16, 32, 64]


def run_pair(g, threads: int, scale_factor: float) -> tuple[float, float]:
    dist = run_louvain(
        g, 1, machine=CORI_HASWELL.scaled(scale_factor).with_threads(threads)
    ).elapsed
    shared = grappolo_louvain(
        g,
        threads=threads,
        machine=CORI_HASWELL_SHARED.scaled(scale_factor),
    ).elapsed
    return dist, shared


def test_table3_single_node_threads(benchmark, record_result):
    g = make_graph("soc-friendster", scale="small")
    scale_factor = dataset("soc-friendster").edge_scale_factor(g)
    rows = []
    times = {}
    for t in THREADS:
        dist, shared = run_pair(g, t, scale_factor)
        times[t] = (dist, shared)
        rows.append([t, dist, shared, round(dist / shared, 2)])
    record_result(
        "table3",
        format_table(
            [
                "#Threads",
                "Distributed memory (model s)",
                "Shared memory (model s)",
                "Dist/Shared",
            ],
            rows,
            title="Table III — single node, soc-friendster stand-in "
                  "(1 process x N threads)",
        ),
    )

    # Paper shapes:
    # (1) shared memory wins at every thread count on one node;
    for t in THREADS:
        assert times[t][1] < times[t][0]
    # (2) the distributed code scales better from 4 to 64 threads;
    dist_scaling = times[4][0] / times[64][0]
    shared_scaling = times[4][1] / times[64][1]
    assert dist_scaling > shared_scaling
    assert dist_scaling > 3.0  # paper: ~4.7x
    assert 1.5 < shared_scaling < 3.5  # paper: ~2.2x
    # (3) the gap narrows with threads (5x -> ~2.3x in the paper).
    assert times[64][0] / times[64][1] < times[4][0] / times[4][1]

    benchmark.pedantic(
        run_pair,
        args=(g, 16, scale_factor),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
