"""Extension bench: dynamic re-detection vs from-scratch (per [14]).

Not a paper table — the paper cites Grappolo's dynamic capability [14]
as context.  This bench quantifies the warm-start advantage on the
distributed implementation: after a small churn batch, incremental
re-detection should match scratch quality in a fraction of the
iterations/time.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import run_louvain
from repro.core.dynamic import EdgeChurn, apply_churn, incremental_louvain

from _cache import graph, machine


def collect():
    rows = []
    for name in ("channel", "com-orkut"):
        g = graph(name)
        mach = machine(name)
        base = run_louvain(g, 4, machine=mach)
        for frac in (0.01, 0.05):
            churn = EdgeChurn.random(g, frac, frac, seed=42)
            g2 = apply_churn(g, churn)
            inc = incremental_louvain(
                g2, base.assignment, nranks=4, machine=mach,
                reset_touched=churn.touched_vertices(),
            )
            scratch = run_louvain(g2, 4, machine=mach)
            rows.append(
                [
                    name,
                    f"{frac:.0%}",
                    round(inc.modularity, 4),
                    round(scratch.modularity, 4),
                    inc.total_iterations,
                    scratch.total_iterations,
                    inc.elapsed,
                    scratch.elapsed,
                ]
            )
    return rows


def test_extension_dynamic(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "extension_dynamic",
        format_table(
            [
                "Graph",
                "churn",
                "Q (inc)",
                "Q (scratch)",
                "iters (inc)",
                "iters (scratch)",
                "time inc (s)",
                "time scratch (s)",
            ],
            rows,
            title="Extension — incremental re-detection after churn",
        ),
    )
    for _, _, q_inc, q_scr, it_inc, it_scr, t_inc, t_scr in rows:
        assert q_inc >= q_scr - 0.03
        assert it_inc < it_scr
        assert t_inc < t_scr
