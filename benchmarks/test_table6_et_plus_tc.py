"""Table VI: ET(0.25) combined with Threshold Cycling on soc-friendster.

Paper (256-4096 processes): adding TC to ET(0.25) consistently gains
~10-12% at every process count.
"""

from __future__ import annotations

from repro.bench import format_table

from _cache import PROCESS_COUNTS, single_run


def collect():
    rows = []
    for p in PROCESS_COUNTS:
        et = single_run("soc-friendster", p, "et", 0.25)
        et_tc = single_run("soc-friendster", p, "et+tc", 0.25)
        gain = (et.elapsed - et_tc.elapsed) / et.elapsed * 100.0
        rows.append((p, et.elapsed, et_tc.elapsed, gain))
    return rows


def test_table6_et_plus_tc(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "table6",
        format_table(
            [
                "Processes",
                "ET(0.25) (model s)",
                "ET(0.25)+TC (model s)",
                "Gain (%)",
            ],
            [[p, a, b, round(g, 1)] for p, a, b, g in rows],
            title="Table VI — ET(0.25) + Threshold Cycling, "
                  "soc-friendster stand-in",
        ),
    )

    # Paper shape: TC on top of ET does not hurt, and helps at most
    # process counts (~10% there).
    gains = [g for _, _, _, g in rows]
    assert sum(1 for g in gains if g > -5.0) == len(gains)
    assert max(gains) > 0.0
