"""Ablation: owner-push community-info exchange vs the pull protocol.

§V-A attributes ~34% of Baseline runtime to "Community" traffic — the
per-iteration (a_c, |c|) refresh.  The pull protocol pays three dense
alltoalls per iteration (fetch request, fetch reply, delta scatter);
the owner-push protocol (``community_push_updates``) pays one fused
exchange round trip whose payload covers only the communities that
*changed*, after a single cold-start pull per phase.  Assignments are
bit-identical, so the whole difference is transport.

Set ``REPRO_BENCH_GRAPHS=channel`` (comma-separated names) to restrict
the sweep — the CI smoke job runs the small graph only.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain

from _cache import graph, machine

BENCH_GRAPHS = tuple(
    os.environ.get("REPRO_BENCH_GRAPHS", "channel,soc-friendster").split(",")
)


def collect():
    rows = []
    for name in BENCH_GRAPHS:
        g = graph(name)
        mach = machine(name)
        for p in (4, 8):
            pull = run_louvain(g, p, LouvainConfig(), machine=mach)
            push = run_louvain(
                g, p, LouvainConfig(community_push_updates=True),
                machine=mach,
            )
            assert np.array_equal(pull.assignment, push.assignment)
            pull_s = pull.trace.seconds_by_category()["community_comm"]
            push_s = push.trace.seconds_by_category()["community_comm"]
            pull_colls = pull.trace.collective_counts()
            push_colls = push.trace.collective_counts()
            iters = push.total_iterations
            # Steady-state community collectives per iteration per rank:
            # pull = 3 alltoalls; push = 1 fused round trip (plus one
            # cold-start pull per phase, also an exchange_roundtrip).
            pull_per_iter = (
                pull_colls["alltoall"] - push_colls.get("alltoall", 0)
            ) / (p * iters)
            push_per_iter = (
                push_colls["exchange_roundtrip"] / p - push.num_phases
            ) / iters
            rows.append(
                [
                    name,
                    p,
                    round(pull_s, 4),
                    round(push_s, 4),
                    round((pull_s - push_s) / pull_s * 100, 1),
                    round(pull_per_iter, 2),
                    round(push_per_iter, 2),
                ]
            )
    return rows


def test_ablation_community_push(benchmark, record_result, record_bench):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_bench(
        "ablation_community_push",
        {
            "rows": [
                {
                    "graph": name,
                    "ranks": p,
                    "pull_seconds": pull_s,
                    "push_seconds": push_s,
                    "gain_percent": gain,
                    "pull_collectives_per_iter": pull_pi,
                    "push_collectives_per_iter": push_pi,
                }
                for name, p, pull_s, push_s, gain, pull_pi, push_pi in rows
            ]
        },
    )
    record_result(
        "ablation_community_push",
        format_table(
            ["Graph", "p", "pull comm (s)", "push comm (s)", "gain (%)",
             "pull colls/iter", "push colls/iter"],
            rows,
            title="Ablation — community-info transport (§V-A 'Community')",
        ),
    )
    for _, _, pull_s, push_s, gain, pull_per_iter, push_per_iter in rows:
        # The push protocol must reduce modelled community-comm time...
        assert push_s < pull_s
        assert gain > 0
        # ...and collapse the three alltoalls per iteration to one
        # fused round trip (cold-start pulls excluded above).
        assert pull_per_iter == 3.0
        assert push_per_iter == 1.0
