"""Table IV: best speedup over Baseline and the winning variant per graph.

Paper: speedups of 1.8x (sk-2005) to 46.18x (channel), with ET/ETC
winning on 10 of 12 inputs and Threshold Cycling on the other two.
The structural claims: every graph has a variant at least matching
Baseline, and ET/ETC dominates the winners' column.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.generators import TABLE2_NAMES

from _cache import PROCESS_COUNTS, variant_sweep


def test_table4_best_variant(benchmark, record_result):
    def collect():
        out = {}
        for name in TABLE2_NAMES:
            sweep = variant_sweep(name, tuple(PROCESS_COUNTS))
            out[name] = sweep.best_speedup_over_baseline()
        return out

    best = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [name, f"{speedup:.2f}x", label, p]
        for name, (speedup, label, p) in best.items()
    ]
    record_result(
        "table4",
        format_table(
            ["Graphs", "Best speedup", "Version", "at p"],
            rows,
            title="Table IV — best performance over Baseline "
                  "(Baseline measured at the smallest p)",
        ),
    )

    # No graph regresses: the best configuration is at least Baseline.
    for name, (speedup, _, _) in best.items():
        assert speedup >= 1.0, name
    # ET/ETC variants win on the majority of inputs (10/12 in the paper).
    et_wins = sum(
        1 for _, label, _ in best.values() if label.startswith(("ET", "ETC"))
    )
    assert et_wins >= len(TABLE2_NAMES) // 2
    # Meaningful speedups exist (paper: up to 46x).
    assert max(s for s, _, _ in best.values()) > 2.0
