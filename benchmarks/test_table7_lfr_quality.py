"""Table VII: quality vs LFR ground truth (precision, recall, F-score).

Paper (5 LFR graphs, 350K-2M vertices; 32 processes): recall 1.0
everywhere, precision 0.98 -> 0.896 falling with graph size, F-score
0.99 -> 0.945.  The falling-precision trend is the resolution limit:
as the graph grows with community sizes fixed, Louvain merges more
ground-truth communities.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import LouvainConfig, run_louvain
from repro.generators import generate_lfr
from repro.quality import best_match_scores, normalized_mutual_information
from repro.runtime import CORI_HASWELL

#: Scaled stand-ins for the paper's 350K..2M-vertex series.
SIZES = [400, 700, 1000, 1500, 2000]
RANKS = 4


def collect():
    rows = []
    for i, n in enumerate(SIZES):
        lfr = generate_lfr(
            n,
            mu=0.08,
            avg_degree=14.0,
            min_community=40,
            max_community=100,
            seed=100 + i,
        )
        g = lfr.edges.to_csr()
        r = run_louvain(
            g, RANKS, LouvainConfig(track_assignments=True),
            machine=CORI_HASWELL.scaled(1e3),
        )
        s = best_match_scores(lfr.community_of, r.assignment)
        nmi = normalized_mutual_information(lfr.community_of, r.assignment)
        rows.append((n, g.num_edges, s, nmi))
    return rows


def test_table7_lfr_quality(benchmark, record_result):
    rows = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    record_result(
        "table7",
        format_table(
            ["#Vertices", "#Edges", "Precision", "Recall", "F-score", "NMI"],
            [
                [n, m, round(s.precision, 6), round(s.recall, 6),
                 round(s.fscore, 6), round(nmi, 4)]
                for n, m, s, nmi in rows
            ],
            title="Table VII — quality vs LFR ground truth "
                  f"({RANKS} ranks)",
        ),
    )

    for _, _, s, _ in rows:
        # Paper: recall 1.0 for every case (ours can lose the odd
        # boundary vertex at this scale).
        assert s.recall > 0.99
        assert s.fscore > 0.75
    # Precision does not improve as the graph grows (Table VII trend —
    # the resolution limit merges more communities in bigger graphs).
    precisions = [s.precision for _, _, s, _ in rows]
    assert precisions[-1] <= precisions[0] + 0.02
