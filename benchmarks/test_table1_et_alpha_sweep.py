"""Table I: ET alpha sweep on CNR and Channel (shared-memory, 8 cores).

Paper's finding: modularity is essentially flat across alpha while
runtime and iteration counts fall as alpha -> 1; the win is ~2x on CNR
(small-world) but ~58x on Channel (banded) — structure determines how
much activity ET can cut.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import LouvainConfig, Variant, grappolo_louvain
from repro.generators import make_graph

ALPHAS = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0]


def run_alpha(g, alpha: float):
    cfg = (
        LouvainConfig(variant=Variant.ET, alpha=alpha)
        if alpha > 0.0
        else LouvainConfig()  # alpha=0 is the baseline scheme
    )
    # Table I ran on 8 cores of a Xeon.
    return grappolo_louvain(g, cfg, threads=8)


@pytest.mark.parametrize("name", ["cnr", "channel"])
def test_table1_alpha_sweep(benchmark, record_result, name):
    g = make_graph(name, scale="tiny")
    rows = []
    for alpha in ALPHAS:
        r = run_alpha(g, alpha)
        rows.append(
            [alpha, round(r.modularity, 5), r.elapsed, r.total_iterations]
        )
    record_result(
        f"table1_{name}",
        format_table(
            ["alpha", "Modularity", "Model time (s)", "No. iterations"],
            rows,
            title=f"Table I — ET alpha sweep, input: {name} "
                  f"(shared memory, 8 threads)",
        ),
    )

    # Paper shape: runtime falls as alpha -> 1 while quality stays flat.
    # (Iteration counts are not strictly monotone in Table I either —
    # aggressive ET can add phases while shrinking per-phase work.)
    by_alpha = {row[0]: row for row in rows}
    assert by_alpha[1.0][2] <= by_alpha[0.0][2]
    assert abs(by_alpha[1.0][1] - by_alpha[0.0][1]) < 0.05

    benchmark.pedantic(
        run_alpha, args=(g, 0.5), rounds=2, iterations=1, warmup_rounds=0
    )
