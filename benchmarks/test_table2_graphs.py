"""Table II: the test-graph roster with single-thread modularity.

The paper lists the 12 inputs with the modularity Grappolo reports on
one thread.  This bench regenerates the table for the synthetic
stand-ins and checks each lands near the paper's quality column (the
property the stand-ins were designed for — see DESIGN.md §2).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core import grappolo_louvain
from repro.generators import TABLE2_NAMES, dataset, make_graph


def test_table2_graph_roster(benchmark, record_result):
    rows = []
    measured = {}
    for name in TABLE2_NAMES:
        spec = dataset(name)
        g = make_graph(name, scale="small")
        r = grappolo_louvain(g, threads=1)
        measured[name] = r.modularity
        rows.append(
            [
                name,
                f"{g.num_vertices} ({spec.paper_vertices})",
                f"{g.num_edges} ({spec.paper_edges})",
                round(r.modularity, 3),
                spec.paper_modularity,
            ]
        )
    record_result(
        "table2",
        format_table(
            [
                "Graph",
                "#Vertices (paper)",
                "#Edges (paper)",
                "Modularity",
                "Paper modularity",
            ],
            rows,
            title="Table II — test graphs (synthetic stand-ins, scale=small)",
        ),
    )

    for name in TABLE2_NAMES:
        paper_q = dataset(name).paper_modularity
        assert abs(measured[name] - paper_q) < 0.12, (
            f"{name}: measured {measured[name]:.3f} vs paper {paper_q:.3f}"
        )

    benchmark.pedantic(
        lambda: grappolo_louvain(make_graph("channel", scale="tiny"),
                                 threads=1),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
