"""Fig. 3: strong-scaling curves for all 12 graphs, all five variants.

The paper plots execution time vs process count (16-4096 on Cori) for
Baseline, Threshold Cycling, ET(0.25/0.75) and ETC(0.25/0.75).  The
simulation maps that range to 1-8 ranks on scaled stand-ins; the
structural claims under test are (a) time falls with p in the scaling
regime, and (b) heuristic variants sit at or below Baseline for most
inputs.
"""

from __future__ import annotations

import pytest

from repro.bench import ascii_plot, format_series
from repro.generators import TABLE2_NAMES

from _cache import PROCESS_COUNTS, variant_sweep


@pytest.mark.parametrize("name", TABLE2_NAMES)
def test_fig3_strong_scaling(benchmark, record_result, name):
    sweep = benchmark.pedantic(
        variant_sweep,
        args=(name, tuple(PROCESS_COUNTS)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    blocks = [
        format_series(label, sweep.elapsed_series(label), unit="model s")
        for label in sweep.labels()
    ]
    chart = ascii_plot(
        {label: sweep.elapsed_series(label) for label in sweep.labels()},
        logx=True,
        logy=True,
        xlabel="processes",
        ylabel="model seconds",
        title=f"{name}: execution time vs processes",
    )
    record_result(
        f"fig3_{name}",
        f"Fig. 3 — strong scaling, input: {name}\n"
        + "\n".join(blocks) + "\n\n" + chart,
    )

    # Baseline must gain from parallelism somewhere in the range.
    base = dict(sweep.elapsed_series("Baseline"))
    assert min(base.values()) < base[1]

    # Quality never collapses for any variant/process count.
    lo, hi = sweep.modularity_spread()
    assert lo > 0.25


def test_fig3_heuristics_beat_baseline_overall(benchmark, record_result):
    """Across the roster, the best heuristic beats Baseline's best."""

    def collect():
        out = {}
        for name in TABLE2_NAMES:
            sweep = variant_sweep(name, tuple(PROCESS_COUNTS))
            base_best = min(t for _, t in sweep.elapsed_series("Baseline"))
            heur_best = min(
                t
                for label in sweep.labels()
                if label != "Baseline"
                for _, t in sweep.elapsed_series(label)
            )
            out[name] = (base_best, heur_best)
        return out

    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        f"{name}: baseline {b:.3e}s best-heuristic {h:.3e}s"
        for name, (b, h) in results.items()
    ]
    record_result(
        "fig3_summary", "Fig. 3 summary (best times)\n" + "\n".join(rows)
    )
    wins = sum(1 for b, h in results.values() if h <= b)
    assert wins >= len(TABLE2_NAMES) * 2 // 3
