"""Unified observability: metrics registry, exporters, events, drift.

The subsystem gives every layer of the reproduction one telemetry
surface (the paper's §V evaluation is built on exactly this kind of
per-category timing breakdown):

* :mod:`repro.obs.registry` — labeled counters / gauges / histograms
  behind a single :class:`MetricsRegistry`; `ServiceMetrics`, the
  serving tier, and SPMD :class:`~repro.runtime.tracing.TraceReport`
  aggregation are all backed by it.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshots, periodic file export, and a tiny ``/metrics`` HTTP server.
* :mod:`repro.obs.events` — structured JSON-lines event log with
  correlated run / job / phase / tenant ids across the engine, shard
  processes, and SPMD runs.
* :mod:`repro.obs.drift` — per-config-family EWMA of measured vs
  cost-model-predicted seconds; crossing the threshold triggers a
  background re-tune and a cheap machine-model calibration rescale
  (ROADMAP item 3's online half).

Observability is strictly passive: enabling any of it never changes a
detection result.
"""

from .drift import DriftConfig, DriftDecision, DriftMonitor
from .events import EventLog, emit_current, read_events, scoped
from .export import (
    MetricsServer,
    PeriodicExporter,
    merge_snapshots,
    to_prometheus,
    trace_to_registry,
    write_json,
    write_prometheus,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "DriftConfig",
    "DriftDecision",
    "DriftMonitor",
    "EventLog",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "MetricsServer",
    "PeriodicExporter",
    "emit_current",
    "merge_snapshots",
    "read_events",
    "scoped",
    "to_prometheus",
    "trace_to_registry",
    "write_json",
    "write_prometheus",
]
