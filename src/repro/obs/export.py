"""Exporters: Prometheus text exposition, JSON snapshots, HTTP endpoint.

Every exporter accepts either a live :class:`MetricsRegistry` or the
plain dict its :meth:`~MetricsRegistry.snapshot` produces — the latter
is what crosses the shard-process RPC boundary, so a serving tier can
render one fleet-wide exposition from snapshots it never owned live
(:func:`merge_snapshots`).
"""

from __future__ import annotations

import http.server
import json
import os
import threading
from typing import Any, Callable, Mapping

from ..runtime.tracing import TraceReport
from .registry import MetricsRegistry

__all__ = [
    "MetricsServer",
    "PeriodicExporter",
    "merge_snapshots",
    "to_prometheus",
    "trace_to_registry",
    "write_json",
    "write_prometheus",
]

Source = MetricsRegistry | Mapping[str, Any] | Callable[[], Any]


def _resolve(source: Source) -> Mapping[str, Any]:
    if callable(source) and not isinstance(source, (MetricsRegistry, Mapping)):
        source = source()
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    if isinstance(source, Mapping):
        return source
    raise TypeError(f"cannot export metrics from {type(source).__name__}")


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labelstr(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


def to_prometheus(
    source: Source, *, extra_labels: Mapping[str, str] | None = None
) -> str:
    """Render Prometheus text exposition (version 0.0.4).

    ``extra_labels`` are appended to every sample — the serving tier
    uses this to tag each shard's metrics with ``shard="..."``.
    """
    snap = _resolve(source)
    extra = dict(extra_labels or {})
    lines: list[str] = []
    for metric in snap.get("metrics", []):
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for sample in metric.get("samples", []):
            labels = dict(sample.get("labels", {})) | extra
            if metric["kind"] == "histogram":
                cumulative = 0
                bounds = [str(b) for b in metric["buckets"]] + ["+inf"]
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labelstr(labels | {'le': bound})} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_labelstr(labels)} {_fmt(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labelstr(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_labelstr(labels)} {_fmt(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def _atomic_write(path: str | os.PathLike, text: str) -> None:
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def write_prometheus(
    path: str | os.PathLike,
    source: Source,
    *,
    extra_labels: Mapping[str, str] | None = None,
) -> None:
    """Atomically write the text exposition to ``path``."""
    _atomic_write(path, to_prometheus(source, extra_labels=extra_labels))


def write_json(path: str | os.PathLike, source: Source) -> None:
    """Atomically write the JSON snapshot to ``path``."""
    _atomic_write(
        path, json.dumps(_resolve(source), indent=2, sort_keys=True) + "\n"
    )


def merge_snapshots(
    snapshots: Mapping[str, Mapping[str, Any]], labelname: str = "shard"
) -> dict:
    """Merge per-source registry snapshots into one fleet snapshot.

    Each source's samples gain a ``labelname="<source key>"`` label;
    same-named families merge (first source's metadata wins).  The
    result is itself a valid exporter input.
    """
    merged: dict[str, dict] = {}
    for key, snap in snapshots.items():
        for metric in snap.get("metrics", []):
            out = merged.get(metric["name"])
            if out is None:
                out = merged[metric["name"]] = {
                    k: v for k, v in metric.items() if k != "samples"
                }
                out["labelnames"] = list(metric.get("labelnames", [])) + [
                    labelname
                ]
                out["samples"] = []
            for sample in metric.get("samples", []):
                tagged = dict(sample)
                tagged["labels"] = dict(sample.get("labels", {})) | {
                    labelname: str(key)
                }
                out["samples"].append(tagged)
    return {"metrics": [merged[name] for name in sorted(merged)]}


def trace_to_registry(
    report: TraceReport,
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "repro_spmd",
) -> MetricsRegistry:
    """Fold one SPMD :class:`TraceReport` into registry counters.

    This is the paper's §V-A per-category breakdown as standard metric
    families: modelled seconds per category, collective invocations per
    op, and message/byte totals per direction.
    """
    registry = registry or MetricsRegistry()
    seconds = registry.counter(
        f"{prefix}_seconds_total",
        "Modelled virtual seconds by trace category, summed over ranks.",
        labelnames=("category",),
    )
    for category, secs in sorted(report.seconds_by_category().items()):
        seconds.labels(category=category).inc(secs)
    collectives = registry.counter(
        f"{prefix}_collectives_total",
        "Collective invocations by operation, summed over ranks.",
        labelnames=("op",),
    )
    for op, count in sorted(report.collective_counts().items()):
        collectives.labels(op=op).inc(count)
    messages = registry.counter(
        f"{prefix}_messages_total",
        "Point-to-point messages by direction.",
        labelnames=("direction",),
    )
    nbytes = registry.counter(
        f"{prefix}_bytes_total",
        "Point-to-point payload bytes by direction.",
        labelnames=("direction",),
    )
    messages.labels(direction="sent").inc(report.total_messages)
    nbytes.labels(direction="sent").inc(report.total_bytes)
    messages.labels(direction="received").inc(
        sum(t.messages_received for t in report.ranks)
    )
    nbytes.labels(direction="received").inc(
        sum(t.bytes_received for t in report.ranks)
    )
    registry.gauge(
        f"{prefix}_ranks", "Rank count of the most recent trace."
    ).set(report.size)
    return registry


class PeriodicExporter:
    """Background thread writing metric files on a fixed cadence.

    ``collect`` is called each tick (and once more on :meth:`close`)
    and may return a registry or a snapshot dict.
    """

    def __init__(
        self,
        collect: Callable[[], Any],
        *,
        prometheus_path: str | os.PathLike | None = None,
        json_path: str | os.PathLike | None = None,
        interval: float = 5.0,
        extra_labels: Mapping[str, str] | None = None,
    ) -> None:
        if prometheus_path is None and json_path is None:
            raise ValueError("need at least one output path")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._collect = collect
        self._prometheus_path = prometheus_path
        self._json_path = json_path
        self._interval = interval
        self._extra_labels = extra_labels
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="obs-exporter", daemon=True
        )
        self._thread.start()

    def _write_once(self) -> None:
        snap = _resolve(self._collect)
        if self._prometheus_path is not None:
            write_prometheus(
                self._prometheus_path, snap, extra_labels=self._extra_labels
            )
        if self._json_path is not None:
            write_json(self._json_path, snap)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._write_once()

    def close(self) -> None:
        """Stop the thread and write one final consistent snapshot."""
        self._stop.set()
        self._thread.join()
        self._write_once()

    def __enter__(self) -> "PeriodicExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MetricsServer:
    """Minimal stdlib HTTP endpoint: ``/metrics`` (Prometheus text) and
    ``/metrics.json`` (JSON snapshot), for ``repro-louvain serve
    --metrics-port``."""

    def __init__(
        self,
        collect: Callable[[], Any],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        collect_fn = collect

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                try:
                    if self.path.split("?")[0] == "/metrics":
                        body = to_prometheus(_resolve(collect_fn))
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif self.path.split("?")[0] == "/metrics.json":
                        body = json.dumps(
                            _resolve(collect_fn), indent=2, sort_keys=True
                        )
                        ctype = "application/json"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # collection failed; report, don't die
                    self.send_error(500, repr(exc))
                    return
                data = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, format: str, *args: object) -> None:
                pass  # keep the serving CLI's stdout clean

        self._server = http.server.ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    def close(self) -> None:
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
