"""Labeled metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric *family*; a family has a
name, a kind, a help string, and a tuple of label names, and hands out
per-label-value children via :meth:`labels`.  The shape deliberately
mirrors the Prometheus client-library data model so the exporters in
:mod:`repro.obs.export` can render standard text exposition, while
:meth:`MetricsRegistry.snapshot` produces a plain JSON-able dict that
survives the shard-process RPC boundary (exporters accept either a live
registry or such a snapshot).

Everything is thread-safe; families are get-or-create, so independent
subsystems can attach to the same registry without coordination.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
]

#: Default latency bucket upper bounds, seconds (log-ish spacing wide
#: enough for both sub-second simulated jobs and multi-minute real ones).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """One labeled child of a counter family: a monotone float."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counters only go up, got inc({by})")
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """One labeled child of a gauge family: a settable float."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def adjust(self, by: float) -> None:
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of seconds (cumulative, Prometheus-style).

    Also the implementation behind the service tier's historical
    ``LatencyHistogram`` — the snapshot dict format (``count`` / ``sum``
    / ``mean`` / ``max`` / ``p50`` / ``p99`` / per-bound ``buckets``) is
    part of the engine's public metrics JSON and must not change.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly increasing")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +inf overflow
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency {seconds}")
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
            self.total += seconds
            self.count += 1
            self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for bound, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= rank:
                return bound
        return self.max

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "max": self.max,
                "p50": self.quantile(0.50),
                "p99": self.quantile(0.99),
                "buckets": {
                    str(b): c for b, c in zip(self.bounds, self.counts)
                }
                | {"+inf": self.counts[-1]},
            }


class _Family:
    """Shared get-or-create child bookkeeping for one metric family."""

    kind = "abstract"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for ln in labelnames:
            if not _LABEL_NAME.match(ln):
                raise ValueError(f"invalid label name {ln!r} for {name}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _child(self, labels: Mapping[str, object]) -> Any:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels_dict, child)`` pairs in insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]

    def _describe(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
        }

    def snapshot(self) -> dict:
        raise NotImplementedError


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def labels(self, **labels: object) -> Counter:
        child: Counter = self._child(labels)
        return child

    def inc(self, by: float = 1.0) -> None:
        """Convenience for label-less families."""
        self.labels().inc(by)

    @property
    def value(self) -> float:
        return self.labels().value

    def snapshot(self) -> dict:
        return self._describe() | {
            "samples": [
                {"labels": labels, "value": child.value}
                for labels, child in self.samples()
            ]
        }


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def labels(self, **labels: object) -> Gauge:
        child: Gauge = self._child(labels)
        return child

    def set(self, value: float) -> None:
        self.labels().set(value)

    def adjust(self, by: float) -> None:
        self.labels().adjust(by)

    @property
    def value(self) -> float:
        return self.labels().value

    def snapshot(self) -> dict:
        return self._describe() | {
            "samples": [
                {"labels": labels, "value": child.value}
                for labels, child in self.samples()
            ]
        }


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        # Validate once here; children reuse the same bounds.
        self.buckets = Histogram(buckets).bounds

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)

    def labels(self, **labels: object) -> Histogram:
        child: Histogram = self._child(labels)
        return child

    def observe(self, seconds: float) -> None:
        self.labels().observe(seconds)

    def snapshot(self) -> dict:
        return self._describe() | {
            "buckets": list(self.buckets),
            "samples": [
                {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.total,
                    "max": child.max,
                    "counts": list(child.counts),
                }
                for labels, child in self.samples()
            ],
        }


class MetricsRegistry:
    """Get-or-create registry of metric families.

    Re-requesting an existing name returns the existing family when the
    kind, label names, and (for histograms) buckets match, and raises
    otherwise — two subsystems can therefore share a metric by name
    without sharing code.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, factory: Any, kind: str) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            family: _Family = factory()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> CounterFamily:
        names = tuple(labelnames)
        family = self._get_or_create(
            name, lambda: CounterFamily(name, help, names), "counter"
        )
        self._check_labels(family, names)
        assert isinstance(family, CounterFamily)
        return family

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> GaugeFamily:
        names = tuple(labelnames)
        family = self._get_or_create(
            name, lambda: GaugeFamily(name, help, names), "gauge"
        )
        self._check_labels(family, names)
        assert isinstance(family, GaugeFamily)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        names = tuple(labelnames)
        family = self._get_or_create(
            name,
            lambda: HistogramFamily(name, help, names, buckets),
            "histogram",
        )
        self._check_labels(family, names)
        assert isinstance(family, HistogramFamily)
        if family.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"metric {name!r} already registered with buckets "
                f"{family.buckets}"
            )
        return family

    @staticmethod
    def _check_labels(family: _Family, labelnames: tuple[str, ...]) -> None:
        if family.labelnames != labelnames:
            raise ValueError(
                f"metric {family.name!r} already registered with labels "
                f"{family.labelnames}, not {labelnames}"
            )

    def families(self) -> list[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> dict:
        """JSON-able view of every family (exporter input; RPC-safe)."""
        return {"metrics": [f.snapshot() for f in self.families()]}
