"""Structured JSON-lines event log with cross-process correlation ids.

One :class:`EventLog` appends single-line JSON records to a file; the
engine, every shard process, and the SPMD executor can share one path
(single-line ``O_APPEND`` writes interleave without tearing on POSIX),
and records correlate through their id fields: ``job_id`` stitches a
detection from admission (``job_submitted``) through its SPMD run
(``spmd_run_started`` / ``spmd_phase``) and collectives summary
(``spmd_trace``) to the cache write (``cache_write``); ``tenant`` and
``shard`` extend the chain across the serving tier.

The SPMD executor has no handle on the engine's log, so the engine
installs it for the duration of a job via :func:`scoped` (a
context-variable, so concurrent worker threads keep separate ids) and
deep layers emit through :func:`emit_current`, which is a no-op when
nothing is installed — observability off means zero behaviour change.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
from typing import Any, Iterator, Mapping

__all__ = ["EventLog", "emit_current", "read_events", "scoped"]

#: Record format version, stamped on every line.
EVENT_FORMAT_VERSION = 1


class EventLog:
    """Append-only JSON-lines event sink.

    Each record carries ``v`` (format version), ``ts`` (wall-clock
    seconds), ``origin`` (which component wrote it), ``pid``, and a
    per-writer ``seq`` for total ordering within one writer; every
    other field comes from the emit call.
    """

    def __init__(self, path: str | os.PathLike, *, origin: str = "engine"):
        self.path = os.fspath(path)
        self.origin = origin
        self._lock = threading.Lock()
        self._seq = 0
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event; ``fields`` must be JSON-serializable."""
        with self._lock:
            if self._fh.closed:
                return
            self._seq += 1
            record = {
                "v": EVENT_FORMAT_VERSION,
                "ts": time.time(),
                "origin": self.origin,
                "pid": os.getpid(),
                "seq": self._seq,
                "event": event,
            }
            record.update(fields)
            self._fh.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True)
                + "\n"
            )
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(
    path: str | os.PathLike, **match: Any
) -> list[dict[str, Any]]:
    """Parse an event-log file, oldest first.

    Keyword filters keep only records whose field equals the given
    value (``read_events(p, event="job_submitted", tenant="acme")``).
    Records sort by wall-clock time with per-writer sequence as the
    tie-break, so interleaved multi-process logs come back coherent.
    """
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if all(record.get(k) == v for k, v in match.items()):
                records.append(record)
    records.sort(key=lambda r: (r.get("ts", 0.0), r.get("seq", 0)))
    return records


# -- ambient sink for layers without an EventLog handle ----------------
_current: contextvars.ContextVar[
    tuple[EventLog, Mapping[str, Any]] | None
] = contextvars.ContextVar("repro_obs_event_scope", default=None)


@contextlib.contextmanager
def scoped(log: EventLog | None, **ids: Any) -> Iterator[None]:
    """Install ``log`` as the ambient sink for this context.

    ``ids`` (job_id, tenant, ...) are stamped onto every
    :func:`emit_current` record inside the scope.  ``log=None`` is a
    no-op scope, so call sites never need to branch.
    """
    if log is None:
        yield
        return
    token = _current.set((log, dict(ids)))
    try:
        yield
    finally:
        _current.reset(token)


def emit_current(event: str, **fields: Any) -> None:
    """Emit to the ambient sink, if any (cheap no-op otherwise)."""
    scope = _current.get()
    if scope is None:
        return
    log, ids = scope
    log.emit(event, **{**ids, **fields})
