"""Measured-vs-predicted drift monitoring (ROADMAP item 3, online half).

The autotuner plans with an analytic cost model; the engine then
*measures* what each served job actually took.  :class:`DriftMonitor`
keeps, per config family (machine preset × config label × rank count),
an EWMA of ``log(measured / predicted)``.  When the smoothed ratio
drifts past a threshold the monitor:

* reports a :class:`DriftDecision` with ``retune=True`` — the engine
  reacts by enqueueing its existing low-priority background
  ``kind="tune"`` job with ``force=True``;
* applies a cheap calibration rescale to its planning
  :class:`~repro.runtime.perfmodel.MachineModel`
  (:meth:`MachineModel.calibrated`), so both future predictions and the
  forced re-tune search run against a model that matches reality.

The monitor is deterministic: the decision sequence is a pure function
of the ``(family, predicted, measured)`` observation sequence, which is
what makes the re-tune trigger point testable.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from ..runtime.perfmodel import MachineModel
from .registry import MetricsRegistry

__all__ = ["DriftConfig", "DriftDecision", "DriftMonitor"]

#: Floor for measured/predicted seconds so ratios stay finite.
_EPS = 1e-12


@dataclass(frozen=True)
class DriftConfig:
    """Tunables for the drift detector."""

    #: EWMA smoothing weight of the newest log-ratio observation.
    ewma_alpha: float = 0.4
    #: Trigger when the smoothed measured/predicted ratio leaves
    #: ``[1/ratio_threshold, ratio_threshold]``.
    ratio_threshold: float = 1.5
    #: Observations a family needs before it may trigger (one outlier
    #: job must not force a re-tune).
    min_observations: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.ratio_threshold <= 1.0:
            raise ValueError(
                f"ratio_threshold must be > 1, got {self.ratio_threshold}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one observation."""

    family: str
    predicted: float
    measured: float
    #: Smoothed measured/predicted ratio after this observation.
    ratio: float
    observations: int
    retune: bool
    #: Rescale factor applied to the planning machine (1.0 unless
    #: ``retune``).
    calibration: float


@dataclass
class _FamilyState:
    ewma: float = 0.0
    observations: int = 0
    retunes: int = 0


class DriftMonitor:
    """Per-family EWMA drift tracker with optional machine calibration.

    ``machine`` is the *planning* model predictions are made with; it is
    never the model a request executes under, so calibration cannot
    perturb detection results.  When omitted, the monitor only tracks
    and decides — calibration is the caller's problem.
    """

    def __init__(
        self,
        machine: MachineModel | None = None,
        config: DriftConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or DriftConfig()
        self._machine = machine
        self._lock = threading.Lock()
        self._families: dict[str, _FamilyState] = {}
        self._registry = registry
        if registry is not None:
            self._ratio_g = registry.gauge(
                "repro_drift_ratio",
                "Smoothed measured/predicted seconds ratio per config family.",
                labelnames=("family",),
            )
            self._obs_c = registry.counter(
                "repro_drift_observations_total",
                "Drift observations per config family.",
                labelnames=("family",),
            )
            self._retunes_c = registry.counter(
                "repro_drift_retunes_total",
                "Drift-triggered background re-tunes per config family.",
                labelnames=("family",),
            )

    @property
    def machine(self) -> MachineModel | None:
        """Current (possibly calibrated) planning machine."""
        with self._lock:
            return self._machine

    @staticmethod
    def family_key(machine: str, config_label: str, ranks: int) -> str:
        """Canonical config-family key (machine × config × ranks)."""
        return f"{machine}|{config_label}|p{ranks}"

    def observe(
        self, family: str, predicted: float, measured: float
    ) -> DriftDecision:
        """Fold one served job's seconds into the family's EWMA.

        Returns the (deterministic) decision; on ``retune`` the family
        state resets so a second trigger needs fresh evidence against
        the recalibrated model.
        """
        if measured < 0 or predicted < 0:
            raise ValueError(
                f"seconds must be >= 0, got predicted={predicted} "
                f"measured={measured}"
            )
        log_ratio = math.log(max(measured, _EPS) / max(predicted, _EPS))
        cfg = self.config
        with self._lock:
            state = self._families.setdefault(family, _FamilyState())
            if state.observations == 0:
                state.ewma = log_ratio
            else:
                state.ewma = (
                    cfg.ewma_alpha * log_ratio
                    + (1.0 - cfg.ewma_alpha) * state.ewma
                )
            state.observations += 1
            ratio = math.exp(state.ewma)
            retune = state.observations >= cfg.min_observations and abs(
                state.ewma
            ) >= math.log(cfg.ratio_threshold)
            calibration = 1.0
            if retune:
                calibration = ratio
                state.retunes += 1
                state.ewma = 0.0
                state.observations = 0
                if self._machine is not None:
                    self._machine = self._machine.calibrated(calibration)
            decision = DriftDecision(
                family=family,
                predicted=predicted,
                measured=measured,
                ratio=ratio,
                observations=state.observations,
                retune=retune,
                calibration=calibration,
            )
        if self._registry is not None:
            self._ratio_g.labels(family=family).set(
                1.0 if decision.retune else decision.ratio
            )
            self._obs_c.labels(family=family).inc()
            if decision.retune:
                self._retunes_c.labels(family=family).inc()
        return decision

    def snapshot(self) -> dict:
        """JSON-able per-family state (exported next to the metrics)."""
        with self._lock:
            return {
                "machine": self._machine.name if self._machine else None,
                "families": {
                    key: {
                        "ratio": math.exp(state.ewma),
                        "observations": state.observations,
                        "retunes": state.retunes,
                    }
                    for key, state in sorted(self._families.items())
                },
            }
