"""Ground-truth quality metrics: precision, recall, F-score (paper §V-D).

The paper follows the methodology of Halappanavar et al. [14]: detected
communities are compared against ground truth by best-match overlap.
For each ground-truth community ``t`` the best-matching detected
community ``d(t)`` (largest intersection) is found; with

* ``tp(t) = |t ∩ d(t)|``
* precision ``= Σ tp / Σ |d(t)|`` (how much of the matched detected
  communities is correct),
* recall ``= Σ tp / Σ |t|`` (how much of the ground truth is recovered),
* ``F = 2 P R / (P + R)``.

Table VII reports precision and F-score with recall = 1.0 on LFR graphs;
the same behaviour falls out of this implementation when every ground
truth community is contained in one detected community.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QualityScores:
    precision: float
    recall: float
    fscore: float

    def format(self) -> str:
        return (
            f"precision={self.precision:.6f} recall={self.recall:.6f} "
            f"F-score={self.fscore:.6f}"
        )


def _group(assignment: np.ndarray) -> dict[int, np.ndarray]:
    assignment = np.asarray(assignment)
    order = np.argsort(assignment, kind="stable")
    sorted_a = assignment[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_a[1:] != sorted_a[:-1]])
    )
    groups = {}
    for i, start in enumerate(boundaries):
        end = boundaries[i + 1] if i + 1 < len(boundaries) else len(order)
        groups[int(sorted_a[start])] = order[start:end]
    return groups


def best_match_scores(
    truth: np.ndarray, detected: np.ndarray
) -> QualityScores:
    """Precision/recall/F-score of ``detected`` against ``truth``.

    Both are per-vertex label arrays of equal length (labels arbitrary).
    """
    truth = np.asarray(truth)
    detected = np.asarray(detected)
    if truth.shape != detected.shape:
        raise ValueError("truth and detected must have the same length")
    if len(truth) == 0:
        return QualityScores(precision=1.0, recall=1.0, fscore=1.0)

    truth_groups = _group(truth)
    detected_sizes = np.bincount(
        np.unique(detected, return_inverse=True)[1]
    )
    det_ids, det_inv = np.unique(detected, return_inverse=True)

    tp_sum = 0.0
    det_size_sum = 0.0
    truth_size_sum = 0.0
    for members in truth_groups.values():
        # Intersection sizes with each detected community present here.
        labels, counts = np.unique(det_inv[members], return_counts=True)
        best = int(np.argmax(counts))
        tp = int(counts[best])
        best_label = labels[best]
        tp_sum += tp
        det_size_sum += int(detected_sizes[best_label])
        truth_size_sum += len(members)

    precision = tp_sum / det_size_sum if det_size_sum else 0.0
    recall = tp_sum / truth_size_sum if truth_size_sum else 0.0
    f = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    del det_ids
    return QualityScores(precision=precision, recall=recall, fscore=f)
