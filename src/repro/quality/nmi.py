"""Normalised mutual information between two partitions.

Not reported in the paper, but a standard cross-check for community
detection quality; the LFR validation example uses it alongside the
paper's F-score metric.
"""

from __future__ import annotations

import numpy as np


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI in [0, 1] between label arrays ``a`` and ``b``.

    Uses the arithmetic-mean normalisation ``2 I(A;B) / (H(A) + H(B))``.
    Two identical partitions score 1; independent partitions approach 0.
    Degenerate single-cluster-vs-single-cluster comparisons score 1.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("label arrays must have the same length")
    n = len(a)
    if n == 0:
        return 1.0
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    na, nb = ai.max() + 1, bi.max() + 1
    if na == 1 and nb == 1:
        return 1.0

    joint = np.zeros((na, nb), dtype=np.float64)
    np.add.at(joint, (ai, bi), 1.0)
    joint /= n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)

    nz = joint > 0
    outer = np.outer(pa, pb)
    mi = float((joint[nz] * np.log(joint[nz] / outer[nz])).sum())
    ha = float(-(pa[pa > 0] * np.log(pa[pa > 0])).sum())
    hb = float(-(pb[pb > 0] * np.log(pb[pb > 0])).sum())
    if ha + hb == 0.0:
        return 1.0
    return max(0.0, min(1.0, 2.0 * mi / (ha + hb)))
