"""Internal-connectivity audit of a community assignment.

Louvain can leave a community *internally disconnected* — two vertex
groups with no edge between them held together only by the aggregate
``a_c`` term (Traag, Waltman & van Eck 2019).  The
``LouvainConfig.refine="leiden"`` pass exists to eliminate exactly
this; these serial checkers are the ground truth the tests and the
heuristics bench assert against.

All functions take the original :class:`~repro.graph.csr.CSRGraph`
and a full assignment array (one community label per vertex, any label
space).  Vertices with no same-community neighbour form their own
singleton component; an isolated vertex is trivially connected.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "community_components",
    "disconnected_communities",
    "count_disconnected_communities",
]


def community_components(g: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Connected-component label per vertex, *within* its community.

    Min-label propagation restricted to same-community edges: each
    vertex's label converges to the smallest vertex id in its
    ``(community, component)``.  Two vertices share a label iff they
    are in the same community and connected through it.
    """
    assignment = np.asarray(assignment)
    n = g.num_vertices
    if len(assignment) != n:
        raise ValueError(
            f"assignment covers {len(assignment)} vertices, graph has {n}"
        )
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.index))
    targets = g.edges
    same = assignment[rows] == assignment[targets]
    rows = rows[same]
    targets = targets[same]
    labels = np.arange(n, dtype=np.int64)
    while True:
        new = labels.copy()
        if len(rows):
            np.minimum.at(new, rows, labels[targets])
        if np.array_equal(new, labels):
            return labels
        labels = new


def disconnected_communities(
    g: CSRGraph, assignment: np.ndarray
) -> list[int]:
    """Labels of internally disconnected communities, sorted.

    A community is disconnected when its members span more than one
    connected component of the community-induced subgraph.
    """
    labels = community_components(g, assignment)
    assignment = np.asarray(assignment)
    # Count distinct component representatives per community: a vertex
    # is its component's representative iff its label equals its id.
    roots = np.flatnonzero(labels == np.arange(g.num_vertices))
    comms, counts = np.unique(assignment[roots], return_counts=True)
    return [int(c) for c in comms[counts > 1]]


def count_disconnected_communities(
    g: CSRGraph, assignment: np.ndarray
) -> int:
    """Number of internally disconnected communities (0 = all sound)."""
    return len(disconnected_communities(g, assignment))
