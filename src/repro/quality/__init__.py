"""Quality assessment against ground truth (paper §V-D)."""

from .connectivity import (
    community_components,
    count_disconnected_communities,
    disconnected_communities,
)
from .fscore import QualityScores, best_match_scores
from .nmi import normalized_mutual_information

__all__ = [
    "QualityScores",
    "best_match_scores",
    "community_components",
    "count_disconnected_communities",
    "disconnected_communities",
    "normalized_mutual_information",
]
