"""Quality assessment against ground truth (paper §V-D)."""

from .fscore import QualityScores, best_match_scores
from .nmi import normalized_mutual_information

__all__ = [
    "QualityScores",
    "best_match_scores",
    "normalized_mutual_information",
]
