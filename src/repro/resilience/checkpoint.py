"""Phase-level checkpoint/restore for the simulated SPMD runtime.

On-disk layout (one directory per checkpoint under the user's root)::

    <root>/
        step-000000/
            shard-00000.npz     per-rank state (arrays + JSON meta)
            shard-00001.npz
            manifest.json       written last; its presence + checksums
                                define a *valid* checkpoint
        step-000001/
            ...

Shards are written to a temp file and atomically renamed; the manifest
(rank 0 only) likewise, after a gather of every shard's SHA-256 digest.
A crash mid-save therefore never produces a half-valid checkpoint: either
the manifest exists and names checksummed shards, or the step directory
is garbage to be ignored.  Corruption after the fact (bit rot, truncated
writes, an injected ``corrupt_checkpoint_shard``) is caught by digest
verification at restore time, and restore falls back to the newest
*older* checkpoint that verifies.

Checkpoint traffic and file I/O are charged to the ``checkpoint`` trace
category so the bench harness can attribute the overhead (§V-A style).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from ..runtime.comm import Communicator

#: Version of the on-disk checkpoint format.  Bump on layout changes;
#: restore refuses manifests written by a different version.
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
_STEP_RE = re.compile(r"^step-(\d{6,})$")
_META_KEY = "_meta"


class CheckpointError(Exception):
    """Base class for checkpoint/restore failures."""


class ManifestError(CheckpointError):
    """A manifest is missing, unreadable, or from an unknown format."""


class CorruptShardError(CheckpointError):
    """A shard file does not match its manifest checksum."""


class NoCheckpointError(CheckpointError):
    """No valid checkpoint exists in the directory."""


@dataclass(frozen=True)
class ShardInfo:
    """Integrity record of one rank's shard within a manifest."""

    rank: int
    filename: str
    nbytes: int
    sha256: str


@dataclass(frozen=True)
class Manifest:
    """One checkpoint's metadata (contents of ``manifest.json``)."""

    seq: int
    kind: str            # "phase" (boundary) or "iteration" (mid-phase)
    phase: int
    iteration: int       # -1 for a phase-boundary checkpoint
    size: int            # world size the checkpoint was taken at
    version: int
    label: str           # free-form application tag (e.g. config label)
    shards: tuple[ShardInfo, ...]
    directory: str       # absolute path of the checkpoint directory
    #: ``LouvainConfig.cache_key()`` of the run that wrote the
    #: checkpoint ("" for pre-key manifests).  Resume refuses manifests
    #: whose key differs from the resuming config: continuing a run
    #: under different semantics would silently produce garbage.
    config_key: str = ""

    def shard_path(self, rank: int) -> str:
        for s in self.shards:
            if s.rank == rank:
                return os.path.join(self.directory, s.filename)
        raise ManifestError(
            f"manifest {self.directory} has no shard for rank {rank}"
        )

    def describe(self) -> str:
        where = (
            f"phase {self.phase}"
            if self.iteration < 0
            else f"phase {self.phase} iteration {self.iteration}"
        )
        total = sum(s.nbytes for s in self.shards)
        return (
            f"step {self.seq:06d}: {self.kind} checkpoint at {where}, "
            f"{self.size} rank(s), {total} bytes"
            + (f" [{self.label}]" if self.label else "")
        )


@dataclass
class RestoredRank:
    """Per-rank state attached to a communicator by ``restore_world``."""

    manifest: Manifest
    meta: dict[str, Any]
    arrays: dict[str, np.ndarray]
    consumed: bool = field(default=False)


# ----------------------------------------------------------------------
# Low-level helpers
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_write_bytes(path: str, data: bytes) -> None:
    d = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=d, prefix=".tmp-", suffix="~")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _shard_filename(rank: int) -> str:
    return f"shard-{rank:05d}.npz"


def _step_dirname(seq: int) -> str:
    return f"step-{seq:06d}"


def _serialize_shard(meta: dict[str, Any], arrays: dict[str, np.ndarray]) -> bytes:
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved")
    buf = io.BytesIO()
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    payload[_META_KEY] = np.array(json.dumps(meta))
    np.savez_compressed(buf, **payload)
    return buf.getvalue()


def _deserialize_shard(path: str) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data[_META_KEY]))
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    return meta, arrays


def read_manifest(step_dir: str) -> Manifest:
    """Parse ``<step_dir>/manifest.json``; raises :class:`ManifestError`."""
    path = os.path.join(step_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    try:
        version = int(raw["version"])
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ManifestError(
                f"{path}: checkpoint format version {version} is not "
                f"supported (this build reads version "
                f"{CHECKPOINT_FORMAT_VERSION})"
            )
        shards = tuple(
            ShardInfo(
                rank=int(s["rank"]),
                filename=str(s["filename"]),
                nbytes=int(s["nbytes"]),
                sha256=str(s["sha256"]),
            )
            for s in raw["shards"]
        )
        return Manifest(
            seq=int(raw["seq"]),
            kind=str(raw["kind"]),
            phase=int(raw["phase"]),
            iteration=int(raw["iteration"]),
            size=int(raw["size"]),
            version=version,
            label=str(raw.get("label", "")),
            shards=shards,
            directory=os.path.abspath(step_dir),
            config_key=str(raw.get("config_key", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestError(f"malformed manifest {path}: {exc}") from exc


def verify_manifest(manifest: Manifest) -> list[str]:
    """Return integrity problems ([] when the checkpoint is fully valid)."""
    problems: list[str] = []
    if len(manifest.shards) != manifest.size:
        problems.append(
            f"{len(manifest.shards)} shard(s) listed for world size "
            f"{manifest.size}"
        )
    for s in manifest.shards:
        path = os.path.join(manifest.directory, s.filename)
        if not os.path.exists(path):
            problems.append(f"missing shard {s.filename}")
            continue
        if os.path.getsize(path) != s.nbytes:
            problems.append(
                f"shard {s.filename}: size {os.path.getsize(path)} != "
                f"manifest {s.nbytes}"
            )
            continue
        if _sha256_file(path) != s.sha256:
            problems.append(f"shard {s.filename}: checksum mismatch")
    return problems


def scan_checkpoints(root: str) -> list[tuple[str, Manifest | None, str | None]]:
    """Every step directory under ``root`` with its manifest or error.

    Returns ``[(dirname, manifest-or-None, error-or-None)]`` ordered by
    ascending sequence number; directories whose manifest is missing or
    unreadable appear with ``manifest=None`` and the error string.
    """
    if not os.path.isdir(root):
        return []
    out = []
    for name in sorted(os.listdir(root)):
        if not _STEP_RE.match(name):
            continue
        step_dir = os.path.join(root, name)
        try:
            out.append((name, read_manifest(step_dir), None))
        except ManifestError as exc:
            out.append((name, None, str(exc)))
    return out


def latest_valid_manifest(
    root: str,
    expect_size: int | None = None,
    verify_shards: bool = True,
) -> Manifest | None:
    """Newest checkpoint that parses, matches the size, and verifies.

    Scans sequence numbers in descending order and skips invalid or
    corrupt checkpoints, so restore degrades gracefully to the last
    good state.
    """
    entries = [m for _, m, _ in scan_checkpoints(root) if m is not None]
    for manifest in sorted(entries, key=lambda m: -m.seq):
        if expect_size is not None and manifest.size != expect_size:
            continue
        if verify_shards and verify_manifest(manifest):
            continue
        return manifest
    return None


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """Collective checkpoint writer/reader for one SPMD run.

    Every rank of the run constructs its own manager over the same
    directory (managers are rank-local objects, like communicators).
    :meth:`save` and :meth:`load_latest` are collective: all ranks must
    call them together, in the same order.

    Parameters
    ----------
    directory:
        Root of the checkpoint tree (created on first save).
    every_phases:
        Take a phase-boundary checkpoint every K phases (0 disables).
    every_iterations:
        Additionally checkpoint every K Louvain iterations inside a
        phase (None/0 disables).
    keep:
        Retain at most this many newest checkpoints; older step
        directories are pruned after each successful save (0 keeps all).
    label:
        Free-form tag recorded in manifests (e.g. the config label).
    config_key:
        ``LouvainConfig.cache_key()`` of the run, recorded in every
        manifest so resume can detect cross-config mismatches.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        every_phases: int = 1,
        every_iterations: int | None = None,
        keep: int = 2,
        label: str = "",
        config_key: str = "",
    ):
        if every_phases < 0:
            raise ValueError(f"every_phases must be >= 0, got {every_phases}")
        if every_iterations is not None and every_iterations < 0:
            raise ValueError(
                f"every_iterations must be >= 0, got {every_iterations}"
            )
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        self.directory = os.fspath(directory)
        self.every_phases = every_phases
        self.every_iterations = every_iterations or 0
        self.keep = keep
        self.label = label
        self.config_key = config_key
        self._seq: int | None = None

    # -- cadence --------------------------------------------------------
    def should_checkpoint_phase(self, phase: int) -> bool:
        return self.every_phases > 0 and phase % self.every_phases == 0

    def should_checkpoint_iteration(self, iteration: int) -> bool:
        return (
            self.every_iterations > 0
            and (iteration + 1) % self.every_iterations == 0
        )

    # -- plumbing -------------------------------------------------------
    def _next_seq(self) -> int:
        """Next sequence number (continues past existing checkpoints).

        Only rank 0 calls this (inside :meth:`save`): a directory scan
        on every rank would race with rank 0 creating the new step
        directory, scattering one logical checkpoint across two seqs.
        """
        if self._seq is None:
            existing = [
                int(_STEP_RE.match(name).group(1))
                for name in (
                    os.listdir(self.directory)
                    if os.path.isdir(self.directory)
                    else []
                )
                if _STEP_RE.match(name)
            ]
            self._seq = max(existing) + 1 if existing else 0
        seq = self._seq
        self._seq = seq + 1
        return seq

    # -- save -----------------------------------------------------------
    def save(
        self,
        comm: Communicator,
        *,
        kind: str,
        phase: int,
        iteration: int,
        meta: dict[str, Any],
        arrays: dict[str, np.ndarray],
    ) -> Manifest:
        """Write one checkpoint (collective over ``comm``).

        Each rank serializes ``meta`` + ``arrays`` into its shard and
        writes it atomically; rank 0 gathers the digests, writes the
        manifest last, and prunes old checkpoints.  All time (modelled
        file I/O plus the digest gather and closing barrier) is charged
        to the ``checkpoint`` trace category.
        """
        seq = comm.bcast(
            self._next_seq() if comm.rank == 0 else None,
            root=0,
            category="checkpoint",
        )
        step_dir = os.path.join(self.directory, _step_dirname(seq))
        os.makedirs(step_dir, exist_ok=True)

        blob = _serialize_shard(meta, arrays)
        filename = _shard_filename(comm.rank)
        _atomic_write_bytes(os.path.join(step_dir, filename), blob)
        digest = hashlib.sha256(blob).hexdigest()
        comm.charge("checkpoint", comm.machine.io_cost(len(blob)))

        infos = comm.gather(
            (comm.rank, filename, len(blob), digest),
            root=0,
            category="checkpoint",
        )
        manifest: Manifest | None = None
        if comm.rank == 0:
            shards = tuple(
                ShardInfo(rank=r, filename=f, nbytes=n, sha256=d)
                for r, f, n, d in sorted(infos)
            )
            manifest = Manifest(
                seq=seq,
                kind=kind,
                phase=phase,
                iteration=iteration,
                size=comm.size,
                version=CHECKPOINT_FORMAT_VERSION,
                label=self.label,
                shards=shards,
                directory=os.path.abspath(step_dir),
                config_key=self.config_key,
            )
            _atomic_write_bytes(
                os.path.join(step_dir, MANIFEST_NAME),
                json.dumps(
                    {
                        "seq": manifest.seq,
                        "kind": manifest.kind,
                        "phase": manifest.phase,
                        "iteration": manifest.iteration,
                        "size": manifest.size,
                        "version": manifest.version,
                        "label": manifest.label,
                        "config_key": manifest.config_key,
                        "shards": [
                            {
                                "rank": s.rank,
                                "filename": s.filename,
                                "nbytes": s.nbytes,
                                "sha256": s.sha256,
                            }
                            for s in manifest.shards
                        ],
                    },
                    indent=1,
                ).encode("utf-8"),
            )
            self._prune()
        # No rank may race past the manifest write (a fault right after
        # the barrier must still find a fully valid checkpoint on disk).
        comm.barrier(category="checkpoint")
        return manifest if manifest is not None else read_manifest(step_dir)

    def _prune(self) -> None:
        if not self.keep:
            return
        steps = sorted(
            (
                name
                for name in os.listdir(self.directory)
                if _STEP_RE.match(name)
            ),
            key=lambda n: int(_STEP_RE.match(n).group(1)),
        )
        for name in steps[: max(len(steps) - self.keep, 0)]:
            shutil.rmtree(os.path.join(self.directory, name), ignore_errors=True)

    # -- load -----------------------------------------------------------
    def load_latest(
        self, comm: Communicator
    ) -> tuple[Manifest, dict[str, Any], dict[str, np.ndarray]]:
        """Restore this rank's state from the newest valid checkpoint.

        Collective: rank 0 scans for the latest manifest whose shards
        all verify, broadcasts its directory, and every rank loads (and
        re-verifies) its own shard.  Raises :class:`NoCheckpointError`
        when nothing valid exists.
        """
        step_dir: str | None = None
        if comm.rank == 0:
            manifest = latest_valid_manifest(
                self.directory, expect_size=comm.size, verify_shards=True
            )
            step_dir = manifest.directory if manifest is not None else None
        step_dir = comm.bcast(step_dir, root=0, category="checkpoint")
        if step_dir is None:
            raise NoCheckpointError(
                f"no valid checkpoint for {comm.size} rank(s) under "
                f"{self.directory!r}"
            )
        manifest = read_manifest(step_dir)
        meta, arrays = load_shard(manifest, comm.rank)
        comm.charge(
            "checkpoint",
            comm.machine.io_cost(
                next(s.nbytes for s in manifest.shards if s.rank == comm.rank)
            ),
        )
        return manifest, meta, arrays


def load_shard(
    manifest: Manifest, rank: int
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load and integrity-check one rank's shard of a checkpoint."""
    info = next((s for s in manifest.shards if s.rank == rank), None)
    if info is None:
        raise ManifestError(
            f"checkpoint {manifest.directory} has no shard for rank {rank}"
        )
    path = os.path.join(manifest.directory, info.filename)
    if not os.path.exists(path):
        raise CorruptShardError(f"shard {path} is missing")
    if _sha256_file(path) != info.sha256:
        raise CorruptShardError(
            f"shard {path} fails its manifest checksum (corrupt or "
            "partially written)"
        )
    return _deserialize_shard(path)


def restore_world(comms: Iterable[Communicator], root: str) -> Manifest:
    """Attach restored state to every communicator of a fresh world.

    Used by ``run_spmd(..., restore_from=dir)``: finds the latest valid
    manifest for the world size, loads every shard, resumes each rank's
    virtual clock from its saved value, and sets ``comm.restored`` to a
    :class:`RestoredRank` for the SPMD program to consume.
    """
    comms = list(comms)
    manifest = latest_valid_manifest(
        root, expect_size=len(comms), verify_shards=True
    )
    if manifest is None:
        raise NoCheckpointError(
            f"no valid checkpoint for {len(comms)} rank(s) under {root!r}"
        )
    for comm in comms:
        meta, arrays = load_shard(manifest, comm.rank)
        comm.clock = float(meta.get("clock", comm.clock))
        comm.restored = RestoredRank(manifest=manifest, meta=meta, arrays=arrays)
    return manifest
