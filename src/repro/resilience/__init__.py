"""Resilience subsystem: checkpoint/restore + deterministic fault injection.

Long multi-phase runs (hours on billion-edge inputs on the real machine)
must survive rank failures without losing completed phases.  This
subpackage provides the three layers:

* **checkpointing** (:mod:`.checkpoint`) — versioned, checksummed,
  per-rank-sharded snapshots of the distributed state at phase
  boundaries (and optionally every K iterations), written atomically so
  a crash never leaves a half-valid checkpoint;
* **fault injection** (:mod:`.faults`) — seeded, deterministic failure
  schedules (kill a rank at operation N, delay/drop messages, corrupt a
  shard on disk) so recovery can be exercised and *proven* in tests;
* **recovery** — ``run_spmd(..., restore_from=dir)`` and
  ``distributed_louvain(..., checkpoint_dir=dir, resume=True)`` restart
  the world from the latest valid manifest; a resumed run reproduces the
  uninterrupted run's final labels and modularity bit for bit.

Checkpoint overhead is charged to the ``checkpoint`` trace category, so
the bench harness reports it alongside the paper's §V-A breakdown.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointManager,
    CorruptShardError,
    Manifest,
    ManifestError,
    NoCheckpointError,
    RestoredRank,
    ShardInfo,
    latest_valid_manifest,
    load_shard,
    read_manifest,
    restore_world,
    scan_checkpoints,
    verify_manifest,
)
from .faults import FaultPlan, corrupt_checkpoint_shard
from .louvain_state import (
    IterationState,
    RestoredLouvainState,
    pack_rank_state,
    unpack_rank_state,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "CorruptShardError",
    "FaultPlan",
    "IterationState",
    "Manifest",
    "ManifestError",
    "NoCheckpointError",
    "RestoredLouvainState",
    "RestoredRank",
    "ShardInfo",
    "corrupt_checkpoint_shard",
    "latest_valid_manifest",
    "load_shard",
    "pack_rank_state",
    "read_manifest",
    "restore_world",
    "scan_checkpoints",
    "unpack_rank_state",
    "verify_manifest",
]
