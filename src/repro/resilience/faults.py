"""Deterministic fault injection for the simulated SPMD runtime.

A :class:`FaultPlan` describes, ahead of time, exactly which failures a
run will experience: kill rank ``r`` at its N-th communication
operation, delay or drop specific point-to-point messages, or (via
:func:`corrupt_checkpoint_shard`) damage a checkpoint file on disk.
Because the SPMD programs are deterministic given their seeds, the same
plan reproduces the same failure at the same point every run — which is
what makes recovery *testable*: kill a run mid-phase, resume it from its
last checkpoint, and assert the final labels are bit-identical to an
uninterrupted run.

The plan plugs into the runtime via ``run_spmd(..., fault_plan=plan)``;
the communicator consults it on every send/recv/collective (see
:meth:`FaultPlan.on_op`) and raises the existing
:class:`~repro.runtime.errors.InjectedFault` /
:class:`~repro.runtime.errors.RankAborted` /
:class:`~repro.runtime.errors.RankFailedError` hierarchy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..runtime.errors import InjectedFault


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures.

    Attributes
    ----------
    kills:
        ``{rank: op_index}`` — the rank raises
        :class:`~repro.runtime.errors.InjectedFault` at its first
        communication operation with index >= ``op_index``.
    delays:
        ``{(rank, op_index): seconds}`` — extra virtual latency charged
        to that operation (models congestion / a slow link).
    drops:
        ``{(rank, op_index)}`` — that point-to-point *send* is silently
        lost; the receiver eventually times out
        (:class:`~repro.runtime.errors.CommTimeoutError`), like a lost
        message on a real network.
    seed:
        Provenance of a :meth:`seeded` plan (None for explicit plans).
    """

    kills: dict[int, int] = field(default_factory=dict)
    delays: dict[tuple[int, int], float] = field(default_factory=dict)
    drops: set[tuple[int, int]] = field(default_factory=set)
    seed: int | None = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        size: int,
        *,
        min_step: int = 1,
        max_step: int = 200,
    ) -> "FaultPlan":
        """Derive a single-kill plan deterministically from a seed.

        The victim rank and kill step are drawn from
        ``np.random.default_rng(seed)``, so the same ``(seed, size)``
        always yields the same kill point.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0 < min_step <= max_step:
            raise ValueError(
                f"need 0 < min_step <= max_step, got [{min_step}, {max_step}]"
            )
        rng = np.random.default_rng(seed)
        victim = int(rng.integers(size))
        step = int(rng.integers(min_step, max_step + 1))
        return cls(kills={victim: step}, seed=seed)

    def kill_point(self) -> tuple[int, int] | None:
        """The (rank, op_index) of the earliest scheduled kill, if any."""
        if not self.kills:
            return None
        rank = min(self.kills, key=lambda r: (self.kills[r], r))
        return rank, self.kills[rank]

    def on_op(self, rank: int, op_index: int, op_name: str):
        """Runtime hook: called before every communication operation.

        Raises :class:`InjectedFault` for a scheduled kill; otherwise
        returns ``("delay", seconds)``, ``("drop",)``, or ``None``.
        """
        step = self.kills.get(rank)
        if step is not None and op_index >= step:
            raise InjectedFault(rank, op_index, op_name)
        if (rank, op_index) in self.drops and op_name == "send":
            return ("drop",)
        dt = self.delays.get((rank, op_index))
        if dt:
            return ("delay", float(dt))
        return None


def corrupt_checkpoint_shard(
    path: str | os.PathLike, seed: int = 0, nbytes: int = 16
) -> int:
    """Deterministically flip bytes inside a checkpoint shard file.

    Returns the offset of the damage.  Used to prove that restore
    detects corruption (the shard's manifest checksum no longer
    matches) and falls back to an older valid checkpoint.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path}")
    rng = np.random.default_rng(seed)
    nbytes = min(nbytes, size)
    offset = int(rng.integers(0, size - nbytes + 1))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        chunk = bytearray(fh.read(nbytes))
        for i in range(len(chunk)):
            chunk[i] ^= 0xFF
        fh.seek(offset)
        fh.write(bytes(chunk))
    return offset
