"""(De)serialization of distributed-Louvain state for checkpointing.

A phase boundary is a natural consistency point: the coarsened per-rank
CSR slice plus the original-vertex -> meta-vertex mapping fully
determine the remaining computation (the per-phase ET RNG is re-derived
from ``(seed, rank, phase)``, so phase-boundary checkpoints need no RNG
state at all).  A mid-phase (iteration) checkpoint additionally carries
the live iteration state: community labels, the owner-side ``C_info``
arrays, the ET activity probabilities and RNG state, and the iteration
statistics accumulated so far.

Everything numeric rides in the shard's arrays (bit-exact ``.npz``
round-trip); scalars and statistics ride in the JSON meta (Python's
``repr``-based float serialization round-trips exactly, so resumed runs
reproduce an uninterrupted run bit for bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.result import IterationStats, PhaseStats
from ..graph.distgraph import DistGraph


def _phases_to_json(phases: list[PhaseStats]) -> list[dict]:
    return [
        {
            "phase": p.phase,
            "tau": p.tau,
            "num_iterations": p.num_iterations,
            "modularity": p.modularity,
            "num_vertices": p.num_vertices,
            "num_edges": p.num_edges,
            "exited_by_inactive": p.exited_by_inactive,
            "ghost_fraction": p.ghost_fraction,
        }
        for p in phases
    ]


def _phases_from_json(raw: list[dict]) -> list[PhaseStats]:
    return [PhaseStats(**p) for p in raw]


def _iterations_to_json(iterations: list[IterationStats]) -> list[dict]:
    return [
        {
            "phase": s.phase,
            "iteration": s.iteration,
            "modularity": s.modularity,
            "moves": s.moves,
            "active_fraction": s.active_fraction,
            "inactive_fraction": s.inactive_fraction,
        }
        for s in iterations
    ]


def _iterations_from_json(raw: list[dict]) -> list[IterationStats]:
    return [IterationStats(**s) for s in raw]


@dataclass
class IterationState:
    """Live mid-phase state (present only in ``kind="iteration"``)."""

    iteration: int
    prev_q: float
    q: float
    stats: list[IterationStats]
    local_comm: np.ndarray
    tot_owned: np.ndarray
    size_owned: np.ndarray
    et_prob: np.ndarray | None
    et_inactive: np.ndarray | None
    et_rng_state: dict | None


@dataclass
class RestoredLouvainState:
    """Everything one rank needs to rejoin the phase loop."""

    kind: str
    phase: int
    dg: DistGraph
    orig_slice: np.ndarray
    prev_mod: float
    final_mod: float
    phases: list[PhaseStats]
    iterations: list[IterationStats]
    in_final_pass: bool
    clock: float
    seed_assignment: np.ndarray | None
    phase_assignments: list[np.ndarray] | None
    iteration_state: IterationState | None


def pack_rank_state(
    *,
    kind: str,
    phase: int,
    dg: DistGraph,
    orig_slice: np.ndarray,
    prev_mod: float,
    final_mod: float,
    phases: list[PhaseStats],
    iterations: list[IterationStats],
    in_final_pass: bool,
    clock: float,
    seed_assignment: np.ndarray | None = None,
    phase_assignments: list[np.ndarray] | None = None,
    iteration_state: IterationState | None = None,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Build the (meta, arrays) shard payload for one rank."""
    meta: dict[str, Any] = {
        "kind": kind,
        "phase": phase,
        "rank": dg.rank,
        "total_weight": dg.total_weight,
        "prev_mod": prev_mod,
        "final_mod": final_mod,
        "in_final_pass": in_final_pass,
        "clock": clock,
        "phases": _phases_to_json(phases),
        "iterations": _iterations_to_json(iterations),
    }
    arrays: dict[str, np.ndarray] = {
        "index": dg.index,
        "edges": dg.edges,
        "weights": dg.weights,
        "orig_slice": orig_slice,
    }
    if dg.is_general:
        # General (community-placed) layout: the owner map replaces the
        # contiguous offsets array.
        meta["rank_count"] = dg.nranks
        arrays["owned_ids"] = dg.owned_ids
        arrays["rank_of"] = dg.rank_of
    else:
        arrays["offsets"] = dg.offsets
    if seed_assignment is not None:
        arrays["seed_assignment"] = np.asarray(seed_assignment, dtype=np.int64)
    if phase_assignments is not None:
        meta["num_phase_assignments"] = len(phase_assignments)
        for i, a in enumerate(phase_assignments):
            arrays[f"passign_{i:04d}"] = a
    if iteration_state is not None:
        st = iteration_state
        meta["iteration"] = st.iteration
        meta["prev_q"] = st.prev_q
        meta["q"] = st.q
        meta["phase_stats"] = _iterations_to_json(st.stats)
        arrays["local_comm"] = st.local_comm
        arrays["tot_owned"] = st.tot_owned
        arrays["size_owned"] = st.size_owned
        if st.et_prob is not None:
            arrays["et_prob"] = st.et_prob
            arrays["et_inactive"] = st.et_inactive
            meta["et_rng_state"] = st.et_rng_state
    return meta, arrays


def unpack_rank_state(
    rank: int, meta: dict[str, Any], arrays: dict[str, np.ndarray]
) -> RestoredLouvainState:
    """Rebuild a rank's phase-loop state from a shard payload."""
    saved_rank = int(meta["rank"])
    if saved_rank != rank:
        raise ValueError(
            f"checkpoint shard belongs to rank {saved_rank}, loaded on "
            f"rank {rank}"
        )
    if "offsets" in arrays:
        dg = DistGraph(
            offsets=np.asarray(arrays["offsets"], dtype=np.int64),
            rank=rank,
            index=np.asarray(arrays["index"], dtype=np.int64),
            edges=np.asarray(arrays["edges"], dtype=np.int64),
            weights=np.asarray(arrays["weights"], dtype=np.float64),
            total_weight=float(meta["total_weight"]),
        )
    else:
        dg = DistGraph(
            offsets=None,
            rank=rank,
            index=np.asarray(arrays["index"], dtype=np.int64),
            edges=np.asarray(arrays["edges"], dtype=np.int64),
            weights=np.asarray(arrays["weights"], dtype=np.float64),
            total_weight=float(meta["total_weight"]),
            owned_ids=np.asarray(arrays["owned_ids"], dtype=np.int64),
            rank_of=np.asarray(arrays["rank_of"], dtype=np.int64),
            rank_count=int(meta["rank_count"]),
        )
    phase_assignments: list[np.ndarray] | None = None
    if "num_phase_assignments" in meta:
        phase_assignments = [
            np.asarray(arrays[f"passign_{i:04d}"], dtype=np.int64)
            for i in range(int(meta["num_phase_assignments"]))
        ]
    iteration_state: IterationState | None = None
    if meta["kind"] == "iteration":
        iteration_state = IterationState(
            iteration=int(meta["iteration"]),
            prev_q=float(meta["prev_q"]),
            q=float(meta["q"]),
            stats=_iterations_from_json(meta["phase_stats"]),
            local_comm=np.asarray(arrays["local_comm"], dtype=np.int64),
            tot_owned=np.asarray(arrays["tot_owned"], dtype=np.float64),
            size_owned=np.asarray(arrays["size_owned"], dtype=np.int64),
            et_prob=(
                np.asarray(arrays["et_prob"], dtype=np.float64)
                if "et_prob" in arrays
                else None
            ),
            et_inactive=(
                np.asarray(arrays["et_inactive"], dtype=bool)
                if "et_inactive" in arrays
                else None
            ),
            et_rng_state=meta.get("et_rng_state"),
        )
    return RestoredLouvainState(
        kind=str(meta["kind"]),
        phase=int(meta["phase"]),
        dg=dg,
        orig_slice=np.asarray(arrays["orig_slice"], dtype=np.int64),
        prev_mod=float(meta["prev_mod"]),
        final_mod=float(meta["final_mod"]),
        phases=_phases_from_json(meta["phases"]),
        iterations=_iterations_from_json(meta["iterations"]),
        in_final_pass=bool(meta["in_final_pass"]),
        clock=float(meta["clock"]),
        seed_assignment=(
            np.asarray(arrays["seed_assignment"], dtype=np.int64)
            if "seed_assignment" in arrays
            else None
        ),
        phase_assignments=phase_assignments,
        iteration_state=iteration_state,
    )
