"""Edge-list utilities: canonicalisation, symmetrisation, weighting.

The paper converts every input graph from its native format into a flat
binary edge list before running (§V, "Experimental setup").  This module
holds the in-memory edge-list type that sits between generators, the
binary file format (:mod:`repro.graph.binio`) and CSR construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class EdgeList:
    """A weighted undirected edge list; each edge appears exactly once.

    ``u <= v`` canonically for every stored edge (self loops allowed).
    """

    num_vertices: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.u) == len(self.v) == len(self.w)):
            raise ValueError("u, v, w must have equal length")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")

    @property
    def num_edges(self) -> int:
        return len(self.u)

    @property
    def total_weight(self) -> float:
        """``2m`` convention: loop-free edges twice, self loops once."""
        loops = self.u == self.v
        return float(2.0 * self.w[~loops].sum() + self.w[loops].sum())

    @staticmethod
    def from_arrays(
        num_vertices: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
        *,
        dedup: bool = True,
    ) -> "EdgeList":
        """Canonicalise raw arrays: orient ``u <= v``, optionally merge
        duplicates by summing weights, drop nothing else."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = (
            np.ones(len(u), dtype=np.float64)
            if w is None
            else np.asarray(w, dtype=np.float64)
        )
        if len(u) and (u.min() < 0 or v.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        if len(u) and max(int(u.max()), int(v.max())) >= num_vertices:
            raise ValueError("edge endpoint exceeds num_vertices")
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        if dedup and len(lo):
            key = lo * np.int64(num_vertices) + hi
            order = np.argsort(key, kind="stable")
            key, lo, hi, w = key[order], lo[order], hi[order], w[order]
            mask = np.empty(len(key), dtype=bool)
            mask[0] = True
            np.not_equal(key[1:], key[:-1], out=mask[1:])
            starts = np.flatnonzero(mask)
            w = np.add.reduceat(w, starts)
            lo, hi = lo[starts], hi[starts]
        return EdgeList(num_vertices=num_vertices, u=lo, v=hi, w=w)

    def to_csr(self) -> CSRGraph:
        return CSRGraph.from_edges(self.num_vertices, self.u, self.v, self.w)

    @staticmethod
    def from_csr(g: CSRGraph) -> "EdgeList":
        eu, ev, ew = g.edge_array()
        return EdgeList(num_vertices=g.num_vertices, u=eu, v=ev, w=ew)

    def permuted(self, rng: np.random.Generator) -> "EdgeList":
        """Shuffle edge order (models arbitrary on-disk ordering)."""
        order = rng.permutation(self.num_edges)
        return EdgeList(
            num_vertices=self.num_vertices,
            u=self.u[order],
            v=self.v[order],
            w=self.w[order],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeList(n={self.num_vertices}, m={self.num_edges})"
