"""Binary edge-list file format + simulated parallel (MPI-IO style) reads.

The paper converts each test graph "from their various native formats to
an edge list based binary format, and used the binary file as an input"
(§V), reading it with MPI I/O so ingest costs 1-2% of execution time.

Format (little-endian):

=========  =======  ====================================================
offset     type     meaning
=========  =======  ====================================================
0          8 bytes  magic ``b"DLOUVAIN"``
8          int64    format version (1)
16         int64    number of vertices ``n``
24         int64    number of undirected edges ``m``
32         record   ``m`` records of (int64 u, int64 v, float64 w)
=========  =======  ====================================================

:func:`read_edges_slice` reads a contiguous record range, which is how
each simulated rank ingests its share (every rank can compute its byte
offset from the header alone, exactly like the MPI-IO code path).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .edgelist import EdgeList

MAGIC = b"DLOUVAIN"
VERSION = 1
HEADER_BYTES = 32
RECORD_DTYPE = np.dtype([("u", "<i8"), ("v", "<i8"), ("w", "<f8")])
RECORD_BYTES = RECORD_DTYPE.itemsize


class BinFormatError(ValueError):
    """Raised for malformed binary graph files."""


@dataclass(frozen=True)
class BinHeader:
    num_vertices: int
    num_edges: int

    def record_range_for_rank(self, rank: int, nranks: int) -> tuple[int, int]:
        """Record interval [lo, hi) that ``rank`` of ``nranks`` reads."""
        if not 0 <= rank < nranks:
            raise ValueError(f"rank {rank} out of range for {nranks} ranks")
        base, extra = divmod(self.num_edges, nranks)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi


def write_edgelist(path: str | os.PathLike, el: EdgeList) -> int:
    """Write ``el`` to ``path``; returns bytes written."""
    path = Path(path)
    records = np.empty(el.num_edges, dtype=RECORD_DTYPE)
    records["u"] = el.u
    records["v"] = el.v
    records["w"] = el.w
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<qqq", VERSION, el.num_vertices, el.num_edges))
        records.tofile(fh)
    return HEADER_BYTES + el.num_edges * RECORD_BYTES


def read_header(path: str | os.PathLike) -> BinHeader:
    with open(path, "rb") as fh:
        head = fh.read(HEADER_BYTES)
    if len(head) != HEADER_BYTES or head[:8] != MAGIC:
        raise BinFormatError(f"{path}: not a DLOUVAIN binary edge list")
    version, n, m = struct.unpack("<qqq", head[8:32])
    if version != VERSION:
        raise BinFormatError(f"{path}: unsupported version {version}")
    if n < 0 or m < 0:
        raise BinFormatError(f"{path}: negative sizes in header")
    return BinHeader(num_vertices=int(n), num_edges=int(m))


def read_edges_slice(
    path: str | os.PathLike, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read records ``[lo, hi)``; returns ``(u, v, w)`` arrays."""
    header = read_header(path)
    if not 0 <= lo <= hi <= header.num_edges:
        raise ValueError(
            f"record slice [{lo}, {hi}) out of range for m={header.num_edges}"
        )
    count = hi - lo
    with open(path, "rb") as fh:
        fh.seek(HEADER_BYTES + lo * RECORD_BYTES)
        records = np.fromfile(fh, dtype=RECORD_DTYPE, count=count)
    if len(records) != count:
        raise BinFormatError(f"{path}: truncated file")
    return (
        records["u"].astype(np.int64),
        records["v"].astype(np.int64),
        records["w"].astype(np.float64),
    )


def read_edgelist(path: str | os.PathLike) -> EdgeList:
    """Read the whole file back as an :class:`EdgeList`."""
    header = read_header(path)
    u, v, w = read_edges_slice(path, 0, header.num_edges)
    return EdgeList(num_vertices=header.num_vertices, u=u, v=v, w=w)


def slice_nbytes(lo: int, hi: int) -> int:
    """Bytes a rank reads for records [lo, hi) (for I/O cost charging)."""
    return HEADER_BYTES + (hi - lo) * RECORD_BYTES
