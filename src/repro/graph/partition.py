"""1-D vertex partitioners for distributing the input graph.

The paper deliberately uses *no* smart partitioning (§II, §IV): vertices
and their edge lists are split so "each process receives roughly the same
number of edges".  Two strategies are provided:

* :func:`even_vertex` — contiguous ranges of equal vertex count (the
  simplest baseline, and what graph reconstruction re-establishes after
  each phase, §IV-A step 6);
* :func:`even_edge` — contiguous ranges balancing stored edge count,
  matching the paper's input distribution.

A partition is represented by an ``int64[p + 1]`` offsets array
``offsets``; rank ``i`` owns global vertices ``[offsets[i], offsets[i+1])``.
"""

from __future__ import annotations

import numpy as np


def even_vertex(num_vertices: int, nranks: int) -> np.ndarray:
    """Offsets giving each rank ``n / p`` vertices (±1)."""
    _validate(num_vertices, nranks)
    base, extra = divmod(num_vertices, nranks)
    counts = np.full(nranks, base, dtype=np.int64)
    counts[:extra] += 1
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def even_edge(row_lengths: np.ndarray, nranks: int) -> np.ndarray:
    """Offsets balancing the stored adjacency entries per rank.

    ``row_lengths[u]`` is the CSR row length of vertex ``u`` (what a rank
    actually stores).  Ranges stay contiguous; the split greedily targets
    ``nnz / p`` entries per rank, matching the paper's "roughly the same
    number of edges" loading.
    """
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    num_vertices = len(row_lengths)
    _validate(num_vertices, nranks)
    csum = np.concatenate([[0], np.cumsum(row_lengths)])
    total = csum[-1]
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    offsets[nranks] = num_vertices
    for r in range(1, nranks):
        target = total * r / nranks
        # First vertex boundary whose prefix reaches the target.
        cut = int(np.searchsorted(csum, target, side="left"))
        offsets[r] = min(max(cut, offsets[r - 1]), num_vertices)
    # Guarantee monotonicity even for degenerate inputs (many empty rows).
    np.maximum.accumulate(offsets, out=offsets)
    return offsets


def owner_of(offsets: np.ndarray, vertices: np.ndarray | int) -> np.ndarray | int:
    """Rank owning each global vertex id under ``offsets``."""
    result = np.searchsorted(offsets, vertices, side="right") - 1
    if np.any(np.asarray(result) < 0) or np.any(
        np.asarray(vertices) >= offsets[-1]
    ):
        raise ValueError("vertex id outside partition range")
    return result


def local_counts(offsets: np.ndarray) -> np.ndarray:
    """Vertices owned per rank."""
    return np.diff(offsets)


def _validate(num_vertices: int, nranks: int) -> None:
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
