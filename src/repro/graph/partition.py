"""1-D vertex partitioners for distributing the input graph.

The paper deliberately uses *no* smart partitioning (§II, §IV): vertices
and their edge lists are split so "each process receives roughly the same
number of edges".  Two strategies are provided:

* :func:`even_vertex` — contiguous ranges of equal vertex count (the
  simplest baseline, and what graph reconstruction re-establishes after
  each phase, §IV-A step 6);
* :func:`even_edge` — contiguous ranges balancing stored edge count,
  matching the paper's input distribution.

A contiguous partition is represented by an ``int64[p + 1]`` offsets
array ``offsets``; rank ``i`` owns global vertices
``[offsets[i], offsets[i+1])``.

Phase-boundary repartitioning (``LouvainConfig.repartition="community"``)
needs a *general* (non-contiguous) partition: an ``int64[n]`` map
``rank_of[v] -> rank``.  :func:`place_communities` produces one from the
coarse meta-graph with a deterministic greedy that co-locates heavily
connected communities while balancing stored edge count.
"""

from __future__ import annotations

import numpy as np

#: Allowed per-rank overshoot above perfect stored-entry balance before a
#: rank stops accepting communities in :func:`place_communities`.
PLACEMENT_SLACK = 0.1

#: Maximum boundary-refinement sweeps in :func:`place_communities`
#: (each sweep is one deterministic pass over all communities).
_REFINE_SWEEPS = 4


def even_vertex(num_vertices: int, nranks: int) -> np.ndarray:
    """Offsets giving each rank ``n / p`` vertices (±1)."""
    _validate(num_vertices, nranks)
    base, extra = divmod(num_vertices, nranks)
    counts = np.full(nranks, base, dtype=np.int64)
    counts[:extra] += 1
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def even_edge(row_lengths: np.ndarray, nranks: int) -> np.ndarray:
    """Offsets balancing the stored adjacency entries per rank.

    ``row_lengths[u]`` is the CSR row length of vertex ``u`` (what a rank
    actually stores).  Ranges stay contiguous; the split greedily targets
    ``nnz / p`` entries per rank, matching the paper's "roughly the same
    number of edges" loading.
    """
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    num_vertices = len(row_lengths)
    _validate(num_vertices, nranks)
    csum = np.concatenate([[0], np.cumsum(row_lengths)])
    total = csum[-1]
    if total == 0:
        # All rows empty: every cut would collapse to 0 and the last rank
        # would own the whole vertex set.  Spread vertices evenly instead.
        return even_vertex(num_vertices, nranks)
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    offsets[nranks] = num_vertices
    for r in range(1, nranks):
        target = total * r / nranks
        # First vertex boundary whose prefix reaches the target.
        cut = int(np.searchsorted(csum, target, side="left"))
        offsets[r] = min(max(cut, offsets[r - 1]), num_vertices)
    # Guarantee monotonicity even for degenerate inputs (many empty rows).
    np.maximum.accumulate(offsets, out=offsets)
    return offsets


def owner_of(offsets: np.ndarray, vertices: np.ndarray | int) -> np.ndarray | int:
    """Rank owning each global vertex id under ``offsets``."""
    result = np.searchsorted(offsets, vertices, side="right") - 1
    if np.any(np.asarray(result) < 0) or np.any(
        np.asarray(vertices) >= offsets[-1]
    ):
        raise ValueError("vertex id outside partition range")
    return result


def local_counts(offsets: np.ndarray) -> np.ndarray:
    """Vertices owned per rank."""
    return np.diff(offsets)


def place_communities(
    num_communities: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    nranks: int,
    *,
    slack: float = PLACEMENT_SLACK,
) -> np.ndarray:
    """Greedy graph-growing community-to-rank placement (GGGP style).

    ``(src, dst, weight)`` is the globally merged directed stored-entry
    list of the coarsened graph (duplicate pairs already combined), with
    ids in ``[0, num_communities)``.  Ranks are filled one at a time:
    rank ``r`` grows a connected region by repeatedly absorbing the
    unplaced community with the strongest affinity to the region —
    affinity is the number of stored entries into the region (exactly
    what the achieved ghost fraction counts), with summed meta-edge
    weight, then community size, then lowest id as deterministic
    tie-breaks — until the region reaches its balance target
    ``ceil(remaining_entries / remaining_ranks)``.  A fresh region (all
    affinities zero) seeds with the largest unplaced community.  The
    last rank takes everything left.

    Growth respects a load cap of ``ceil(total * (1 + slack) / nranks)``
    stored entries per rank while candidates fit; communities larger
    than the remaining cap headroom everywhere fall through to the final
    rank.  Every step is a pure function of the replicated edge list, so
    all ranks derive the identical ``rank_of`` map.

    Returns an ``int64[num_communities]`` owner map.
    """
    _validate(num_communities, nranks)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)
    if not (len(src) == len(dst) == len(weight)):
        raise ValueError("src/dst/weight must be aligned")
    if len(src) and (
        int(src.max()) >= num_communities or int(dst.max()) >= num_communities
    ):
        raise ValueError("community id outside [0, num_communities)")
    sizes = np.bincount(src, minlength=num_communities)
    total = int(sizes.sum())
    if nranks == 1:
        return np.zeros(num_communities, dtype=np.int64)
    if total == 0:
        # Edgeless coarse graph: nothing to co-locate, spread evenly.
        even = even_vertex(num_communities, nranks)
        return np.asarray(
            owner_of(even, np.arange(num_communities, dtype=np.int64)),
            dtype=np.int64,
        )
    cap = int(-(-total * (1.0 + slack) // nranks))  # ceil

    # CSR over src for neighbour scans (entries arrive sorted by (src,
    # dst) from the merge, but re-derive the index defensively).
    order = np.argsort(src, kind="stable")
    dst_s, w_s = dst[order], weight[order]
    index = np.zeros(num_communities + 1, dtype=np.int64)
    np.add.at(index, src[order] + 1, 1)
    np.cumsum(index, out=index)

    rank_of = np.full(num_communities, -1, dtype=np.int64)
    unplaced = np.ones(num_communities, dtype=bool)
    conn_cnt = np.zeros(num_communities, dtype=np.int64)
    conn_w = np.zeros(num_communities, dtype=np.float64)
    remaining = total
    for r in range(nranks - 1):
        target = -(-remaining // (nranks - r))  # ceil, rebalanced per rank
        conn_cnt[:] = 0
        conn_w[:] = 0.0
        load = 0
        while load < target:
            cand = np.flatnonzero(unplaced & (sizes <= cap - load))
            if not len(cand):
                break
            # Strongest entry-count affinity to the growing region; ties
            # by weight, then size (seeds pick the largest community),
            # then lowest id.
            for key in (conn_cnt, conn_w, sizes):
                sel = key[cand]
                cand = cand[sel == sel.max()]
            c = int(cand[0])
            rank_of[c] = r
            unplaced[c] = False
            load += int(sizes[c])
            lo, hi = int(index[c]), int(index[c + 1])
            nbrs = dst_s[lo:hi]
            np.add.at(conn_cnt, nbrs, 1)
            np.add.at(conn_w, nbrs, w_s[lo:hi])
        remaining -= load
    rank_of[unplaced] = nranks - 1

    # -- boundary refinement (KL/FM-lite) -----------------------------
    # A few deterministic sweeps: move a community to the rank holding
    # the most entries to it when that strictly shrinks the cut and the
    # cap allows.  Greedy growth fixes regions in rank order, so late
    # ranks' neighbourhoods can pull early misplacements back.
    loads = np.bincount(rank_of, weights=sizes, minlength=nranks).astype(
        np.int64
    )
    here = np.empty(nranks, dtype=np.int64)
    for _ in range(_REFINE_SWEEPS):
        moved_any = False
        for c in range(num_communities):
            lo, hi = int(index[c]), int(index[c + 1])
            nbrs = dst_s[lo:hi]
            m = nbrs != c
            if not np.any(m):
                continue
            here[:] = 0
            np.add.at(here, rank_of[nbrs[m]], 1)
            r = int(rank_of[c])
            fits = loads + sizes[c] <= cap
            fits[r] = True
            best = here.copy()
            best[~fits] = -1
            t = int(np.argmax(best))  # ties: lowest rank id
            if best[t] > here[r] and t != r:
                rank_of[c] = t
                loads[r] -= int(sizes[c])
                loads[t] += int(sizes[c])
                moved_any = True
        if not moved_any:
            break
    return rank_of


def _validate(num_vertices: int, nranks: int) -> None:
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
