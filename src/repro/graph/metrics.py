"""Descriptive graph statistics used by the dataset registry and tests."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (for registry documentation)."""

    num_vertices: int
    num_edges: int
    total_weight: float
    min_degree: int
    max_degree: int
    mean_degree: float
    degree_cv: float  # coefficient of variation — skew indicator
    num_isolated: int
    num_self_loops: int

    def format(self) -> str:
        return (
            f"n={self.num_vertices} m={self.num_edges} "
            f"deg[min={self.min_degree} mean={self.mean_degree:.2f} "
            f"max={self.max_degree} cv={self.degree_cv:.2f}] "
            f"isolated={self.num_isolated} loops={self.num_self_loops}"
        )


def graph_stats(g: CSRGraph) -> GraphStats:
    counts = g.edge_counts()
    rows = np.repeat(np.arange(g.num_vertices, dtype=np.int64), counts)
    loops = int(np.count_nonzero(g.edges == rows))
    mean = float(counts.mean()) if len(counts) else 0.0
    std = float(counts.std()) if len(counts) else 0.0
    return GraphStats(
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        total_weight=g.total_weight,
        min_degree=int(counts.min()) if len(counts) else 0,
        max_degree=int(counts.max()) if len(counts) else 0,
        mean_degree=mean,
        degree_cv=(std / mean) if mean > 0 else 0.0,
        num_isolated=int(np.count_nonzero(counts == 0)),
        num_self_loops=loops,
    )


def connected_components(g: CSRGraph) -> np.ndarray:
    """Component label per vertex (BFS; labels are the min vertex id)."""
    n = g.num_vertices
    label = np.full(n, -1, dtype=np.int64)
    for seed in range(n):
        if label[seed] != -1:
            continue
        label[seed] = seed
        frontier = [seed]
        while frontier:
            nxt = []
            for u in frontier:
                nbrs, _ = g.neighbors(u)
                for v in nbrs:
                    if label[v] == -1:
                        label[v] = seed
                        nxt.append(int(v))
            frontier = nxt
    return label


def is_connected(g: CSRGraph) -> bool:
    if g.num_vertices == 0:
        return True
    return bool(np.all(connected_components(g) == 0))
