"""Distributed graph: 1-D partitioned CSR with ghost-vertex plumbing.

Implements the paper's input distribution (§IV): each rank owns a
contiguous range of global vertices and the CSR rows for them; edge
targets remain *global* ids.  Any target owned by another rank is a
"ghost" vertex, and :class:`GhostPlan` (Algorithm 4) records, once per
phase, which ghost values must be fetched from which owner.

The heavy per-iteration primitive — refreshing ghost community
assignments — is :meth:`DistGraph.exchange_ghost_values`, which moves a
value per ghost vertex through one ``alltoall`` (or an MPI-3-style
neighbourhood exchange when enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime.comm import Communicator
from . import binio
from .csr import CSRGraph
from .edgelist import EdgeList
from .partition import even_edge, even_vertex


def split_by_rank(
    ranks: np.ndarray, nranks: int, *arrays: np.ndarray
) -> list[tuple[np.ndarray, ...]]:
    """Bucket parallel arrays by destination rank in one argsort.

    ``ranks`` assigns a destination rank to every element; the aligned
    ``arrays`` are returned as one tuple of slices per rank (empty
    slices for ranks with no elements).  Element order *within* a rank
    follows the input order (stable sort), which callers rely on for
    deterministic payloads.  This replaces the per-rank boolean-mask
    loops (``for r in range(p): a[ranks == r]``) that scanned the full
    array ``p`` times per call on the hot communication paths.
    """
    order = np.argsort(ranks, kind="stable")
    bounds = np.searchsorted(
        ranks, np.arange(nranks + 1, dtype=np.int64), sorter=order
    )
    return [
        tuple(a[order[bounds[r]:bounds[r + 1]]] for a in arrays)
        for r in range(nranks)
    ]


@dataclass
class GhostPlan:
    """Per-phase ghost exchange plan (paper Algorithm 4).

    Attributes
    ----------
    ghost_ids:
        Sorted global ids of this rank's ghost vertices.
    recv_ids:
        ``{owner_rank: global ids we receive from that rank}``; the
        concatenation in rank order equals ``ghost_ids`` order.
    send_ids:
        ``{dest_rank: our owned global ids that dest keeps as ghosts}``.
    """

    ghost_ids: np.ndarray
    recv_ids: dict[int, np.ndarray]
    send_ids: dict[int, np.ndarray]

    @property
    def num_ghosts(self) -> int:
        return len(self.ghost_ids)

    def neighbor_ranks(self) -> list[int]:
        """Ranks this rank exchanges ghost data with."""
        return sorted(set(self.recv_ids) | set(self.send_ids))


@dataclass
class DistGraph:
    """The local portion ``G_i`` of a distributed graph at one rank.

    Attributes
    ----------
    offsets:
        Global vertex partition, ``int64[p + 1]``, when the partition is
        contiguous (the paper's layout); ``None`` for a general
        partition, in which case ``owned_ids``/``rank_of`` describe it.
    rank:
        Owning rank id.
    index / edges / weights:
        Local CSR rows for owned vertices; ``edges`` holds *global* ids.
    total_weight:
        Global ``sum_u k_u`` (replicated on every rank — the paper keeps
        this as part of the modularity denominator).
    owned_ids:
        General partition only: sorted global ids of the vertices this
        rank owns; CSR row ``i`` is vertex ``owned_ids[i]``.
    rank_of:
        General partition only: ``int64[num_global_vertices]`` owner map
        (replicated on every rank, like ``offsets`` is).
    rank_count:
        General partition only: total rank count (``offsets`` carries it
        implicitly in the contiguous case).
    """

    offsets: np.ndarray | None
    rank: int
    index: np.ndarray
    edges: np.ndarray
    weights: np.ndarray
    total_weight: float
    _compressed: np.ndarray | None = field(default=None, repr=False)
    _plan: GhostPlan | None = field(default=None, repr=False)
    _owner_bounds: np.ndarray | None = field(default=None, repr=False)
    owned_ids: np.ndarray | None = field(default=None, repr=False)
    rank_of: np.ndarray | None = field(default=None, repr=False)
    rank_count: int | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def is_general(self) -> bool:
        """True when the partition is non-contiguous (owned_ids-based)."""
        return self.owned_ids is not None

    @property
    def nranks(self) -> int:
        if self.offsets is not None:
            return len(self.offsets) - 1
        assert self.rank_count is not None
        return self.rank_count

    @property
    def num_global_vertices(self) -> int:
        if self.offsets is not None:
            return int(self.offsets[-1])
        assert self.rank_of is not None
        return len(self.rank_of)

    @property
    def vbegin(self) -> int:
        if self.offsets is None:
            raise ValueError("vbegin is undefined for a general partition")
        return int(self.offsets[self.rank])

    @property
    def vend(self) -> int:
        if self.offsets is None:
            raise ValueError("vend is undefined for a general partition")
        return int(self.offsets[self.rank + 1])

    @property
    def num_local(self) -> int:
        if self.owned_ids is not None:
            return len(self.owned_ids)
        return self.vend - self.vbegin

    @property
    def num_local_entries(self) -> int:
        """Stored adjacency entries on this rank (its share of work)."""
        return len(self.edges)

    def owner(self, vertices: np.ndarray | int):
        """Rank owning each global vertex id."""
        return self.owner_of(vertices)

    def owner_of(self, ids: np.ndarray | int):
        """Vectorised owner lookup.

        Contiguous partitions search the cached interior boundaries
        ``offsets[1:-1]`` (computed once and reused); general partitions
        index the replicated ``rank_of`` map directly.
        """
        if self.rank_of is not None:
            return self.rank_of[ids]
        assert self.offsets is not None
        if self._owner_bounds is None:
            self._owner_bounds = np.ascontiguousarray(self.offsets[1:-1])
        return np.searchsorted(self._owner_bounds, ids, side="right")

    def to_local(self, ids: np.ndarray | int):
        """Local slot of each *owned* global vertex id."""
        if self.owned_ids is not None:
            return np.searchsorted(self.owned_ids, ids)
        return ids - self.vbegin

    def from_local(self, slots: np.ndarray | int):
        """Global id of each local slot (inverse of :meth:`to_local`)."""
        if self.owned_ids is not None:
            return self.owned_ids[slots]
        return slots + self.vbegin

    def is_owned(self, ids: np.ndarray | int):
        """Whether each global id is owned by this rank."""
        if self.rank_of is not None:
            return self.rank_of[ids] == self.rank
        return (ids >= self.vbegin) & (ids < self.vend)

    def local_vertex_ids(self) -> np.ndarray:
        """Global ids of owned vertices, in local-slot order (sorted).

        General partitions return the internal ``owned_ids`` array —
        treat the result as read-only.
        """
        if self.owned_ids is not None:
            return self.owned_ids
        return np.arange(self.vbegin, self.vend, dtype=np.int64)

    def local_degrees(self) -> np.ndarray:
        """Weighted degree of each owned vertex."""
        out = np.zeros(self.num_local, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.num_local, dtype=np.int64), np.diff(self.index)
        )
        np.add.at(out, rows, self.weights)
        return out

    def local_self_loops(self) -> np.ndarray:
        """Self-loop weight of each owned vertex."""
        out = np.zeros(self.num_local, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.num_local, dtype=np.int64), np.diff(self.index)
        )
        mask = self.edges == self.from_local(rows)
        np.add.at(out, rows[mask], self.weights[mask])
        return out

    def row(self, local_u: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour (global ids, weights) of owned vertex ``local_u``."""
        lo, hi = self.index[local_u], self.index[local_u + 1]
        return self.edges[lo:hi], self.weights[lo:hi]

    # ------------------------------------------------------------------
    # Ghost machinery
    # ------------------------------------------------------------------
    def build_ghost_plan(self, comm: Communicator) -> GhostPlan:
        """One-time-per-phase ghost coordinate exchange (Algorithm 4).

        Each rank scans its edge targets for non-owned vertices, groups
        them by owner, and tells every owner which of its vertices are
        ghosted here; the owner's reply direction is implied (symmetric
        alltoall), establishing both halves of the plan.
        """
        if self._plan is not None:
            # The plan is memoised in the same phase on every rank
            # (built right after distribution, invalidated together at
            # coarsening): all ranks hit the cache, or none do.
            return self._plan  # spmdlint: ignore[SPMD002]
        mine = self.is_owned(self.edges)
        ghosts = np.unique(self.edges[~mine])
        owners = self.owner_of(ghosts)
        # Scan cost: one pass over the local edge list (Algorithm 4 l.2-7).
        comm.charge_compute(self.num_local_entries, category="ghost_comm")

        recv_ids: dict[int, np.ndarray] = {}
        requests: list[np.ndarray] = []
        for r, (ids,) in enumerate(split_by_rank(owners, comm.size, ghosts)):
            if r != comm.rank and len(ids):
                recv_ids[r] = ids
            requests.append(ids if r != comm.rank else np.empty(0, np.int64))
        got = comm.alltoall(requests, category="ghost_comm")
        send_ids = {
            r: ids for r, ids in enumerate(got) if r != comm.rank and len(ids)
        }
        self._plan = GhostPlan(
            ghost_ids=ghosts, recv_ids=recv_ids, send_ids=send_ids
        )
        return self._plan

    def compressed_targets(self, plan: GhostPlan) -> np.ndarray:
        """Edge targets re-indexed for O(1) community lookup.

        Owned target ``v`` becomes ``v - vbegin``; ghost target becomes
        ``num_local + slot`` where ``slot`` indexes ``plan.ghost_ids``.
        With local community assignments ``C_loc[num_local]`` and ghost
        values ``C_gho[num_ghosts]``, the community of every edge target
        is ``concat(C_loc, C_gho)[compressed_targets]`` — the vectorised
        equivalent of the per-edge hash-map lookup in the paper's Fig. 1.
        """
        if self._compressed is None:
            mask = ~self.is_owned(self.edges)
            out = np.empty(len(self.edges), dtype=np.int64)
            out[~mask] = self.to_local(self.edges[~mask])
            slots = np.searchsorted(plan.ghost_ids, self.edges[mask])
            out[mask] = self.num_local + slots
            self._compressed = out
        return self._compressed

    def exchange_ghost_values(
        self,
        comm: Communicator,
        plan: GhostPlan,
        local_values: np.ndarray,
        category: str = "ghost_comm",
        use_neighbor_collectives: bool = False,
    ) -> np.ndarray:
        """Fetch one value per ghost vertex from its owner.

        ``local_values`` is indexed by local vertex (0..num_local); the
        return array aligns with ``plan.ghost_ids``.  This is the
        Algorithm 3 lines 4-5 exchange, executed every iteration.
        """
        if len(local_values) != self.num_local:
            raise ValueError(
                f"local_values has {len(local_values)} entries for "
                f"{self.num_local} owned vertices"
            )
        if use_neighbor_collectives:
            payload = {
                r: local_values[self.to_local(ids)]
                for r, ids in sorted(plan.send_ids.items())
            }
            got = comm.neighbor_alltoall(payload, category=category)
        else:
            payload_list = [
                local_values[self.to_local(plan.send_ids[r])]
                if r in plan.send_ids
                else np.empty(0, local_values.dtype)
                for r in range(comm.size)
            ]
            received = comm.alltoall(payload_list, category=category)
            got = {
                r: received[r]
                for r in plan.recv_ids
            }
        out = np.empty(plan.num_ghosts, dtype=local_values.dtype)
        for r, ids in sorted(plan.recv_ids.items()):
            values = got.get(r)
            if values is None or len(values) != len(ids):
                raise ValueError(
                    f"ghost exchange mismatch with rank {r}: expected "
                    f"{len(ids)} values, got "
                    f"{None if values is None else len(values)}"
                )
            out[np.searchsorted(plan.ghost_ids, ids)] = values
        return out

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_global(
        g: CSRGraph, offsets: np.ndarray, rank: int
    ) -> "DistGraph":
        """Slice rank ``rank``'s rows out of a replicated global CSR.

        Models loading from a pre-partitioned file: every rank can do
        this independently without communication.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets[-1] != g.num_vertices:
            raise ValueError("partition does not cover the vertex set")
        lo, hi = int(offsets[rank]), int(offsets[rank + 1])
        elo, ehi = int(g.index[lo]), int(g.index[hi])
        return DistGraph(
            offsets=offsets,
            rank=rank,
            index=(g.index[lo : hi + 1] - g.index[lo]).astype(np.int64),
            edges=g.edges[elo:ehi].copy(),
            weights=g.weights[elo:ehi].copy(),
            total_weight=g.total_weight,
        )

    @staticmethod
    def distribute(
        comm: Communicator,
        g: CSRGraph,
        partition: str = "even_edge",
    ) -> "DistGraph":
        """SPMD entry point: every rank slices its part of ``g``.

        ``g`` plays the role of the input file (read-only, identical on
        all ranks); "even_edge" reproduces the paper's loading where
        each process receives roughly the same number of edges.
        """
        if partition == "even_edge":
            offsets = even_edge(np.diff(g.index), comm.size)
        elif partition == "even_vertex":
            offsets = even_vertex(g.num_vertices, comm.size)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")
        return DistGraph.from_global(g, offsets, comm.rank)

    @staticmethod
    def load_binary(
        comm: Communicator,
        path: str,
        partition: str = "even_edge",
    ) -> "DistGraph":
        """Distributed ingest of a binary edge-list file (paper §V).

        Each rank reads an equal slice of *records* (the MPI-IO
        pattern), the ranks agree on a vertex partition, and every edge
        is routed to the owner(s) of its endpoints with one alltoall.
        """
        header = binio.read_header(path)
        lo, hi = header.record_range_for_rank(comm.rank, comm.size)
        u, v, w = binio.read_edges_slice(path, lo, hi)
        comm.charge_io(binio.slice_nbytes(lo, hi))

        n = header.num_vertices
        if partition == "even_vertex":
            offsets = even_vertex(n, comm.size)
        elif partition == "even_edge":
            # Degrees are global info: accumulate local endpoint counts,
            # then allreduce so all ranks compute identical offsets.
            counts = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
            counts = comm.allreduce(counts, category="io")
            offsets = even_edge(counts, comm.size)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")

        # Route each record to the owner of each endpoint (twice when the
        # endpoints live on different ranks), as the loader must.
        owner_u = np.searchsorted(offsets, u, side="right") - 1
        owner_v = np.searchsorted(offsets, v, side="right") - 1
        outgoing: list[tuple[np.ndarray, ...]] = []
        for r in range(comm.size):
            keep = (owner_u == r) | (owner_v == r)
            outgoing.append((u[keep], v[keep], w[keep]))
        received = comm.alltoall(outgoing, category="io")

        ru = np.concatenate([t[0] for t in received])
        rv = np.concatenate([t[1] for t in received])
        rw = np.concatenate([t[2] for t in received])
        vb, ve = int(offsets[comm.rank]), int(offsets[comm.rank + 1])
        local = _rows_from_undirected(ru, rv, rw, vb, ve)
        # Total weight requires one global reduction.
        w_local = float(local[2].sum())
        total = comm.allreduce(w_local, category="io")
        return DistGraph(
            offsets=offsets,
            rank=comm.rank,
            index=local[0],
            edges=local[1],
            weights=local[2],
            total_weight=total,
        )

    def to_edgelist_local(self) -> EdgeList:
        """Owned edges as an EdgeList (edges with both endpoints owned
        appear once; cut edges appear with the owned endpoint first)."""
        rows = np.repeat(self.local_vertex_ids(), np.diff(self.index))
        keep = (
            (rows < self.edges)
            | ~self.is_owned(self.edges)
            | (rows == self.edges)
        )
        return EdgeList(
            num_vertices=self.num_global_vertices,
            u=rows[keep],
            v=self.edges[keep],
            w=self.weights[keep],
        )


def _rows_from_undirected(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, vbegin: int, vend: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build local CSR rows for vertices [vbegin, vend) from undirected
    edge records; targets keep global ids.  Duplicate records merge."""
    nlocal = vend - vbegin
    # Direction u -> v for owned u, and v -> u for owned v (loops once).
    mu = (u >= vbegin) & (u < vend)
    non_loop = u != v
    mv = (v >= vbegin) & (v < vend) & non_loop
    src = np.concatenate([u[mu], v[mv]]) - vbegin
    dst = np.concatenate([v[mu], u[mv]])
    ww = np.concatenate([w[mu], w[mv]])
    if len(src):
        span = np.int64(max(int(dst.max()) + 1, 1))
        key = src * span + dst
        order = np.argsort(key, kind="stable")
        key, src, dst, ww = key[order], src[order], dst[order], ww[order]
        uniq = np.empty(len(key), dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        starts = np.flatnonzero(uniq)
        ww = np.add.reduceat(ww, starts)
        src, dst = src[starts], dst[starts]
    index = np.zeros(nlocal + 1, dtype=np.int64)
    np.add.at(index, src + 1, 1)
    np.cumsum(index, out=index)
    return index, dst, ww
