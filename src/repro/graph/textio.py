"""Text graph formats: SNAP/TSV edge lists and METIS files.

The paper collects graphs "in their native formats from four sources"
(UFL, Network Repository, SNAP, LAW) and converts them to the binary
edge-list format (§V).  These readers cover the two text formats those
sources actually serve, so the conversion pipeline is reproducible:

* **SNAP / TSV edge list** — one ``u v [w]`` pair per line, ``#`` or
  ``%`` comments, arbitrary (possibly sparse) vertex ids;
* **METIS** — header ``n m [fmt]``, then one line per vertex listing
  its (1-based) neighbours, optionally with weights (fmt 1/001 = edge
  weights).

Both produce an :class:`~repro.graph.edgelist.EdgeList`;
:func:`convert_to_binary` completes the paper's ingest pipeline.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .binio import write_edgelist
from .edgelist import EdgeList


class TextFormatError(ValueError):
    """Raised for malformed text graph files."""


def read_snap_edgelist(
    path: str | os.PathLike,
    *,
    relabel: bool = True,
) -> EdgeList:
    """Read a SNAP-style whitespace edge list.

    ``relabel=True`` (default) densifies arbitrary vertex ids to
    ``0..n-1`` in sorted order — SNAP dumps routinely skip ids.  With
    ``relabel=False`` ids are used verbatim and ``num_vertices`` is
    ``max_id + 1``.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise TextFormatError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                us.append(int(parts[0]))
                vs.append(int(parts[1]))
                ws.append(float(parts[2]) if len(parts) > 2 else 1.0)
            except ValueError as exc:
                raise TextFormatError(
                    f"{path}:{lineno}: {exc}"
                ) from None
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = np.asarray(ws, dtype=np.float64)
    if len(u) == 0:
        return EdgeList.from_arrays(0, u, v, w)
    if u.min() < 0 or v.min() < 0:
        raise TextFormatError(f"{path}: negative vertex id")
    if relabel:
        ids = np.unique(np.concatenate([u, v]))
        u = np.searchsorted(ids, u)
        v = np.searchsorted(ids, v)
        n = len(ids)
    else:
        n = int(max(u.max(), v.max())) + 1
    return EdgeList.from_arrays(n, u, v, w)


def read_metis(path: str | os.PathLike) -> EdgeList:
    """Read a METIS graph file (1-based adjacency lists)."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [
            ln.strip()
            for ln in fh
            if ln.strip() and not ln.lstrip().startswith("%")
        ]
    if not lines:
        raise TextFormatError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise TextFormatError(f"{path}: METIS header needs 'n m [fmt]'")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    has_edge_weights = fmt.endswith("1")
    has_vertex_weights = len(fmt) >= 2 and fmt[-2] == "1"
    if len(lines) - 1 != n:
        raise TextFormatError(
            f"{path}: header says {n} vertices, file has {len(lines) - 1} "
            "adjacency lines"
        )

    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    for u, line in enumerate(lines[1:]):
        tokens = line.split()
        start = 1 if has_vertex_weights else 0
        step = 2 if has_edge_weights else 1
        for i in range(start, len(tokens), step):
            v = int(tokens[i]) - 1  # METIS is 1-based
            if not 0 <= v < n:
                raise TextFormatError(
                    f"{path}: vertex {u + 1} lists neighbour "
                    f"{tokens[i]} outside 1..{n}"
                )
            w = float(tokens[i + 1]) if has_edge_weights else 1.0
            if u <= v:  # each undirected edge appears in both lists
                us.append(u)
                vs.append(v)
                ws.append(w)
    el = EdgeList.from_arrays(
        n,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )
    if el.num_edges != m:
        raise TextFormatError(
            f"{path}: header says {m} edges, adjacency lists give "
            f"{el.num_edges}"
        )
    return el


def write_snap_edgelist(path: str | os.PathLike, el: EdgeList) -> None:
    """Write an EdgeList as a SNAP-style text file (with weights)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# vertices {el.num_vertices} edges {el.num_edges}\n")
        for u, v, w in zip(el.u, el.v, el.w):
            fh.write(f"{u}\t{v}\t{w:g}\n")


def write_metis(path: str | os.PathLike, el: EdgeList) -> None:
    """Write an EdgeList as a METIS file with edge weights (fmt 001)."""
    n = el.num_vertices
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u, v, w in zip(el.u, el.v, el.w):
        adj[u].append((int(v), float(w)))
        if u != v:
            adj[v].append((int(u), float(w)))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{n} {el.num_edges} 001\n")
        for row in adj:
            fh.write(
                " ".join(f"{v + 1} {w:g}" for v, w in sorted(row)) + "\n"
            )


def convert_to_binary(
    src: str | os.PathLike, dst: str | os.PathLike
) -> EdgeList:
    """The paper's conversion step: native text format -> binary.

    The source format is chosen by suffix: ``.graph``/``.metis`` parse
    as METIS, anything else as a SNAP edge list.  Returns the parsed
    edge list (already written to ``dst``).
    """
    suffix = Path(src).suffix.lower()
    if suffix in (".graph", ".metis"):
        el = read_metis(src)
    else:
        el = read_snap_edgelist(src)
    write_edgelist(dst, el)
    return el
