"""Compressed sparse row (CSR) representation of weighted undirected graphs.

This is the storage format the paper uses on every rank (§IV, "Input
Distribution").  Conventions, chosen to match the Louvain reference
implementation and kept consistent across the whole library:

* the graph is undirected; every edge ``{u, v}`` with ``u != v`` is
  stored twice (in ``u``'s row and in ``v``'s row) with the same weight;
* a self loop ``{u, u}`` is stored **once** in ``u``'s row;
* the *weighted degree* ``k_u`` is the sum of ``u``'s row weights (the
  self loop counted once);
* ``total_weight`` is ``sum_u k_u`` — equal to ``2m`` for loop-free
  graphs.  This quantity is invariant under Louvain graph coarsening,
  which is what makes modularity comparable across phases.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """Immutable weighted undirected graph in CSR form.

    Attributes
    ----------
    index:
        ``int64[n + 1]``; row ``u`` occupies ``edges[index[u]:index[u+1]]``.
    edges:
        ``int64[nnz]`` neighbour vertex ids.
    weights:
        ``float64[nnz]`` edge weights, aligned with ``edges``.
    """

    index: np.ndarray
    edges: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.index.ndim != 1 or self.index.dtype != np.int64:
            raise TypeError("index must be a 1-D int64 array")
        if self.edges.ndim != 1 or self.edges.dtype != np.int64:
            raise TypeError("edges must be a 1-D int64 array")
        if self.weights.shape != self.edges.shape:
            raise ValueError("weights must align with edges")
        if self.index[0] != 0 or self.index[-1] != len(self.edges):
            raise ValueError("index must start at 0 and end at nnz")
        if np.any(np.diff(self.index) < 0):
            raise ValueError("index must be non-decreasing")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.index) - 1

    @property
    def nnz(self) -> int:
        """Stored adjacency entries (2 per edge + 1 per self loop)."""
        return len(self.edges)

    @property
    def num_edges(self) -> int:
        """Undirected edge count (self loops counted once)."""
        loops = int(np.count_nonzero(self.edges == self._row_ids()))
        return (self.nnz - loops) // 2 + loops

    def _row_ids(self) -> np.ndarray:
        """Source vertex id for every stored adjacency entry."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.index)
        )

    @property
    def total_weight(self) -> float:
        """``sum_u k_u`` (a.k.a. ``2m`` for loop-free graphs)."""
        return float(self.weights.sum())

    def degrees(self) -> np.ndarray:
        """Weighted degree ``k_u`` for every vertex (float64[n])."""
        out = np.zeros(self.num_vertices, dtype=np.float64)
        np.add.at(out, self._row_ids(), self.weights)
        return out

    def edge_counts(self) -> np.ndarray:
        """Unweighted degree (row length) for every vertex (int64[n])."""
        return np.diff(self.index)

    def fingerprint(self) -> str:
        """SHA-256 content hash of the graph (structure + weights).

        Two CSR graphs fingerprint equal iff their ``index``/``edges``/
        ``weights`` arrays are byte-identical — the graph half of the
        detection-service result-cache key (:mod:`repro.service.store`).
        """
        h = hashlib.sha256()
        h.update(np.int64(self.num_vertices).tobytes())
        h.update(self.index.tobytes())
        h.update(self.edges.tobytes())
        h.update(self.weights.tobytes())
        return h.hexdigest()

    def self_loop_weights(self) -> np.ndarray:
        """Self-loop weight per vertex (float64[n], zero when absent)."""
        out = np.zeros(self.num_vertices, dtype=np.float64)
        rows = self._row_ids()
        mask = self.edges == rows
        np.add.at(out, rows[mask], self.weights[mask])
        return out

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the neighbour ids and weights of vertex ``u``."""
        lo, hi = self.index[u], self.index[u + 1]
        return self.edges[lo:hi], self.weights[lo:hi]

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with u <= v."""
        rows = self._row_ids()
        mask = rows <= self.edges
        for u, v, w in zip(rows[mask], self.edges[mask], self.weights[mask]):
            yield int(u), int(v), float(w)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each undirected edge once as ``(u[], v[], w[])`` with u <= v."""
        rows = self._row_ids()
        mask = rows <= self.edges
        return rows[mask], self.edges[mask], self.weights[mask]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        num_vertices: int,
        u: np.ndarray | Iterable[int],
        v: np.ndarray | Iterable[int],
        w: np.ndarray | Iterable[float] | None = None,
        *,
        combine_duplicates: bool = True,
    ) -> "CSRGraph":
        """Build from an undirected edge list (each edge listed once).

        Duplicate ``{u, v}`` pairs have their weights summed (the
        behaviour graph coarsening relies on).  Self loops are kept as
        single row entries.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if w is None:
            w = np.ones(len(u), dtype=np.float64)
        else:
            w = np.asarray(w, dtype=np.float64)
        if not (len(u) == len(v) == len(w)):
            raise ValueError("u, v, w must have equal length")
        if len(u) and (u.min() < 0 or v.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        if len(u) and max(int(u.max()), int(v.max())) >= num_vertices:
            raise ValueError(
                f"edge endpoint exceeds num_vertices={num_vertices}"
            )

        # Symmetrize: both directions for u != v, one entry for loops.
        non_loop = u != v
        src = np.concatenate([u, v[non_loop]])
        dst = np.concatenate([v, u[non_loop]])
        ww = np.concatenate([w, w[non_loop]])

        if combine_duplicates and len(src):
            key = src * np.int64(num_vertices) + dst
            order = np.argsort(key, kind="stable")
            key, src, dst, ww = key[order], src[order], dst[order], ww[order]
            uniq_mask = np.empty(len(key), dtype=bool)
            uniq_mask[0] = True
            np.not_equal(key[1:], key[:-1], out=uniq_mask[1:])
            starts = np.flatnonzero(uniq_mask)
            ww = np.add.reduceat(ww, starts)
            src, dst = src[starts], dst[starts]
        else:
            order = np.lexsort((dst, src))
            src, dst, ww = src[order], dst[order], ww[order]

        index = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(index, src + 1, 1)
        np.cumsum(index, out=index)
        return CSRGraph(index=index, edges=dst, weights=ww)

    @staticmethod
    def empty(num_vertices: int) -> "CSRGraph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return CSRGraph(
            index=np.zeros(num_vertices + 1, dtype=np.int64),
            edges=np.empty(0, dtype=np.int64),
            weights=np.empty(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage.

        Verifies symmetry (``w(u, v) == w(v, u)``) in addition to the
        cheap checks done at construction.
        """
        if len(self.edges) and (
            self.edges.min() < 0 or self.edges.max() >= self.num_vertices
        ):
            raise ValueError("edge target out of range")
        rows = self._row_ids()
        fwd = {}
        for a, b, w in zip(rows, self.edges, self.weights):
            fwd[(int(a), int(b))] = fwd.get((int(a), int(b)), 0.0) + float(w)
        for (a, b), w in fwd.items():
            if a == b:
                continue
            back = fwd.get((b, a))
            if back is None or abs(back - w) > 1e-9 * max(1.0, abs(w)):
                raise ValueError(f"asymmetric edge ({a}, {b}): {w} vs {back}")

    def relabel(self, mapping: np.ndarray) -> "CSRGraph":
        """Return the graph with vertex ``u`` renamed ``mapping[u]``.

        ``mapping`` must be a permutation of ``range(n)``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if len(mapping) != self.num_vertices:
            raise ValueError("mapping length must equal num_vertices")
        if len(np.unique(mapping)) != self.num_vertices:
            raise ValueError("mapping must be a permutation")
        eu, ev, ew = self.edge_array()
        return CSRGraph.from_edges(
            self.num_vertices, mapping[eu], mapping[ev], ew
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, edges={self.num_edges}, "
            f"W={self.total_weight:.6g})"
        )
