"""Graph substrate: CSR storage, edge lists, binary I/O, 1-D partitioning,
and the distributed (ghost-aware) graph structure from the paper's §IV."""

from .binio import (
    BinFormatError,
    BinHeader,
    read_edgelist,
    read_edges_slice,
    read_header,
    write_edgelist,
)
from .csr import CSRGraph
from .distalgo import (
    distributed_components,
    distributed_degree_histogram,
    distributed_num_components,
    distributed_total_weight,
)
from .distgraph import DistGraph, GhostPlan
from .edgelist import EdgeList
from .metrics import GraphStats, connected_components, graph_stats, is_connected
from .partition import (
    even_edge,
    even_vertex,
    local_counts,
    owner_of,
    place_communities,
)
from .textio import (
    TextFormatError,
    convert_to_binary,
    read_metis,
    read_snap_edgelist,
    write_metis,
    write_snap_edgelist,
)

__all__ = [
    "BinFormatError",
    "BinHeader",
    "CSRGraph",
    "DistGraph",
    "EdgeList",
    "GhostPlan",
    "GraphStats",
    "connected_components",
    "distributed_components",
    "distributed_degree_histogram",
    "distributed_num_components",
    "distributed_total_weight",
    "even_edge",
    "even_vertex",
    "graph_stats",
    "is_connected",
    "local_counts",
    "owner_of",
    "place_communities",
    "TextFormatError",
    "convert_to_binary",
    "read_edgelist",
    "read_edges_slice",
    "read_header",
    "read_metis",
    "read_snap_edgelist",
    "write_edgelist",
    "write_metis",
    "write_snap_edgelist",
]
