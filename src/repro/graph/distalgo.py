"""Distributed graph algorithms over the 1-D partitioned graph.

Companion utilities to the Louvain core that exercise the same
ghost-exchange machinery:

* :func:`distributed_components` — connected components by min-label
  propagation (validates inputs; the paper's convergence behaviour
  differs on disconnected graphs);
* :func:`distributed_degree_histogram` — global degree distribution
  (used to characterise inputs without gathering the graph anywhere);
* :func:`distributed_total_weight` — global ``2m`` from local partials;
* :func:`distributed_label_counts` — global multiplicity of each label
  a rank holds, via owner-routed partial counts (the community-size
  query of the quality-assessment feature, §V-D).

Each function is SPMD: call from every rank with that rank's
:class:`~repro.graph.distgraph.DistGraph`.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator
from .distgraph import DistGraph, split_by_rank


def distributed_components(
    comm: Communicator,
    dg: DistGraph,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Connected-component label per owned vertex (global min vertex id).

    Min-label propagation: every vertex repeatedly adopts the smallest
    label in its closed neighbourhood; ghost labels refresh each round;
    one allreduce detects global convergence.  Rounds needed equal the
    graph diameter in the worst case.
    """
    plan = dg.build_ghost_plan(comm)
    ctargets = dg.compressed_targets(plan)
    nloc = dg.num_local
    rows = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(dg.index))
    labels = dg.local_vertex_ids().copy()

    for _ in range(max_rounds):
        ghost_labels = dg.exchange_ghost_values(
            comm, plan, labels, category="other"
        )
        target_labels = (
            np.concatenate([labels, ghost_labels])[ctargets]
            if len(ctargets)
            else np.empty(0, dtype=np.int64)
        )
        new_labels = labels.copy()
        if len(rows):
            np.minimum.at(new_labels, rows, target_labels)
        comm.charge_compute(dg.num_local_entries)
        changed = bool(np.any(new_labels != labels))
        labels = new_labels
        if not comm.allreduce(changed, op="lor", category="other"):
            return labels
    raise RuntimeError(
        f"component propagation did not converge in {max_rounds} rounds"
    )


def distributed_num_components(comm: Communicator, dg: DistGraph) -> int:
    """Number of connected components (isolated vertices count)."""
    labels = distributed_components(comm, dg)
    # A component is counted by its representative: the vertex whose
    # label equals its own id (exactly one per component).
    mine = dg.local_vertex_ids()
    local_roots = int(np.count_nonzero(labels == mine))
    return int(comm.allreduce(local_roots, category="other"))


def distributed_degree_histogram(
    comm: Communicator,
    dg: DistGraph,
    num_bins: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Global (unweighted) degree histogram with log-spaced bins.

    Returns ``(bin_edges, counts)`` replicated on every rank.  Bin edges
    derive from the global max degree, so all ranks agree.
    """
    local_deg = np.diff(dg.index)
    local_max = int(local_deg.max()) if len(local_deg) else 0
    global_max = int(comm.allreduce(local_max, op="max", category="other"))
    edges = np.unique(
        np.round(
            np.logspace(0, np.log10(max(global_max, 1) + 1), num_bins)
        ).astype(np.int64)
    )
    edges = np.concatenate([[0], edges])
    counts = np.histogram(local_deg, bins=edges)[0]
    total = comm.allreduce(counts, category="other")
    return edges, total


def distributed_total_weight(comm: Communicator, dg: DistGraph) -> float:
    """Global ``sum_u k_u`` recomputed from local partials.

    Cross-checks :attr:`DistGraph.total_weight` (which loaders set);
    a mismatch indicates a corrupted distribution.
    """
    return float(
        comm.allreduce(float(dg.weights.sum()), category="other")
    )


def distributed_label_counts(
    comm: Communicator, dg: DistGraph, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Global multiplicity of each distinct label this rank holds.

    ``labels`` assigns one label per owned vertex, drawn from the global
    vertex-id space (the convention of the distributed Louvain: a
    community is owned by the rank owning the same-numbered vertex).
    Partial counts route to the label owners, who aggregate and answer —
    two alltoalls, the same owner-directed pattern as the community-info
    protocol.  Returns ``(uniq, counts)``: this rank's distinct labels
    (sorted) and their global multiplicities.
    """
    if len(labels) != dg.num_local:
        raise ValueError(
            f"labels covers {len(labels)} vertices, rank owns {dg.num_local}"
        )
    uniq, local_counts = np.unique(labels, return_counts=True)
    requests = split_by_rank(
        dg.owner_of(uniq), comm.size, uniq, local_counts
    )
    incoming = comm.alltoall(requests, category="other")

    # Owner side: aggregate partials over a dense slot array.
    owned = np.zeros(dg.num_local, dtype=np.int64)
    for ids, counts in incoming:
        if len(ids):
            np.add.at(owned, dg.to_local(ids), counts)
    replies = [
        owned[dg.to_local(ids)] if len(ids) else np.empty(0, np.int64)
        for ids, _ in incoming
    ]
    answers = comm.alltoall(replies, category="other")

    totals = np.zeros(len(uniq), dtype=np.int64)
    for r, (ids, _) in enumerate(requests):
        if len(ids):
            totals[np.searchsorted(uniq, ids)] = answers[r]
    return uniq, totals
