"""Message payload size estimation.

The performance model charges communication cost per byte, so every
message needs a byte size.  Real MPI programs send raw buffers whose size
is exact; the simulator ships Python objects, so we estimate the size the
equivalent packed buffer would have on the wire.

The estimate intentionally models *packed binary data*, not pickled
Python objects: the paper's implementation exchanges arrays of 64-bit
vertex/community identifiers and 64-bit floating point weights, so a
list of ``n`` ints is charged ``8 * n`` bytes, matching what the C++
implementation would transmit.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

#: Wire size of one scalar (vertex id, community id, weight), in bytes.
SCALAR_BYTES = 8

#: Fixed envelope cost charged per message (headers, matching metadata).
ENVELOPE_BYTES = 32

#: Registered wire-size estimators for custom message types, consulted
#: before the ``__dict__`` fallback (insertion order; first match wins).
_CUSTOM_SIZERS: dict[type, Callable[[Any], int]] = {}


def register_payload_type(cls: type, sizer: Callable[[Any], int]) -> None:
    """Register a deterministic wire-size estimator for ``cls``.

    SPMD code that ships a custom object type should register it here so
    the cost model charges its true packed footprint instead of the
    conservative fallback — spmdlint rule SPMD201 points senders of
    unsizable payloads at this hook.
    """
    if not isinstance(cls, type):
        raise TypeError(f"expected a type, got {cls!r}")
    _CUSTOM_SIZERS[cls] = sizer


def registered_payload_types() -> tuple[type, ...]:
    """Types with a registered custom sizer (introspection/tests)."""
    return tuple(_CUSTOM_SIZERS)


def nbytes(obj: Any) -> int:
    """Return the estimated wire size of ``obj`` in bytes.

    Supported payload shapes are the ones the library actually sends:
    numpy arrays, scalars, (nested) tuples/lists, dicts and sets of
    scalars, and ``None``.  Anything else falls back to a conservative
    per-object constant so an unexpected payload is charged, never free.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        # Covers structured (record) arrays too: a packed
        # ``(id, tot, size)`` struct-array is charged its true
        # ``itemsize * n`` wire footprint, exactly what the equivalent
        # C++ implementation would put in an MPI derived datatype.
        return int(obj.nbytes)
    if isinstance(obj, np.void):  # one record of a structured array
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return SCALAR_BYTES
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, dict):
        return sum(nbytes(k) + nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(nbytes(x) for x in obj)
    for cls, sizer in _CUSTOM_SIZERS.items():
        if isinstance(obj, cls):
            return int(sizer(obj))
    # Dataclass-like objects used as messages expose __dict__.
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return sum(nbytes(v) for v in d.values())
    return 64


def message_bytes(obj: Any) -> int:
    """Wire size of a message: payload plus a fixed envelope."""
    return ENVELOPE_BYTES + nbytes(obj)
