"""Simulated SPMD/MPI runtime substrate.

This subpackage replaces the MPI + Cray Aries stack the paper ran on:
ranks are threads, messages are Python objects routed through mailboxes,
and time is an analytic LogGP-style model (see DESIGN.md §2 for the
substitution rationale).
"""

from .comm import (
    Communicator,
    Request,
    ScheduleRecorder,
    SubCommunicator,
    World,
    payload_kind,
    split_communicator,
    wait_all,
)
from .errors import (
    CollectiveMismatchError,
    CommTimeoutError,
    InjectedFault,
    InvalidRankError,
    RankAborted,
    RankFailedError,
    RuntimeSimError,
)
from .executor import SPMDResult, run_spmd
from .payload import (
    message_bytes,
    nbytes,
    register_payload_type,
    registered_payload_types,
)
from .perfmodel import (
    CORI_HASWELL,
    CORI_HASWELL_SHARED,
    FREE,
    PRESETS,
    SLOW_NETWORK,
    MachineModel,
    OpenMPModel,
)
from .tracing import CATEGORIES, RankTrace, TraceReport

__all__ = [
    "CATEGORIES",
    "CORI_HASWELL",
    "CORI_HASWELL_SHARED",
    "FREE",
    "PRESETS",
    "SLOW_NETWORK",
    "CollectiveMismatchError",
    "CommTimeoutError",
    "Communicator",
    "InjectedFault",
    "InvalidRankError",
    "MachineModel",
    "OpenMPModel",
    "RankAborted",
    "RankFailedError",
    "RankTrace",
    "Request",
    "RuntimeSimError",
    "SPMDResult",
    "ScheduleRecorder",
    "SubCommunicator",
    "TraceReport",
    "World",
    "message_bytes",
    "nbytes",
    "payload_kind",
    "register_payload_type",
    "registered_payload_types",
    "run_spmd",
    "split_communicator",
    "wait_all",
]
