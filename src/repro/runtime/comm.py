"""MPI-like communicator for the simulated SPMD runtime.

The paper's implementation is an MPI+OpenMP SPMD program.  This module
provides the same programming model inside one Python process: ``p``
ranks run as threads, each holding a :class:`Communicator`, and talk via

* buffered point-to-point messages (``send``/``recv``/``sendrecv``), and
* synchronizing collectives (``barrier``, ``bcast``, ``reduce``,
  ``allreduce``, ``gather``, ``allgather``, ``scatter``, ``alltoall``,
  ``scan``/``exscan``), the MPI-3-style ``neighbor_alltoall`` the
  paper lists as future work (§VI), and the fused request/reply
  ``exchange_roundtrip`` backing the owner-push community protocol.

Every operation advances the rank's *virtual clock* according to the
:class:`~repro.runtime.perfmodel.MachineModel` and attributes the time to
a trace category (see :mod:`repro.runtime.tracing`), so the benchmark
harness can report both modelled execution times and the §V-A style
time breakdown.

Semantics notes (documented deviations from real MPI):

* sends are buffered and never block — message matching is FIFO per
  (source, tag) pair, like MPI's non-overtaking rule;
* all collectives are synchronizing (clocks align to the latest arriving
  rank before the collective's cost is added), which is the conservative
  model for a blocking implementation;
* ranks must call collectives in the same order with the same name, as
  MPI requires; mismatches raise
  :class:`~repro.runtime.errors.CollectiveMismatchError` instead of the
  undefined behaviour real MPI gives you.

Fault injection: the :class:`World` optionally carries a *fault plan*
(any object with ``on_op(rank, op_index, op_name)``; see
:class:`repro.resilience.faults.FaultPlan`).  Every send/recv/collective
first consults it.  The plan may raise
:class:`~repro.runtime.errors.InjectedFault` (killing the rank), or
return ``("delay", seconds)`` to add virtual latency, ``("drop",)`` to
silently discard a point-to-point send (the receiver eventually times
out, as with a real lost message), or ``None`` for no action.

Debug-mode dynamic verification (``REPRO_VERIFY_SCHEDULE=1`` or
``World(verify_schedule=True)``): every rank additionally records a
rolling hash of its (op name, payload kind) collective sequence, and
each rendezvous cross-checks the hashes as ranks arrive, so a divergent
schedule is localized to the *first* mismatched op (by op index and
rank) instead of whatever op happens to explode later.  Independent of
that flag, every :class:`~repro.runtime.errors.CommTimeoutError` carries
a wait-for-graph *deadlock audit* naming each blocked rank, the op it is
stuck in, and any wait cycle.  The static half of this tooling is
:mod:`repro.analysis` (``repro-louvain lint``).
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict, deque
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import (
    CollectiveMismatchError,
    CommTimeoutError,
    InvalidRankError,
    RankAborted,
)
from .payload import message_bytes, nbytes
from .perfmodel import MachineModel
from .tracing import RankTrace

#: Reduction operators accepted by ``reduce``/``allreduce``/``scan``.
_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "prod": lambda a, b: a * b,
    "land": lambda a, b: bool(a) and bool(b),
    "lor": lambda a, b: bool(a) or bool(b),
}


def _resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return _REDUCE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {op!r}; expected one of {sorted(_REDUCE_OPS)}"
        ) from None


def _fold(values: Sequence[Any], op: Callable[[Any, Any], Any]) -> Any:
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


# ----------------------------------------------------------------------
# Debug-mode collective-schedule verification
# ----------------------------------------------------------------------
#: FNV-1a offset basis — seed of every rank's rolling schedule hash.
_SCHEDULE_SEED = 0xCBF29CE484222325


def _schedule_hash(prev: int, sig: str) -> int:
    """Fold one op signature into an FNV-1a-style rolling hash."""
    h = prev
    for b in sig.encode():
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


#: Collectives whose deposits must have rank-identical payload kinds.
#: Rooted ops (bcast/scatter) are excluded: non-root ranks legitimately
#: deposit ``None``.
_DTYPE_CHECKED = frozenset(
    {
        "barrier",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "alltoall",
        "scan",
        "exscan",
        "neighbor_alltoall",
        "exchange_roundtrip",
    }
)


def payload_kind(obj: Any) -> str:
    """Shallow type/dtype descriptor of a collective deposit.

    Deliberately shallow: container *contents* may legitimately differ
    across ranks (e.g. per-rank failure lists in an allgather), but the
    top-level kind — and an ndarray's dtype — must agree, which is
    exactly the class of silent divergence real MPI datatypes enforce.
    """
    if obj is None:
        return "none"
    if isinstance(obj, np.ndarray):
        return f"ndarray[{obj.dtype}]"
    if isinstance(obj, (bool, np.bool_)):
        return "bool"
    if isinstance(obj, (int, np.integer)):
        return "int"
    if isinstance(obj, (float, np.floating)):
        return "float"
    if isinstance(obj, (str, bytes, dict, tuple, list)):
        return type(obj).__name__
    return type(obj).__name__


class ScheduleRecorder:
    """One rank's collective schedule as a rolling hash plus op log.

    The hash makes comparison O(1) per op; the log exists only to
    localize a divergence to its first mismatched entry once the hashes
    disagree.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self.count = 0
        self.rolling = _SCHEDULE_SEED
        self.log: list[str] = []

    def record(self, op_name: str, kind: str) -> None:
        sig = f"{op_name}|{kind}" if kind else op_name
        self.count += 1
        self.rolling = _schedule_hash(self.rolling, sig)
        self.log.append(sig)


def _first_divergence(a: list[str], b: list[str]) -> tuple[int, str, str]:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i, x, y
    i = min(len(a), len(b))
    return (
        i,
        a[i] if i < len(a) else "<nothing>",
        b[i] if i < len(b) else "<nothing>",
    )


def _find_wait_cycle(edges: dict[int, set[int]]) -> list[int] | None:
    """First cycle in a wait-for graph (smallest-rank-first DFS)."""
    visited: set[int] = set()

    def dfs(node: int, path: list[int], pos: dict[int, int]):
        if node in pos:
            return path[pos[node]:] + [node]
        if node in visited or node not in edges:
            return None
        visited.add(node)
        pos[node] = len(path)
        path.append(node)
        for nxt in sorted(edges[node]):
            found = dfs(nxt, path, pos)
            if found is not None:
                return found
        path.pop()
        del pos[node]
        return None

    for start in sorted(edges):
        found = dfs(start, [], {})
        if found is not None:
            return found
    return None


class _Rendezvous:
    """Reusable all-ranks rendezvous used to implement collectives.

    Each collective call is one *generation*.  Every rank deposits a
    value; the last rank to arrive runs a ``finalize`` callback once,
    producing a per-rank output list; every rank then picks up its slot.
    Results are kept per generation (refcounted) so a fast rank starting
    the next collective cannot clobber a slow rank's pending result.
    """

    def __init__(
        self,
        size: int,
        world: "World",
        members: Sequence[int] | None = None,
    ):
        self._size = size
        self._world = world
        #: World ranks participating in this rendezvous.
        self._members = list(members) if members is not None else list(range(size))
        self._cv = threading.Condition()
        self._gen = 0
        self._arrived = 0
        self._slots: list[Any] = [None] * size
        self._op_name: str | None = None
        self._results: dict[int, list[Any]] = {}
        self._refs: dict[int, int] = {}
        # Debug-mode schedule verification (lazy; see module docstring).
        self._recorders: list[ScheduleRecorder] | None = None
        self._sched_ref: tuple[int, int] | None = None
        #: group rank -> world rank of the ranks inside the current
        #: generation (diagnostics: deadlock audit "waiting for ...").
        self._present: dict[int, int] = {}

    def _verify(
        self, rank: int, world_rank: int, op_name: str, kind: str
    ) -> CollectiveMismatchError | None:
        """Record ``rank``'s op and cross-check rolling schedule hashes.

        The first arriver of each generation is the reference; any later
        arriver whose (hash, count) disagrees gets an error localizing
        the divergence to the first mismatched op of the two logs.
        """
        if self._recorders is None:
            self._recorders = [ScheduleRecorder(i) for i in range(self._size)]
        rec = self._recorders[rank]
        rec.record(op_name, kind)
        if self._arrived == 0:
            self._sched_ref = (rank, world_rank)
            return None
        ref_rank, ref_wr = self._sched_ref  # type: ignore[misc]
        ref = self._recorders[ref_rank]
        if (ref.rolling, ref.count) == (rec.rolling, rec.count):
            return None
        idx, ref_sig, sig = _first_divergence(ref.log, rec.log)
        return CollectiveMismatchError(
            f"collective schedule divergence at op #{idx}: rank {ref_wr} "
            f"recorded {ref_sig!r} but rank {world_rank} recorded {sig!r} "
            f"(detected entering {op_name!r}, collective op #{self._gen})"
        )

    def exchange(
        self,
        rank: int,
        op_name: str,
        deposit: Any,
        finalize: Callable[[list[Any]], list[Any]],
        timeout: float,
        world_rank: int | None = None,
        kind: str = "",
    ) -> Any:
        wr = rank if world_rank is None else world_rank
        with self._cv:
            self._world.check_abort()
            gen = self._gen
            if self._arrived == 0:
                self._op_name = op_name
            elif self._op_name != op_name:
                exc = CollectiveMismatchError(
                    f"rank {wr} called {op_name!r} while other ranks are in "
                    f"{self._op_name!r} (collective op #{gen})"
                )
                self._world.abort(exc)
                self._cv.notify_all()
                raise exc
            if self._world.verify_schedule:
                mismatch = self._verify(rank, wr, op_name, kind)
                if mismatch is not None:
                    self._world.abort(mismatch)
                    self._cv.notify_all()
                    raise mismatch
            self._slots[rank] = deposit
            self._present[rank] = wr
            self._arrived += 1
            if self._arrived == self._size:
                outs = finalize(self._slots)
                if len(outs) != self._size:
                    raise AssertionError(
                        f"finalize for {op_name!r} returned {len(outs)} outputs "
                        f"for {self._size} ranks"
                    )
                self._results[gen] = outs
                self._refs[gen] = self._size
                self._slots = [None] * self._size
                self._arrived = 0
                self._present = {}
                self._gen += 1
                self._cv.notify_all()
            else:
                self._world.set_blocked(wr, ("collective", op_name, self))
                try:
                    while self._gen == gen:
                        if not self._cv.wait(timeout):
                            exc = CommTimeoutError(
                                f"rank {wr} timed out after {timeout}s inside "
                                f"collective {op_name!r} (collective op "
                                f"#{gen}); only {self._arrived}/{self._size} "
                                "ranks arrived — likely a deadlock in the "
                                "SPMD program\n"
                                + self._world.deadlock_audit()
                            )
                            self._world.abort(exc)
                            self._cv.notify_all()
                            raise exc
                        self._world.check_abort()
                finally:
                    self._world.clear_blocked(wr)
            out = self._results[gen][rank]
            self._refs[gen] -= 1
            if self._refs[gen] == 0:
                del self._results[gen]
                del self._refs[gen]
            return out

    def wake_all(self) -> None:
        with self._cv:
            self._cv.notify_all()


class World:
    """Shared state for one SPMD run: mailboxes, rendezvous, abort flag."""

    def __init__(
        self,
        size: int,
        machine: MachineModel,
        timeout: float = 120.0,
        verify_schedule: bool | None = None,
    ):
        if size < 1:
            raise InvalidRankError(f"world size must be >= 1, got {size}")
        self.size = size
        self.machine = machine
        self.timeout = timeout
        if verify_schedule is None:
            verify_schedule = os.environ.get(
                "REPRO_VERIFY_SCHEDULE", ""
            ).strip().lower() in ("1", "true", "on", "yes")
        #: Debug mode: cross-check each rank's rolling collective-schedule
        #: hash at every rendezvous (see module docstring).
        self.verify_schedule = bool(verify_schedule)
        self._abort_exc: BaseException | None = None
        # Per-world-rank blocked state for the deadlock audit:
        # ("recv", source, tag) or ("collective", op_name, rendezvous).
        self._blocked: list[tuple | None] = [None] * size
        #: Optional fault-injection plan (``on_op(rank, op_index, op)``).
        self.fault_plan: Any = None
        # Per-rank communication-operation counters (each rank only ever
        # touches its own slot, so no locking is needed).
        self._op_counts: list[int] = [0] * size
        # One mailbox per destination rank: (source, tag) -> FIFO of
        # (payload, arrival_time, nbytes).
        self._boxes: list[dict[tuple[int, int], deque]] = [
            defaultdict(deque) for _ in range(size)
        ]
        self._box_cvs = [threading.Condition() for _ in range(size)]
        self.rendezvous = _Rendezvous(size, self)
        self._sub_lock = threading.Lock()
        self._sub_rendezvous: dict[tuple, _Rendezvous] = {}

    # -- abort handling -------------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """Record the first failure and wake every blocked rank."""
        if self._abort_exc is None:
            self._abort_exc = exc
        for cv in self._box_cvs:
            with cv:
                cv.notify_all()
        self.rendezvous.wake_all()
        with self._sub_lock:
            subs = list(self._sub_rendezvous.values())
        for r in subs:
            r.wake_all()

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    def check_abort(self) -> None:
        if self._abort_exc is not None:
            raise RankAborted(
                f"world aborted by another rank: {self._abort_exc!r}"
            )

    # -- mailbox plumbing ------------------------------------------------
    def post(self, dest: int, source: int, tag: int, item: tuple) -> None:
        cv = self._box_cvs[dest]
        with cv:
            self._boxes[dest][(source, tag)].append(item)
            cv.notify_all()

    def take(self, dest: int, source: int, tag: int, timeout: float) -> tuple:
        cv = self._box_cvs[dest]
        key = (source, tag)
        with cv:
            self.set_blocked(dest, ("recv", source, tag))
            try:
                while not self._boxes[dest][key]:
                    self.check_abort()
                    if not cv.wait(timeout):
                        exc = CommTimeoutError(
                            f"rank {dest} timed out after {timeout}s waiting "
                            f"for a message from rank {source} tag {tag}\n"
                            + self.deadlock_audit()
                        )
                        self.abort(exc)
                        raise exc
                self.check_abort()
                return self._boxes[dest][key].popleft()
            finally:
                self.clear_blocked(dest)

    def probe_any(self, dest: int) -> bool:
        """True if any message is waiting for ``dest`` (test helper)."""
        with self._box_cvs[dest]:
            return any(self._boxes[dest].values())

    def probe(self, dest: int, source: int, tag: int) -> bool:
        """True if a matching message is already queued for ``dest``."""
        with self._box_cvs[dest]:
            return bool(self._boxes[dest][(source, tag)])

    def fault_op(self, rank: int, op_name: str) -> Any:
        """Advance ``rank``'s op counter and consult the fault plan.

        Op indices are 1-based (the rank's first communication
        operation is op 1).  Returns the plan's action (``None`` /
        ``("delay", dt)`` / ``("drop",)``); a kill is raised by the
        plan itself as :class:`~repro.runtime.errors.InjectedFault`.
        """
        n = self._op_counts[rank] + 1
        self._op_counts[rank] = n
        if self.fault_plan is None:
            return None
        return self.fault_plan.on_op(rank, n, op_name)

    def subgroup_rendezvous(
        self, members: tuple[int, ...], group_id: int
    ) -> _Rendezvous:
        """Shared rendezvous for a subgroup (one instance per group)."""
        with self._sub_lock:
            key = (members, group_id)
            if key not in self._sub_rendezvous:
                self._sub_rendezvous[key] = _Rendezvous(
                    len(members), self, members=members
                )
            return self._sub_rendezvous[key]

    # -- deadlock audit --------------------------------------------------
    def set_blocked(self, world_rank: int, info: tuple) -> None:
        self._blocked[world_rank] = info

    def clear_blocked(self, world_rank: int) -> None:
        self._blocked[world_rank] = None

    def deadlock_audit(self) -> str:
        """Wait-for-graph snapshot: every rank's blocking op plus any
        wait cycle.  Attached to each :class:`CommTimeoutError`.

        Reads other ranks' state without their locks — safe for a
        diagnostic taken when progress has already stopped.
        """
        lines = ["deadlock audit (wait-for graph):"]
        edges: dict[int, set[int]] = {}
        for r in range(self.size):
            info = self._blocked[r]
            if info is None:
                lines.append(
                    f"  rank {r}: running (not blocked in communication)"
                )
                continue
            if info[0] == "recv":
                _, source, tag = info
                lines.append(
                    f"  rank {r}: blocked in recv(source={source}, tag={tag})"
                )
                edges[r] = {source}
            else:
                _, op_name, rdv = info
                waiting = sorted(
                    set(rdv._members) - set(rdv._present.values())
                )
                lines.append(
                    f"  rank {r}: blocked in collective {op_name!r} "
                    f"(op #{rdv._gen}), waiting for ranks {waiting}"
                )
                edges[r] = set(waiting)
        cycle = _find_wait_cycle(edges)
        if cycle is not None:
            lines.append(
                "  wait cycle: " + " -> ".join(str(r) for r in cycle)
            )
        else:
            lines.append(
                "  no wait cycle detected (a rank may be slow, dead, "
                "or computing)"
            )
        return "\n".join(lines)

    def communicator(self, rank: int) -> "Communicator":
        return Communicator(self, rank)


class Communicator:
    """Per-rank handle: messaging, collectives, and virtual-clock charging."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise InvalidRankError(f"rank {rank} out of range [0, {world.size})")
        self.world = world
        self.rank = rank
        self.size = world.size
        self.machine = world.machine
        self.clock = 0.0
        self.trace = RankTrace(rank=rank)

    @property
    def world_rank(self) -> int:
        """Rank in the world communicator (differs inside subgroups)."""
        return self.rank

    def _fault_hook(self, op_name: str, category: str) -> Any:
        """Consult the world's fault plan before a communication op.

        Applies a ``delay`` action immediately (extra virtual latency
        charged to the op's category) and returns the action so callers
        can honour ``drop``.
        """
        action = self.world.fault_op(self.world_rank, op_name)
        if isinstance(action, tuple) and action and action[0] == "delay":
            self.charge(category, float(action[1]))
        return action

    # ------------------------------------------------------------------
    # Local cost charging
    # ------------------------------------------------------------------
    def charge(self, category: str, dt: float) -> None:
        """Advance this rank's virtual clock by ``dt`` seconds."""
        self.trace.charge(category, dt, at=self.clock)
        self.clock += dt

    def charge_compute(self, ops: float, category: str = "compute") -> None:
        """Charge ``ops`` edge/vertex operations of local compute."""
        self.charge(category, self.machine.compute_cost(ops))

    def charge_io(self, nbytes: float) -> None:
        """Charge reading ``nbytes`` from the parallel filesystem."""
        self.charge("io", self.machine.io_cost(nbytes))

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, category: str = "other") -> None:
        """Buffered send; never blocks."""
        self._check_peer(dest)
        action = self._fault_hook("send", category)
        n = message_bytes(obj)
        # Sender pays the injection overhead (cheaper when the peer is
        # on the same node); the payload arrives after the full
        # alpha-beta transfer completes.
        alpha = self.machine.p2p_alpha(self.rank, dest)
        self.charge(category, alpha)
        arrival = self.clock + self.machine.beta * n
        self.trace.record_send(n)
        if isinstance(action, tuple) and action and action[0] == "drop":
            return  # the message is lost in transit
        self.world.post(dest, self.rank, tag, (obj, arrival, n))

    def recv(self, source: int, tag: int = 0, category: str = "other") -> Any:
        """Blocking receive of the next matching message (FIFO order)."""
        self._check_peer(source)
        self._fault_hook("recv", category)
        obj, arrival, n = self.world.take(
            self.rank, source, tag, self.world.timeout
        )
        self.trace.record_recv(n)
        # Time inside recv = wait for arrival (if any) + receive overhead.
        target = max(self.clock, arrival) + self.machine.p2p_alpha(
            source, self.rank
        )
        self.charge(category, target - self.clock)
        return obj

    def isend(
        self, obj: Any, dest: int, tag: int = 0, category: str = "other"
    ) -> "Request":
        """Nonblocking send.  The simulator buffers sends, so the
        returned request is already complete; it exists so SPMD code
        written in the MPI isend/irecv style runs unchanged."""
        self.send(obj, dest, tag=tag, category=category)
        return Request(comm=self, kind="send")

    def irecv(
        self, source: int, tag: int = 0, category: str = "other"
    ) -> "Request":
        """Nonblocking receive: returns a :class:`Request`; the message
        is consumed at ``wait()`` (or a successful ``test()``)."""
        self._check_peer(source)
        return Request(
            comm=self, kind="recv", source=source, tag=tag, category=category
        )

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
        category: str = "other",
    ) -> Any:
        self.send(obj, dest, tag=sendtag, category=category)
        return self.recv(source, tag=recvtag, category=category)

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise InvalidRankError(
                f"peer rank {peer} out of range [0, {self.size})"
            )

    def split(self, color: int, key: int | None = None) -> "SubCommunicator":
        """MPI_Comm_split over this communicator (collective)."""
        return split_communicator(self, color, key)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _collective(
        self,
        name: str,
        deposit: Any,
        finalize: Callable[[list[Any]], list[Any]],
        category: str,
    ) -> Any:
        """Run one synchronizing collective and apply its clock update.

        ``finalize`` receives the per-rank deposits ``[(value, clock)]``
        and must return per-rank ``(result, new_clock)`` pairs.
        """
        self._fault_hook(name, category)
        self.trace.record_collective(name)
        out, new_clock = self.world.rendezvous.exchange(
            self.rank,
            name,
            (deposit, self.clock),
            finalize,
            self.world.timeout,
            world_rank=self.world_rank,
            kind=self._schedule_kind(name, deposit),
        )
        self.charge(category, max(new_clock - self.clock, 0.0))
        return out

    def _schedule_kind(self, name: str, deposit: Any) -> str:
        """Payload descriptor recorded by the schedule verifier."""
        if self.world.verify_schedule and name in _DTYPE_CHECKED:
            return payload_kind(deposit)
        return ""

    def barrier(self, category: str = "other") -> None:
        m = self.machine
        p = self.size

        def finalize(slots):
            t = max(c for _, c in slots) + m.barrier_cost(p)
            return [(None, t)] * p

        self._collective("barrier", None, finalize, category)

    def bcast(self, obj: Any, root: int = 0, category: str = "other") -> Any:
        self._check_peer(root)
        m = self.machine
        p = self.size

        def finalize(slots):
            value = slots[root][0]
            t = max(c for _, c in slots) + m.bcast_cost(message_bytes(value), p)
            return [(value, t)] * p

        return self._collective(
            "bcast", obj if self.rank == root else None, finalize, category
        )

    def reduce(
        self,
        value: Any,
        op: str | Callable[[Any, Any], Any] = "sum",
        root: int = 0,
        category: str = "other",
    ) -> Any:
        """Reduce to ``root``; other ranks receive ``None``."""
        self._check_peer(root)
        fn = _resolve_op(op)
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            total = _fold(values, fn)
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.reduce_cost(n, p)
            return [(total if r == root else None, t) for r in range(p)]

        return self._collective("reduce", value, finalize, category)

    def allreduce(
        self,
        value: Any,
        op: str | Callable[[Any, Any], Any] = "sum",
        category: str = "allreduce",
    ) -> Any:
        fn = _resolve_op(op)
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            total = _fold(values, fn)
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.allreduce_cost(n, p)
            return [(total, t)] * p

        return self._collective("allreduce", value, finalize, category)

    def gather(self, value: Any, root: int = 0, category: str = "other") -> list | None:
        self._check_peer(root)
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.gather_cost(n, p)
            return [(list(values) if r == root else None, t) for r in range(p)]

        return self._collective("gather", value, finalize, category)

    def allgather(self, value: Any, category: str = "other") -> list:
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.allgather_cost(n, p)
            return [(list(values), t)] * p

        return self._collective("allgather", value, finalize, category)

    def scatter(
        self, values: Sequence[Any] | None, root: int = 0, category: str = "other"
    ) -> Any:
        """Root provides one value per rank; each rank receives its own."""
        self._check_peer(root)
        m = self.machine
        p = self.size

        def finalize(slots):
            send = slots[root][0]
            if send is None or len(send) != p:
                raise ValueError(
                    f"scatter root must supply exactly {p} values, got "
                    f"{None if send is None else len(send)}"
                )
            n = max(message_bytes(v) for v in send)
            t = max(c for _, c in slots) + m.gather_cost(n, p)
            return [(send[r], t) for r in range(p)]

        return self._collective(
            "scatter", values if self.rank == root else None, finalize, category
        )

    def alltoall(self, values: Sequence[Any], category: str = "other") -> list:
        """Personalized all-to-all: rank ``i`` sends ``values[j]`` to ``j``.

        Cost per rank follows the pairwise-exchange alltoallv model with
        that rank's actual send/receive volumes, so an imbalanced
        exchange (a few heavy ghost owners) costs more on the heavy
        ranks — the effect the paper's §V-A profile attributes waiting
        time to.
        """
        if len(values) != self.size:
            raise ValueError(
                f"alltoall needs one value per rank ({self.size}), got "
                f"{len(values)}"
            )
        m = self.machine
        p = self.size

        def finalize(slots):
            mats = [v for v, _ in slots]
            t0 = max(c for _, c in slots)
            outs = []
            for r in range(p):
                received = [mats[s][r] for s in range(p)]
                sent_bytes = sum(
                    message_bytes(mats[r][d]) for d in range(p) if d != r
                )
                recv_bytes = sum(
                    message_bytes(mats[s][r]) for s in range(p) if s != r
                )
                t = t0 + m.alltoallv_cost(sent_bytes, recv_bytes, p, rank=r)
                outs.append((received, t))
            return outs

        out = self._collective("alltoall", list(values), finalize, category)
        for d, v in enumerate(values):
            if d != self.rank:
                self.trace.record_send(message_bytes(v))
        for s, v in enumerate(out):
            if s != self.rank:
                self.trace.record_recv(message_bytes(v))
        return out

    def exchange_roundtrip(
        self,
        outgoing: Sequence[Any],
        serve: Callable[[list], list],
        category: str = "other",
        sparse: bool = False,
    ) -> list:
        """Fused request/reply personalized exchange (one collective).

        Rank ``i``'s ``outgoing[j]`` is delivered to rank ``j``; each
        rank's ``serve(incoming)`` then runs exactly once with the
        requests from every rank (``incoming[s]`` is rank ``s``'s
        request) and must return one reply payload per rank; the call
        returns the replies addressed to this rank (``result[j]`` is
        rank ``j``'s reply).  ``serve`` is the *owner side* of an
        owner-push protocol: it may mutate rank-local state (the
        deposits travel by reference inside the simulator, and every
        rank is blocked in the collective while the serve callbacks run
        in rank order), which is what lets a delta-apply step and the
        push of its consequences fuse into a single exchange instead of
        the three alltoalls of a pull protocol.

        Cost model: two back-to-back alltoallv legs (see
        :meth:`MachineModel.exchange_leg_cost`) with a synchronisation
        point in between — no rank can serve before its last request
        arrives.  With ``sparse=True`` both legs are charged like
        neighbourhood collectives: latency scales with the number of
        non-empty partner payloads instead of ``p - 1`` (``None`` or
        zero-byte payloads count as "no message").
        """
        if len(outgoing) != self.size:
            raise ValueError(
                f"exchange_roundtrip needs one payload per rank "
                f"({self.size}), got {len(outgoing)}"
            )
        m = self.machine
        p = self.size

        def _occupied(obj: Any) -> bool:
            return obj is not None and nbytes(obj) > 0

        def _leg_cost(r: int, sent: int, recv: int, deg: int) -> float:
            return m.exchange_leg_cost(
                sent, recv, p, rank=r, degree=deg if sparse else None
            )

        def finalize(slots):
            mats = [v for (v, _fn), _ in slots]
            serves = [fn for (_v, fn), _ in slots]
            t0 = max(c for _, c in slots)
            # Request leg: servers reply only once every request landed.
            req_costs = []
            for r in range(p):
                sent_slots = [mats[r][d] for d in range(p) if d != r]
                recv_slots = [mats[s][r] for s in range(p) if s != r]
                if sparse:
                    sent_slots = [v for v in sent_slots if _occupied(v)]
                    recv_slots = [v for v in recv_slots if _occupied(v)]
                deg = len(sent_slots) + len(recv_slots)
                req_costs.append(
                    _leg_cost(
                        r,
                        sum(message_bytes(v) for v in sent_slots),
                        sum(message_bytes(v) for v in recv_slots),
                        deg,
                    )
                )
            t_mid = t0 + max(req_costs)
            # Serve in rank order: deterministic regardless of which
            # thread happens to run the rendezvous finalizer.
            reply_mat = []
            for r in range(p):
                replies = serves[r]([mats[s][r] for s in range(p)])
                if len(replies) != p:
                    raise ValueError(
                        f"serve on rank {r} returned {len(replies)} "
                        f"replies for {p} ranks"
                    )
                reply_mat.append(replies)
            outs = []
            for r in range(p):
                received = [reply_mat[s][r] for s in range(p)]
                sent_slots = [reply_mat[r][d] for d in range(p) if d != r]
                recv_slots = [reply_mat[s][r] for s in range(p) if s != r]
                if sparse:
                    sent_slots = [v for v in sent_slots if _occupied(v)]
                    recv_slots = [v for v in recv_slots if _occupied(v)]
                deg = len(sent_slots) + len(recv_slots)
                t = t_mid + _leg_cost(
                    r,
                    sum(message_bytes(v) for v in sent_slots),
                    sum(message_bytes(v) for v in recv_slots),
                    deg,
                )
                rep_sent = [message_bytes(v) for v in sent_slots]
                req_recv = [
                    message_bytes(mats[s][r])
                    for s in range(p)
                    if s != r and (not sparse or _occupied(mats[s][r]))
                ]
                outs.append(((received, rep_sent, req_recv), t))
            return outs

        received, rep_sent, req_recv = self._collective(
            "exchange_roundtrip", (list(outgoing), serve), finalize, category
        )
        for d, v in enumerate(outgoing):
            if d != self.rank and (not sparse or _occupied(v)):
                self.trace.record_send(message_bytes(v))
        for n in req_recv:
            self.trace.record_recv(n)
        for n in rep_sent:
            self.trace.record_send(n)
        for s, v in enumerate(received):
            if s != self.rank and (not sparse or _occupied(v)):
                self.trace.record_recv(message_bytes(v))
        return received

    def neighbor_alltoall(
        self, payloads: dict[int, Any], category: str = "other"
    ) -> dict[int, Any]:
        """Sparse personalized exchange (MPI-3 neighbourhood collective).

        Each rank supplies ``{dest: payload}`` for its actual neighbours
        only; latency scales with the neighbourhood degree instead of
        ``p - 1`` (the optimization the paper proposes in §VI).
        Returns ``{source: payload}``.
        """
        m = self.machine
        p = self.size

        def finalize(slots):
            mats = [v for v, _ in slots]
            t0 = max(c for _, c in slots)
            outs = []
            for r in range(p):
                received = {
                    s: mats[s][r]
                    for s in range(p)
                    if s != r and r in mats[s]
                }
                sent_bytes = sum(
                    message_bytes(v) for d, v in mats[r].items() if d != r
                )
                recv_bytes = sum(message_bytes(v) for v in received.values())
                degree = len([d for d in mats[r] if d != r]) + len(received)
                t = t0 + m.neighbor_alltoallv_cost(sent_bytes, recv_bytes, degree)
                outs.append((received, t))
            return outs

        for d in payloads:
            self._check_peer(d)
        out = self._collective(
            "neighbor_alltoall", dict(payloads), finalize, category
        )
        for d, v in payloads.items():
            if d != self.rank:
                self.trace.record_send(message_bytes(v))
        for v in out.values():
            self.trace.record_recv(message_bytes(v))
        return out

    def scan(
        self,
        value: Any,
        op: str | Callable[[Any, Any], Any] = "sum",
        category: str = "other",
    ) -> Any:
        """Inclusive prefix reduction over ranks 0..self.rank."""
        fn = _resolve_op(op)
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.allreduce_cost(n, p)
            outs, acc = [], None
            for r in range(p):
                acc = values[r] if r == 0 else fn(acc, values[r])
                outs.append((acc, t))
            return outs

        return self._collective("scan", value, finalize, category)

    def exscan(
        self,
        value: Any,
        op: str | Callable[[Any, Any], Any] = "sum",
        identity: Any = 0,
        category: str = "other",
    ) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``identity``.

        This is the primitive behind the global renumbering step of the
        distributed graph reconstruction (§IV-A step 3).
        """
        fn = _resolve_op(op)
        m = self.machine
        p = self.size

        def finalize(slots):
            values = [v for v, _ in slots]
            n = max(message_bytes(v) for v in values)
            t = max(c for _, c in slots) + m.allreduce_cost(n, p)
            outs, acc = [], identity
            for r in range(p):
                outs.append((acc, t))
                acc = values[r] if r == 0 else fn(acc, values[r])
            return outs

        return self._collective("exscan", value, finalize, category)


class SubCommunicator(Communicator):
    """Communicator over a subgroup of ranks (result of ``split``).

    Ranks are renumbered ``0..group_size-1`` in the order given by the
    split key.  Point-to-point goes through the parent's mailboxes in a
    private tag space; collectives run on a dedicated rendezvous, so a
    subgroup collective can overlap freely with other subgroups (the
    property real MPI sub-communicators provide).
    """

    #: Tag-space offset isolating subcommunicator traffic.
    _TAG_BASE = 1 << 40

    def __init__(
        self,
        parent: Communicator,
        members: list[int],
        group_id: int,
        rendezvous: _Rendezvous,
    ):
        self.parent = parent
        self.world = parent.world
        self.machine = parent.machine
        self.members = list(members)
        self.rank = self.members.index(parent.rank)
        self.size = len(self.members)
        self.trace = parent.trace  # charges flow to the parent's trace
        self._group_id = group_id
        self._rendezvous = rendezvous

    @property
    def world_rank(self) -> int:
        return self.parent.rank

    # Clock is shared with the parent: one rank, one timeline.
    @property
    def clock(self) -> float:
        return self.parent.clock

    @clock.setter
    def clock(self, value: float) -> None:
        self.parent.clock = value

    def _tag_of(self, tag: int) -> int:
        if tag < 0 or tag >= self._TAG_BASE:
            raise ValueError(f"tag {tag} out of range for subcommunicator")
        return self._TAG_BASE + self._group_id * (self._TAG_BASE // 4096) + tag

    def send(self, obj: Any, dest: int, tag: int = 0, category: str = "other") -> None:
        self._check_peer(dest)
        self.parent.send(
            obj, self.members[dest], tag=self._tag_of(tag), category=category
        )

    def recv(self, source: int, tag: int = 0, category: str = "other") -> Any:
        self._check_peer(source)
        return self.parent.recv(
            self.members[source], tag=self._tag_of(tag), category=category
        )

    def _collective(
        self,
        name: str,
        deposit: Any,
        finalize: Callable[[list[Any]], list[Any]],
        category: str,
    ) -> Any:
        self._fault_hook(name, category)
        self.trace.record_collective(name)
        out, new_clock = self._rendezvous.exchange(
            self.rank,
            name,
            (deposit, self.clock),
            finalize,
            self.world.timeout,
            world_rank=self.world_rank,
            kind=self._schedule_kind(name, deposit),
        )
        self.charge(category, max(new_clock - self.clock, 0.0))
        return out


def split_communicator(
    comm: Communicator, color: int, key: int | None = None
) -> SubCommunicator:
    """MPI_Comm_split: partition ranks by ``color`` into subgroups.

    Collective over ``comm``.  Ranks sharing a color form one
    subcommunicator, ordered by ``(key, world rank)`` (``key`` defaults
    to the world rank).  Colors may be any integers; every rank must
    participate (there is no ``MPI_UNDEFINED`` — pass a unique color
    for a singleton group instead).
    """
    key = comm.rank if key is None else key
    triples = comm.allgather((color, key, comm.rank), category="other")
    members = sorted(
        (k, r) for c, k, r in triples if c == color
    )
    member_ranks = [r for _, r in members]
    # Deterministic group id shared by the group's members: dense index
    # of the color among all colors present.
    colors = sorted(set(c for c, _, _ in triples))
    group_id = colors.index(color)
    # One rendezvous per group, created consistently on every member via
    # a world-level registry keyed by the split generation + group.
    rendezvous = comm.world.subgroup_rendezvous(
        tuple(member_ranks), group_id
    )
    return SubCommunicator(comm, member_ranks, group_id, rendezvous)


class Request:
    """Handle for a nonblocking operation (mpi4py-style).

    ``wait()`` blocks until completion and returns the received object
    (``None`` for sends); ``test()`` returns ``(done, value)`` without
    blocking.  A request completes at most once; further calls return
    the cached outcome.
    """

    def __init__(
        self,
        comm: "Communicator",
        kind: str,
        source: int = -1,
        tag: int = 0,
        category: str = "other",
    ):
        self._comm = comm
        self._kind = kind
        self._source = source
        self._tag = tag
        self._category = category
        self._done = kind == "send"
        self._value: Any = None

    @property
    def completed(self) -> bool:
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(
                self._source, tag=self._tag, category=self._category
            )
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        if self._comm.world.probe(
            self._comm.rank, self._source, self._tag
        ):
            return True, self.wait()
        return False, None


def wait_all(requests: Sequence["Request"]) -> list[Any]:
    """Wait for every request; returns their values in order."""
    return [r.wait() for r in requests]


def iter_ranks(size: int) -> Iterable[int]:
    """Convenience: ``range(size)`` with validation (used in examples)."""
    if size < 1:
        raise InvalidRankError(f"size must be >= 1, got {size}")
    return range(size)
