"""SPMD executor: run one function on ``p`` simulated ranks.

Usage mirrors ``mpiexec -n p python script.py``::

    def main(comm, graph_parts):
        part = graph_parts[comm.rank]
        ...
        return comm.allreduce(local_value)

    result = run_spmd(8, main, graph_parts)
    result.values      # per-rank return values
    result.elapsed     # modelled execution time (max virtual clock)
    result.trace       # per-category time/message breakdown

Each rank runs in its own thread.  The machine has no real parallelism
requirement — ranks spend their lives exchanging small Python objects —
so thread scheduling only affects wall time, never the modelled time or
the results (the algorithms are deterministic given their seeds).

Failure semantics: the first exception on any rank aborts the world;
other ranks observe :class:`~repro.runtime.errors.RankAborted` at their
next communication call, and the executor re-raises a single
:class:`~repro.runtime.errors.RankFailedError` carrying every original
(non-secondary) failure.  (On ``size == 1`` the fast path lets the
exception propagate natively instead.)

Resilience hooks: ``fault_plan`` installs a deterministic fault-injection
plan (see :mod:`repro.resilience.faults`) consulted on every
communication operation; ``restore_from`` restarts the world from the
latest valid checkpoint manifest in a directory (see
:mod:`repro.resilience.checkpoint`) — each rank's virtual clock resumes
from its saved value and the restored per-rank state is exposed to the
SPMD program as ``comm.restored``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.events import emit_current
from .comm import Communicator, World
from .errors import RankAborted, RankFailedError
from .perfmodel import CORI_HASWELL, MachineModel
from .tracing import TraceReport


@dataclass
class SPMDResult:
    """Outcome of one :func:`run_spmd` call."""

    values: list[Any]
    clocks: list[float]
    trace: TraceReport
    machine: MachineModel
    size: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.size:
            self.size = len(self.values)

    @property
    def elapsed(self) -> float:
        """Modelled execution time: the latest rank's virtual clock."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def value(self) -> Any:
        """Rank 0's return value (convenient for replicated results)."""
        return self.values[0]


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel = CORI_HASWELL,
    timeout: float = 300.0,
    trace_events: bool = False,
    fault_plan: Any = None,
    restore_from: str | None = None,
    verify_schedule: bool | None = None,
    **kwargs: Any,
) -> SPMDResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks (the ``-n`` of ``mpiexec``).
    fn:
        The SPMD program.  Receives a :class:`Communicator` as its first
        argument; everything else is passed through unchanged, so
        rank-local data is usually selected via ``args[comm.rank]``.
    machine:
        Performance-model constants; defaults to the Cori Haswell preset.
    timeout:
        Per-blocking-operation timeout in real seconds; exceeding it is
        treated as a deadlock in the program under test.
    trace_events:
        Record per-rank virtual-time timelines, enabling
        ``result.trace.to_chrome_trace()`` (Perfetto-compatible export).
    fault_plan:
        Deterministic fault-injection plan (any object with
        ``on_op(rank, op_index, op_name)``; see
        :class:`repro.resilience.faults.FaultPlan`).
    restore_from:
        Checkpoint directory.  The world restarts from the latest valid
        manifest: each rank's shard is integrity-checked and loaded, its
        virtual clock resumes from the saved value, and the state is
        attached as ``comm.restored`` for the SPMD program to consume
        (e.g. ``distributed_louvain(..., resume=True)``).
    verify_schedule:
        Debug mode: cross-check every rank's rolling collective-schedule
        hash at each rendezvous so a divergent schedule fails at its
        first mismatched op (named by op index and rank) instead of
        wherever it happens to explode later.  Defaults to the
        ``REPRO_VERIFY_SCHEDULE`` environment variable.
    """
    world = World(size, machine, timeout=timeout, verify_schedule=verify_schedule)
    world.fault_plan = fault_plan
    comms: list[Communicator] = [world.communicator(r) for r in range(size)]
    if restore_from is not None:
        # Imported lazily: resilience sits above the runtime layer.
        from ..resilience.checkpoint import restore_world

        restore_world(comms, restore_from)
    if trace_events:
        for c in comms:
            c.trace.enable_events()
    values: list[Any] = [None] * size
    failures: dict[int, BaseException] = {}
    lock = threading.Lock()
    # Passive observability: when an event scope is installed (the
    # engine wraps jobs in repro.obs.events.scoped), bracket the run
    # with correlated records; a no-op otherwise.
    emit_current(
        "spmd_run_started",
        size=size,
        machine=machine.name,
        restored=restore_from is not None,
    )

    if size == 1:
        # Fast path: no threads needed, and failures propagate natively.
        values[0] = fn(comms[0], *args, **kwargs)
        emit_current("spmd_run_finished", size=1, max_clock=comms[0].clock)
        return SPMDResult(
            values=values,
            clocks=[comms[0].clock],
            trace=TraceReport.merge([comms[0].trace]),
            machine=machine,
        )

    def runner(rank: int) -> None:
        try:
            values[rank] = fn(comms[rank], *args, **kwargs)
        except RankAborted as exc:
            # Secondary failure: this rank was a victim, not the cause.
            with lock:
                failures.setdefault(rank, exc)
        except BaseException as exc:  # noqa: BLE001 - must not hang peers
            with lock:
                failures[rank] = exc
            world.abort(exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout * 2)
        if t.is_alive():
            world.abort(TimeoutError(f"thread {t.name} failed to finish"))
    for t in threads:
        t.join(timeout=5.0)

    if failures:
        primary = {
            r: e for r, e in failures.items() if not isinstance(e, RankAborted)
        }
        emit_current(
            "spmd_run_failed", size=size, failed_ranks=sorted(failures)
        )
        raise RankFailedError(primary or failures)

    emit_current(
        "spmd_run_finished",
        size=size,
        max_clock=max(c.clock for c in comms),
    )
    return SPMDResult(
        values=values,
        clocks=[c.clock for c in comms],
        trace=TraceReport.merge([c.trace for c in comms]),
        machine=machine,
    )
