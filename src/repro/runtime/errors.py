"""Error types raised by the simulated SPMD runtime.

The runtime executes ``p`` ranks as cooperating threads.  Failures on one
rank must not leave the remaining ranks blocked inside a collective or a
``recv``; the executor converts the first failure into a world-wide abort,
and every other rank observes :class:`RankAborted` at its next
communication call.
"""

from __future__ import annotations


class RuntimeSimError(Exception):
    """Base class for all simulated-runtime errors."""


class RankFailedError(RuntimeSimError):
    """Raised by the executor when one or more ranks raised an exception.

    Attributes
    ----------
    rank:
        The lowest-numbered rank that failed.
    causes:
        Mapping of rank -> exception for every failed rank.
    """

    def __init__(self, causes: dict[int, BaseException]):
        self.causes = dict(causes)
        self.rank = min(self.causes) if self.causes else -1
        first = self.causes.get(self.rank)
        super().__init__(
            f"{len(self.causes)} rank(s) failed; first failure on rank "
            f"{self.rank}: {first!r}"
        )


class RankAborted(RuntimeSimError):
    """Raised inside a rank when another rank has failed (world abort)."""


class CollectiveMismatchError(RuntimeSimError):
    """Raised when ranks disagree on which collective they are executing.

    Real MPI has undefined behaviour here; the simulator detects the bug
    and reports it deterministically instead.
    """


class CommTimeoutError(RuntimeSimError):
    """Raised when a blocking operation exceeds the configured timeout.

    A timeout in the simulator almost always indicates a deadlock in the
    SPMD program under test (e.g. mismatched send/recv), so the message
    carries enough context to locate it.
    """


class InvalidRankError(RuntimeSimError, ValueError):
    """Raised when a source/destination/root rank is out of range."""


class InjectedFault(RuntimeSimError):
    """Raised on a rank killed by a deterministic fault-injection plan.

    The resilience subsystem (:mod:`repro.resilience.faults`) schedules
    the kill; the communicator raises it at the victim's N-th
    communication operation.  The executor then treats it like any other
    rank failure: the world aborts, surviving ranks observe
    :class:`RankAborted`, and the caller receives a
    :class:`RankFailedError` whose ``causes`` carry this exception.
    """

    def __init__(self, rank: int, op_index: int, op_name: str):
        self.rank = rank
        self.op_index = op_index
        self.op_name = op_name
        super().__init__(
            f"injected fault: rank {rank} killed at communication "
            f"operation {op_index} ({op_name})"
        )
