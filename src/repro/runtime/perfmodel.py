"""Analytic performance model for the simulated SPMD runtime.

The paper reports wall-clock times on NERSC Cori (Cray XC40, dual-socket
Haswell nodes, Aries dragonfly interconnect).  This environment has one
CPU core and no interconnect, so times are produced by a LogGP-style
analytic model instead of measured:

* every rank carries a *virtual clock* (seconds);
* local computation charges ``ops / effective_rate`` where ``ops`` counts
  edge/vertex operations and the effective rate folds in the modelled
  OpenMP thread count (the paper runs MPI+OpenMP hybrid);
* a point-to-point message of ``n`` bytes costs ``alpha + beta * n``;
* collectives use the textbook logarithmic-stage formulas.

The model's purpose is to reproduce the *shape* of the paper's results —
which heuristic wins on which graph structure, where strong scaling
flattens, how the comm/compute balance shifts with ``p`` — not the
absolute Cori seconds.  All constants live in :class:`MachineModel` so
benchmarks can state exactly what machine is being modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class OpenMPModel:
    """Amdahl-style model for intra-rank (OpenMP) thread scaling.

    ``speedup(t) = 1 / (serial_fraction + (1 - serial_fraction) / t)``
    optionally degraded by a per-thread contention term, which captures
    the sub-linear scaling both codes show in Table III of the paper.
    """

    serial_fraction: float = 0.04
    #: Extra cost per additional thread (memory-bandwidth contention).
    contention: float = 0.002
    #: Physical cores available; threads beyond this are hyperthreads
    #: and contribute at :attr:`hyperthread_yield` of a core.
    physical_cores: int = 32
    hyperthread_yield: float = 0.3

    def speedup(self, threads: int) -> float:
        """Modelled speedup of ``threads`` threads over one thread."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        eff_threads = float(min(threads, self.physical_cores))
        if threads > self.physical_cores:
            eff_threads += (threads - self.physical_cores) * self.hyperthread_yield
        amdahl = 1.0 / (
            self.serial_fraction + (1.0 - self.serial_fraction) / eff_threads
        )
        return amdahl / (1.0 + self.contention * (eff_threads - 1.0))


@dataclass(frozen=True)
class MachineModel:
    """Constants describing the modelled machine.

    Parameters are calibrated to be *plausible for Cori Haswell + Aries*;
    the benchmark harness treats them as the single source of truth and
    prints them alongside results.
    """

    name: str = "cori-haswell"
    #: Point-to-point message latency, seconds.
    alpha: float = 2.0e-6
    #: Per-byte transfer cost, seconds (≈ 1/8 GB/s effective).
    beta: float = 1.25e-10
    #: Local edge-operations per second for one thread of the
    #: *distributed* implementation (C++-calibrated, not Python speed).
    compute_rate: float = 2.0e8
    #: Relative per-op overhead of the distributed implementation over
    #: the shared-memory one at equal thread count (Table III shows the
    #: distributed code ~5x slower at 4 threads on one node).
    distributed_overhead: float = 1.0
    #: Effective file-read bandwidth per rank, bytes/second.  Models
    #: MPI-IO collective-buffered reads from Lustre, which stream far
    #: faster than independent POSIX reads; calibrated so ingest is the
    #: 1-2% of runtime the paper reports (§V).
    io_rate: float = 5.0e9
    #: OpenMP threads each rank runs with (paper uses 2 or 4).
    threads_per_rank: int = 4
    #: Ranks packed per node (Cori: 32 cores / threads_per_rank).  Used
    #: by the hierarchical latency model: messages between ranks on the
    #: same node go through shared memory, not the Aries network.
    ranks_per_node: int = 8
    #: Intra-node latency as a fraction of the network alpha.
    intra_node_alpha_fraction: float = 0.25
    omp: OpenMPModel = field(default_factory=OpenMPModel)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    def effective_compute_rate(self) -> float:
        """Edge-operations per second for one rank (all its threads)."""
        base = self.compute_rate / self.distributed_overhead
        return base * self.omp.speedup(self.threads_per_rank)

    def compute_cost(self, ops: float) -> float:
        """Seconds of local compute for ``ops`` edge/vertex operations."""
        if ops < 0:
            raise ValueError(f"ops must be >= 0, got {ops}")
        return ops / self.effective_compute_rate()

    def io_cost(self, nbytes: float) -> float:
        """Seconds to read/write ``nbytes`` from the parallel filesystem."""
        return nbytes / self.io_rate

    # ------------------------------------------------------------------
    # Communication costs
    # ------------------------------------------------------------------
    def p2p_cost(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` under contiguous rank placement."""
        return rank // max(self.ranks_per_node, 1)

    def p2p_alpha(self, src: int, dst: int) -> float:
        """Latency between two ranks: shared memory when co-located."""
        if self.node_of(src) == self.node_of(dst):
            return self.alpha * self.intra_node_alpha_fraction
        return self.alpha

    def barrier_cost(self, p: int) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` latency-bound rounds."""
        return self.alpha * _log2_stages(p)

    def bcast_cost(self, nbytes: int, p: int) -> float:
        """Binomial-tree broadcast."""
        return _log2_stages(p) * (self.alpha + self.beta * nbytes)

    def reduce_cost(self, nbytes: int, p: int) -> float:
        """Binomial-tree reduction (same stage structure as bcast)."""
        return _log2_stages(p) * (self.alpha + self.beta * nbytes)

    def allreduce_cost(self, nbytes: int, p: int) -> float:
        """Recursive-doubling allreduce: reduce + bcast stage structure."""
        return 2.0 * _log2_stages(p) * (self.alpha + self.beta * nbytes)

    def allgather_cost(self, nbytes_per_rank: int, p: int) -> float:
        """Recursive-doubling allgather; volume doubles each stage."""
        stages = _log2_stages(p)
        return stages * self.alpha + self.beta * nbytes_per_rank * max(p - 1, 0)

    def gather_cost(self, nbytes_per_rank: int, p: int) -> float:
        """Binomial gather to a root."""
        stages = _log2_stages(p)
        return stages * self.alpha + self.beta * nbytes_per_rank * max(p - 1, 0)

    def alltoallv_cost(
        self,
        sent_bytes: int,
        recv_bytes: int,
        p: int,
        rank: int | None = None,
    ) -> float:
        """Pairwise-exchange alltoallv as seen by one rank.

        One rank exchanges with up to ``p - 1`` partners; it pays latency
        per partner plus bandwidth for everything it sends and receives.
        When ``rank`` is given, partners on the same node (contiguous
        placement, :attr:`ranks_per_node`) cost the cheaper intra-node
        latency.
        """
        partners = max(p - 1, 0)
        if rank is None or self.ranks_per_node <= 1:
            latency = partners * self.alpha
        else:
            node = self.node_of(rank)
            node_lo = node * self.ranks_per_node
            node_hi = min(node_lo + self.ranks_per_node, p)
            on_node = max(node_hi - node_lo - 1, 0)
            off_node = partners - on_node
            latency = self.alpha * (
                on_node * self.intra_node_alpha_fraction + off_node
            )
        return latency + self.beta * (sent_bytes + recv_bytes)

    def neighbor_alltoallv_cost(
        self, sent_bytes: int, recv_bytes: int, degree: int
    ) -> float:
        """MPI-3 neighbourhood alltoallv: latency scales with the actual
        neighbour count instead of ``p - 1`` (paper §VI future work)."""
        return degree * self.alpha + self.beta * (sent_bytes + recv_bytes)

    def exchange_leg_cost(
        self,
        sent_bytes: int,
        recv_bytes: int,
        p: int,
        rank: int | None = None,
        degree: int | None = None,
    ) -> float:
        """One leg of a fused request/reply exchange as seen by one rank.

        The owner-push community protocol models its round trip as two
        back-to-back personalized-exchange legs (request/deltas out,
        replies/pushes back); each leg is charged like a standalone
        alltoallv — dense pairwise exchange by default, or the
        degree-scaled neighbourhood variant when ``degree`` is given.
        Nothing is discounted for the fusion: the saving the push
        protocol realises comes from sending fewer legs with smaller
        payloads, not from a cheaper primitive.
        """
        if degree is not None:
            return self.neighbor_alltoallv_cost(sent_bytes, recv_bytes, degree)
        return self.alltoallv_cost(sent_bytes, recv_bytes, p, rank=rank)

    # ------------------------------------------------------------------
    def with_threads(self, threads: int) -> "MachineModel":
        """A copy of this model with a different OpenMP thread count."""
        return replace(self, threads_per_rank=threads)

    def scaled(self, edge_factor: float) -> "MachineModel":
        """Model for a scaled-down stand-in of a larger input.

        When a synthetic graph stands in for a real input ``edge_factor``
        times its size, each synthetic edge represents that many real
        edges: per-op compute cost and per-byte transfer cost scale up by
        the factor (so the compute/bandwidth-to-latency balance matches
        the full-size run), while message latency is a property of the
        network and stays fixed.  This is what lets strong-scaling
        *shape* (where curves flatten) survive the down-scaling — see
        DESIGN.md §2.
        """
        if edge_factor <= 0:
            raise ValueError(f"edge_factor must be > 0, got {edge_factor}")
        return replace(
            self,
            name=f"{self.name}-x{edge_factor:g}",
            compute_rate=self.compute_rate / edge_factor,
            beta=self.beta * edge_factor,
            io_rate=self.io_rate / edge_factor,
        )

    def calibrated(self, factor: float) -> "MachineModel":
        """Uniformly rescale every modelled cost by ``factor``.

        The drift monitor's calibration hook (ROADMAP item 3): when
        measured job seconds run ``factor`` times the model's
        predictions, scaling latencies and per-byte costs up — and
        compute/IO rates down — by the same factor makes subsequent
        predictions track measurements without refitting individual
        constants.  ``factor > 1`` means the machine is slower than
        modelled.  Calibration composes: the name keeps the base preset
        with the most recent factor so tuning records stay attributable.
        """
        if factor <= 0 or not math.isfinite(factor):
            raise ValueError(f"calibration factor must be > 0, got {factor}")
        base = self.name.split("~", 1)[0]
        return replace(
            self,
            name=f"{base}~cal{factor:.3g}",
            alpha=self.alpha * factor,
            beta=self.beta * factor,
            compute_rate=self.compute_rate / factor,
            io_rate=self.io_rate / factor,
        )


def _log2_stages(p: int) -> int:
    """Number of stages of a log2 algorithm over ``p`` ranks."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return int(math.ceil(math.log2(p))) if p > 1 else 0


#: Preset modelling a Cori Haswell node + Aries interconnect running the
#: distributed (MPI+OpenMP) implementation.  ``distributed_overhead`` and
#: the OpenMP curve are fit so a single-node run reproduces the relative
#: behaviour of Table III.
CORI_HASWELL = MachineModel()

#: Preset for the shared-memory comparator (Grappolo [22]): no message
#: passing overheads, lower per-op cost, but a worse thread-scaling curve
#: (Table III shows it scaling ~2x from 4 to 64 threads).
CORI_HASWELL_SHARED = MachineModel(
    name="cori-haswell-shared",
    # Calibrated against Table III: the shared-memory code is ~5x faster
    # per-op at 4 threads but scales only ~2.2x from 4 to 64 threads
    # (the distributed code scales ~4.7x over the same range).
    distributed_overhead=0.16,
    omp=OpenMPModel(serial_fraction=0.135, contention=0.0),
)

#: A deliberately slow-network preset for ablations (comm-bound regime).
SLOW_NETWORK = MachineModel(name="slow-network", alpha=5.0e-5, beta=2.0e-9)

#: Zero-cost model: virtual clocks stay near zero; used by unit tests
#: that only care about algorithmic behaviour.
FREE = MachineModel(
    name="free",
    alpha=0.0,
    beta=0.0,
    compute_rate=float("inf"),
    io_rate=float("inf"),
    threads_per_rank=1,
)

PRESETS: dict[str, MachineModel] = {
    m.name: m for m in (CORI_HASWELL, CORI_HASWELL_SHARED, SLOW_NETWORK, FREE)
}
