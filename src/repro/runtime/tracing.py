"""Per-rank tracing: message counters and per-category virtual timers.

Section V-A of the paper profiles the Baseline run with HPCToolkit and
reports where time goes (≈34% community-info communication, ≈40% in the
modularity allreduce, ≈22% local compute).  The tracer reproduces that
breakdown for the simulator: every charge to a rank's virtual clock is
tagged with a category, and :class:`TraceReport` aggregates across ranks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

#: Canonical categories used by the library.  Free-form strings are also
#: accepted, but sticking to these keeps reports comparable.
CATEGORIES = (
    "compute",          # ΔQ sweeps and other local work
    "ghost_comm",       # ghost vertex coordinate/community exchange
    "community_comm",   # community update exchange to owners
    "allreduce",        # global modularity / counters reduction
    "rebuild",          # distributed graph reconstruction
    "partition",        # community-aware repartitioning at phase bounds
    "io",               # input reading
    "checkpoint",       # resilience: checkpoint save/load traffic and I/O
    "service",          # detection service: engine-side overhead per job
    "tune",             # autotuner: modelled seconds spent on search trials
    "serving",          # multi-tenant tier: routing, churn application
    "other",
)


@dataclass(frozen=True)
class TraceEvent:
    """One virtual-time interval on one rank's timeline."""

    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RankTrace:
    """Virtual-time and message accounting for a single rank."""

    rank: int
    seconds: Counter = field(default_factory=Counter)
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    collectives: Counter = field(default_factory=Counter)
    #: Per-interval timeline, populated only when event recording is on.
    events: list[TraceEvent] | None = None

    def enable_events(self) -> None:
        if self.events is None:
            self.events = []

    def charge(self, category: str, dt: float, at: float | None = None) -> None:
        """Attribute ``dt`` virtual seconds to ``category``.

        ``at`` is the interval's start on the rank's virtual clock; when
        given and event recording is enabled, the interval lands on the
        timeline too.
        """
        if dt < 0:
            raise ValueError(f"negative charge {dt} for {category!r}")
        self.seconds[category] += dt
        if self.events is not None and at is not None and dt > 0:
            self.events.append(
                TraceEvent(category=category, start=at, end=at + dt)
            )

    def record_send(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def record_recv(self, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes

    def record_collective(self, name: str) -> None:
        self.collectives[name] += 1

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))


@dataclass
class TraceReport:
    """Aggregate view over all ranks of a run."""

    ranks: list[RankTrace]

    @classmethod
    def merge(cls, traces: Iterable[RankTrace]) -> "TraceReport":
        return cls(ranks=sorted(traces, key=lambda t: t.rank))

    @property
    def size(self) -> int:
        return len(self.ranks)

    def seconds_by_category(self) -> dict[str, float]:
        """Total virtual seconds per category, summed over ranks."""
        out: Counter = Counter()
        for t in self.ranks:
            out.update(t.seconds)
        return dict(out)

    def fraction_by_category(self) -> dict[str, float]:
        """Share of total virtual time per category (sums to 1.0)."""
        totals = self.seconds_by_category()
        grand = sum(totals.values())
        if grand <= 0.0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}

    @property
    def total_messages(self) -> int:
        return sum(t.messages_sent for t in self.ranks)

    @property
    def total_bytes(self) -> int:
        return sum(t.bytes_sent for t in self.ranks)

    def collective_counts(self) -> dict[str, int]:
        out: Counter = Counter()
        for t in self.ranks:
            out.update(t.collectives)
        return dict(out)

    def to_chrome_trace(self, time_scale: float = 1e6) -> dict:
        """Export recorded timelines as a Chrome-trace (chrome://tracing,
        Perfetto) JSON object.

        Each rank becomes a thread; each recorded interval a complete
        ('X') event.  Metadata ('M') events name the process and each
        rank's thread so Perfetto labels the timelines instead of
        showing bare ids.  ``time_scale`` converts virtual seconds to
        the microseconds the format expects.  Requires the run to have
        been executed with event recording enabled
        (``run_spmd(..., trace_events=True)``).
        """
        events = []
        meta: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro SPMD world"},
            }
        ]
        for t in self.ranks:
            if not t.events:
                continue
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": t.rank,
                    "args": {"name": f"rank {t.rank}"},
                }
            )
            for ev in t.events:
                events.append(
                    {
                        "name": ev.category,
                        "cat": ev.category,
                        "ph": "X",
                        "ts": ev.start * time_scale,
                        "dur": ev.duration * time_scale,
                        "pid": 0,
                        "tid": t.rank,
                    }
                )
        if not events:
            raise ValueError(
                "no timeline events recorded; run with trace_events=True"
            )
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro simulated SPMD runtime"},
        }

    def format(self) -> str:
        """Human-readable breakdown, one line per category."""
        fracs = self.fraction_by_category()
        secs = self.seconds_by_category()
        lines = [f"trace over {self.size} rank(s):"]
        for cat, frac in sorted(fracs.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {cat:<16} {secs[cat]:>12.6f}s  {frac:6.1%}")
        lines.append(
            f"  messages={self.total_messages}  bytes={self.total_bytes}"
        )
        return "\n".join(lines)
