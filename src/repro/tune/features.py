"""Cheap graph featurizer feeding the autotuner's cost model and DB.

The best Louvain variant and parameter setting varies per graph (the
paper's Tables II-VII show different winners on different inputs), so
the tuner characterises a graph by a handful of *cheap* structural
features — one CSR pass, no detection run — and uses them two ways:

* the analytic cost model (:mod:`repro.tune.costmodel`) predicts a
  candidate configuration's modelled runtime from them;
* the tuning database (:mod:`repro.tune.db`) falls back to the
  nearest previously-tuned graph in feature space when an unseen
  fingerprint arrives.

Features are deterministic functions of the CSR arrays, so the same
graph always featurizes identically regardless of process or platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.partition import even_edge, owner_of

#: Rank counts at which the ghost fraction is probed.  These match the
#: default search space's rank axis; other counts are served by the
#: nearest probed point (``p = 1`` is exactly zero by construction).
DEFAULT_GHOST_PROBES: tuple[int, ...] = (2, 4, 8)

#: Version stamp stored with persisted features; bump on incompatible
#: changes so stale DB entries are recognisably old.
#: v2 added the streaming-churn axes (default 0.0, so v1 records load
#: unchanged as "static graph, no churn observed").
#: v3 added the achieved-ghost-fraction feedback map (default empty, so
#: v1/v2 records load unchanged as "no repartitioned run observed").
#: v4 added the degree-one vertex fraction (default 0.0, so older
#: records load unchanged as "no leaves": vertex following then gets no
#: modelled discount, which is the conservative estimate).
FEATURES_VERSION = 4


@dataclass(frozen=True)
class GraphFeatures:
    """Structural summary of one input graph.

    ``ghost_fraction[p]`` is the fraction of stored adjacency entries
    whose endpoint lives on a *different* rank under the paper's
    ``even_edge`` 1-D partition at ``p`` ranks — the direct driver of
    ghost- and community-communication volume (§IV-A).
    """

    num_vertices: int
    num_edges: int
    mean_degree: float
    #: Coefficient of variation of the unweighted degree distribution.
    degree_cv: float
    #: Third standardized moment (skewness) of the degree distribution;
    #: power-law webs score high, meshes near zero.
    degree_skew: float
    #: Largest degree as a fraction of ``n`` (hub concentration).
    max_degree_fraction: float
    #: p -> cross-rank adjacency-entry fraction under even_edge.
    ghost_fraction: Mapping[int, float]
    #: Streaming workloads only: net churned edges per accumulation
    #: window as a fraction of ``m`` (0.0 for static graphs).  A plan
    #: tuned under heavy churn should not transfer to a static graph of
    #: the same shape, and vice versa — these axes keep them apart in
    #: nearest-neighbour space.
    churn_edge_fraction: float = 0.0
    #: Streaming workloads only: vertices incident to churn per window
    #: as a fraction of ``n`` — the warm-restart reset footprint.
    churn_touched_fraction: float = 0.0
    #: Fraction of vertices with exactly one stored adjacency entry —
    #: the population Grappolo's vertex-following heuristic merges away
    #: before phase 1, hence the direct driver of its modelled payoff.
    degree_one_fraction: float = 0.0
    #: Measured feedback from ``repartition="community"`` runs:
    #: p -> mean *achieved* cross-rank entry fraction of the coarse
    #: phases (phases >= 1).  Empty until a repartitioned run reports
    #: back; the cost model falls back to a fixed discount without it.
    achieved_ghost_fraction: Mapping[int, float] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def ghost_fraction_at(self, nranks: int) -> float:
        """Ghost fraction at ``nranks``, served from the nearest probe.

        ``p = 1`` is exactly 0 (nothing is remote).  Other counts use
        the probe with the closest ``log2`` distance, which is accurate
        for the power-of-two rank axis the search space uses.
        """
        if nranks <= 1:
            return 0.0
        probes = sorted(self.ghost_fraction)
        if not probes:
            return 0.0
        if nranks in self.ghost_fraction:
            return float(self.ghost_fraction[nranks])
        best = min(probes, key=lambda p: abs(math.log2(p) - math.log2(nranks)))
        return float(self.ghost_fraction[best])

    def achieved_ghost_at(self, nranks: int) -> float | None:
        """Measured coarse-phase ghost fraction at ``nranks``, if known.

        Served from the nearest probed rank count (``log2`` distance,
        like :meth:`ghost_fraction_at`); ``None`` when no repartitioned
        run has reported feedback yet.
        """
        if nranks <= 1:
            return 0.0
        probes = sorted(self.achieved_ghost_fraction)
        if not probes:
            return None
        if nranks in self.achieved_ghost_fraction:
            return float(self.achieved_ghost_fraction[nranks])
        best = min(probes, key=lambda p: abs(math.log2(p) - math.log2(nranks)))
        return float(self.achieved_ghost_fraction[best])

    def with_achieved_ghost(
        self, nranks: int, fraction: float
    ) -> "GraphFeatures":
        """Copy with one measured coarse-phase ghost fraction merged in.

        The search loop calls this after a ``repartition="community"``
        trial so the record persisted to the tuning DB carries the
        achieved fraction — later cost-model queries on this graph (or
        its nearest neighbours) then use measurement over guesswork.
        """
        import dataclasses

        merged = dict(self.achieved_ghost_fraction)
        merged[int(nranks)] = max(float(fraction), 0.0)
        return dataclasses.replace(self, achieved_ghost_fraction=merged)

    def vector(self) -> tuple[float, ...]:
        """Normalised feature vector for nearest-neighbour distance.

        Size features are log-scaled (a 10x bigger graph is "one unit
        away", not a thousand), shape features are squashed into [0, 1]
        ranges so no single axis dominates the L2 distance.
        """
        return (
            math.log10(self.num_vertices + 1.0),
            math.log10(self.num_edges + 1.0),
            math.log10(self.mean_degree + 1.0),
            min(self.degree_cv, 4.0) / 4.0,
            math.atan(self.degree_skew) / math.pi + 0.5,
            self.max_degree_fraction,
            self.ghost_fraction_at(max(DEFAULT_GHOST_PROBES)),
            min(self.churn_edge_fraction, 1.0),
            min(self.churn_touched_fraction, 1.0),
            min(self.degree_one_fraction, 1.0),
            # Achieved coarse-phase fraction under community repartition;
            # falls back to the static estimate so unmeasured records
            # (this axis then duplicates the one above) stay comparable.
            (
                self.achieved_ghost_at(max(DEFAULT_GHOST_PROBES))
                if self.achieved_ghost_fraction
                else self.ghost_fraction_at(max(DEFAULT_GHOST_PROBES))
            ),
        )

    def with_churn(
        self, *, edge_fraction: float, touched_fraction: float
    ) -> "GraphFeatures":
        """Copy with the streaming-churn axes filled in.

        The serving tier calls this with the per-window net-churn rates
        observed on a tenant's graph, so the tuning DB can distinguish
        "this structure under churn" from "this structure, static".
        """
        import dataclasses

        return dataclasses.replace(
            self,
            churn_edge_fraction=max(float(edge_fraction), 0.0),
            churn_touched_fraction=max(float(touched_fraction), 0.0),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": FEATURES_VERSION,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "mean_degree": self.mean_degree,
            "degree_cv": self.degree_cv,
            "degree_skew": self.degree_skew,
            "max_degree_fraction": self.max_degree_fraction,
            # JSON object keys are strings; restored in from_dict.
            "ghost_fraction": {
                str(p): float(f) for p, f in sorted(self.ghost_fraction.items())
            },
            "churn_edge_fraction": self.churn_edge_fraction,
            "churn_touched_fraction": self.churn_touched_fraction,
            "degree_one_fraction": self.degree_one_fraction,
            "achieved_ghost_fraction": {
                str(p): float(f)
                for p, f in sorted(self.achieved_ghost_fraction.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphFeatures":
        return cls(
            num_vertices=int(data["num_vertices"]),
            num_edges=int(data["num_edges"]),
            mean_degree=float(data["mean_degree"]),
            degree_cv=float(data["degree_cv"]),
            degree_skew=float(data["degree_skew"]),
            max_degree_fraction=float(data["max_degree_fraction"]),
            ghost_fraction={
                int(p): float(f)
                for p, f in dict(data["ghost_fraction"]).items()
            },
            # v1 records carry no churn axes: load as static (0.0).
            churn_edge_fraction=float(data.get("churn_edge_fraction", 0.0)),
            churn_touched_fraction=float(
                data.get("churn_touched_fraction", 0.0)
            ),
            # v1-v3 records carry no leaf census: load as "no leaves".
            degree_one_fraction=float(data.get("degree_one_fraction", 0.0)),
            # v1/v2 records carry no feedback map: load as unmeasured.
            achieved_ghost_fraction={
                int(p): float(f)
                for p, f in dict(
                    data.get("achieved_ghost_fraction", {})
                ).items()
            },
        )

    def format(self) -> str:
        ghosts = " ".join(
            f"p{p}={f:.2f}" for p, f in sorted(self.ghost_fraction.items())
        )
        if self.achieved_ghost_fraction:
            ghosts += " | achieved " + " ".join(
                f"p{p}={f:.2f}"
                for p, f in sorted(self.achieved_ghost_fraction.items())
            )
        churn = (
            f" churn[e={self.churn_edge_fraction:.3f} "
            f"v={self.churn_touched_fraction:.3f}]"
            if self.churn_edge_fraction or self.churn_touched_fraction
            else ""
        )
        return (
            f"n={self.num_vertices} m={self.num_edges} "
            f"deg[mean={self.mean_degree:.2f} cv={self.degree_cv:.2f} "
            f"skew={self.degree_skew:.2f} "
            f"leaf={self.degree_one_fraction:.2f}] ghost[{ghosts}]{churn}"
        )


def compute_features(
    g: CSRGraph, ghost_probes: tuple[int, ...] = DEFAULT_GHOST_PROBES
) -> GraphFeatures:
    """Featurize ``g`` in one CSR pass plus one partition per probe."""
    counts = g.edge_counts().astype(np.float64)
    n = g.num_vertices
    mean = float(counts.mean()) if n else 0.0
    std = float(counts.std()) if n else 0.0
    if n and std > 0.0:
        skew = float(np.mean(((counts - mean) / std) ** 3))
    else:
        skew = 0.0
    return GraphFeatures(
        num_vertices=n,
        num_edges=g.num_edges,
        mean_degree=mean,
        degree_cv=(std / mean) if mean > 0 else 0.0,
        degree_skew=skew,
        max_degree_fraction=(float(counts.max()) / n) if n else 0.0,
        degree_one_fraction=(
            float(np.count_nonzero(counts == 1) / n) if n else 0.0
        ),
        ghost_fraction={
            p: _ghost_fraction(g, p) for p in ghost_probes if p <= max(n, 1)
        },
    )


def _ghost_fraction(g: CSRGraph, nranks: int) -> float:
    """Cross-rank fraction of stored adjacency entries at ``nranks``."""
    if nranks <= 1 or g.nnz == 0:
        return 0.0
    offsets = even_edge(g.edge_counts(), nranks)
    rows = np.repeat(
        np.arange(g.num_vertices, dtype=np.int64), np.diff(g.index)
    )
    row_owner = owner_of(offsets, rows)
    nbr_owner = owner_of(offsets, g.edges)
    return float(np.count_nonzero(row_owner != nbr_owner) / g.nnz)


def feature_distance(a: GraphFeatures, b: GraphFeatures) -> float:
    """L2 distance between two graphs' normalised feature vectors."""
    va, vb = a.vector(), b.vector()
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(va, vb)))
