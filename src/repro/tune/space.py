"""Declarative search space over Louvain configs and rank counts.

The paper hand-picks its heuristic parameters — ET decay ``alpha``
(Table I evaluates only 0.25/0.75), the Fig. 2 threshold cycle, ETC's
90% exit fraction — and evaluates each variant at fixed process counts.
The tuner instead enumerates a *declarative* space over those axes (plus
the transport knobs added since) and lets the cost model and measured
trials pick.

Every candidate is materialised as a real :class:`LouvainConfig`, so
validity constraints are exactly the config's own ``__post_init__``
validation — a space can never emit a setting the library would reject.
Axes that do not apply to a variant (``alpha`` for Baseline, the cycle
for non-TC variants, ...) are pinned to their defaults so the space
stays free of aliased duplicates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Iterator

from ..core.config import DEFAULT_THRESHOLD_CYCLE, LouvainConfig, Variant

#: Named threshold-cycling schedules (Fig. 2 variations).  "paper" is
#: the published schedule; "aggressive" spends more phases at coarse
#: thresholds (faster, slightly lower quality); "gentle" descends
#: quickly to fine thresholds (slower, higher quality).
THRESHOLD_CYCLES: dict[str, tuple[tuple[float, int], ...]] = {
    "paper": DEFAULT_THRESHOLD_CYCLE,
    "aggressive": ((1e-2, 3), (1e-3, 4), (1e-5, 2), (1e-6, 2)),
    "gentle": ((1e-4, 3), (1e-5, 3), (1e-6, 4)),
}


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a full config plus a rank count."""

    config: LouvainConfig
    ranks: int

    def key(self) -> str:
        """Stable short id: content digest over (config, ranks).

        Uses the full ``to_dict`` serialization (not ``cache_key``)
        because transport knobs *do* change modelled runtime even
        though they are outcome-identical.
        """
        blob = json.dumps(
            {"config": self.config.to_dict(), "ranks": self.ranks},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        cfg = self.config
        extras = []
        if cfg.threshold_cycle != DEFAULT_THRESHOLD_CYCLE:
            extras.append("cycle=custom")
        if cfg.variant.uses_inactive_exit and cfg.etc_exit_fraction != 0.90:
            extras.append(f"exit={cfg.etc_exit_fraction:g}")
        if cfg.community_push_updates:
            extras.append("push")
        if cfg.ghost_delta_updates:
            extras.append("delta")
        if cfg.use_neighbor_collectives:
            extras.append("nbr")
        if cfg.use_coloring:
            extras.append("coloring")
        if cfg.vertex_following:
            extras.append("vf")
        if cfg.refine != "none":
            extras.append(f"refine={cfg.refine}")
        if cfg.repartition != "none":
            extras.append(f"repart={cfg.repartition}")
        tail = (" " + " ".join(extras)) if extras else ""
        return f"{cfg.label()} x{self.ranks}{tail}"

    def to_dict(self) -> dict[str, Any]:
        return {"config": self.config.to_dict(), "ranks": self.ranks}


@dataclass(frozen=True)
class SearchSpace:
    """Axes of the tuning search, with per-variant applicability.

    Enumeration (:meth:`candidates`) is deterministic: axes iterate in
    declaration order and duplicates (settings that alias because an
    axis does not apply to the variant) are dropped on first sight.
    """

    variants: tuple[str, ...] = (
        "baseline",
        "threshold-cycling",
        "et",
        "etc",
        "et+tc",
    )
    #: ET decay values (paper's Table I evaluates 0.25/0.75 only).
    alphas: tuple[float, ...] = (0.25, 0.5, 0.75)
    #: ETC phase-exit fractions (the paper fixes 0.90).
    etc_exit_fractions: tuple[float, ...] = (0.85, 0.90, 0.95)
    #: Named cycling schedules from :data:`THRESHOLD_CYCLES`.
    threshold_cycles: tuple[str, ...] = ("paper", "aggressive")
    #: Simulated world sizes to plan over.
    rank_counts: tuple[int, ...] = (1, 2, 4, 8)
    #: Transport knobs (bit-identical results; runtime only).
    community_push: tuple[bool, ...] = (False, True)
    ghost_delta: tuple[bool, ...] = (False, True)
    neighbor_collectives: tuple[bool, ...] = (False,)
    #: Phase-boundary layouts (outcome-identical for the deterministic
    #: variants; runtime differs via the coarse ghost fraction).
    repartitions: tuple[str, ...] = ("none", "community")
    #: Grappolo heuristics and Leiden refinement (quality/speed axes —
    #: these change the detection *outcome*, so the Pareto frontier is
    #: where their trade-offs surface).  The resolution parameter is
    #: deliberately *not* an axis: it is pinned per-request through
    #: ``base`` (a zoom level is a caller choice, not a tunable).
    colorings: tuple[bool, ...] = (False, True)
    vertex_following: tuple[bool, ...] = (False, True)
    refines: tuple[str, ...] = ("none", "leiden")
    #: Base config every candidate derives from (tau, caps, seed, ...).
    base: LouvainConfig = field(default_factory=LouvainConfig)

    def __post_init__(self) -> None:
        if not self.variants or not self.rank_counts:
            raise ValueError("variants and rank_counts must be non-empty")
        for name in self.threshold_cycles:
            if name not in THRESHOLD_CYCLES:
                raise ValueError(
                    f"unknown threshold cycle {name!r}; "
                    f"known: {sorted(THRESHOLD_CYCLES)}"
                )
        for r in self.rank_counts:
            if r < 1:
                raise ValueError(f"rank counts must be >= 1, got {r}")

    # ------------------------------------------------------------------
    def candidates(self, seed: int | None = None) -> list[Candidate]:
        """Enumerate every valid, de-duplicated candidate.

        ``seed`` (when given) is stamped onto every config so a whole
        search is reproducible from one number.  Axes that do not apply
        to a variant are pinned to the base config's value; settings
        the config validation rejects are skipped (the space reuses
        :class:`LouvainConfig` as its constraint oracle).
        """
        seen: set[str] = set()
        out: list[Candidate] = []
        for cand in self._enumerate(seed):
            k = cand.key()
            if k not in seen:
                seen.add(k)
                out.append(cand)
        return out

    def _enumerate(self, seed: int | None) -> Iterator[Candidate]:
        base = self.base if seed is None else replace(self.base, seed=seed)
        for variant_name in self.variants:
            variant = Variant(variant_name)
            alphas = self.alphas if variant.uses_early_termination else (base.alpha,)
            exits = (
                self.etc_exit_fractions
                if variant.uses_inactive_exit
                else (base.etc_exit_fraction,)
            )
            cycles = (
                self.threshold_cycles
                if variant.uses_threshold_cycling
                else ("paper",)
            )
            for alpha in alphas:
                for exit_fraction in exits:
                    for cycle_name in cycles:
                        for push in self.community_push:
                            for delta in self.ghost_delta:
                                for nbr in self.neighbor_collectives:
                                    for ranks in self.rank_counts:
                                        # Repartitioning is a no-op on a
                                        # single rank: pin it there so the
                                        # space stays alias-free.
                                        reparts = (
                                            self.repartitions
                                            if ranks > 1
                                            else (base.repartition,)
                                        )
                                        heuristics = product(
                                            reparts,
                                            self.colorings,
                                            self.vertex_following,
                                            self.refines,
                                        )
                                        for (
                                            repart,
                                            coloring,
                                            vf,
                                            refine,
                                        ) in heuristics:
                                            try:
                                                config = replace(
                                                    base,
                                                    variant=variant,
                                                    alpha=alpha,
                                                    etc_exit_fraction=exit_fraction,
                                                    threshold_cycle=THRESHOLD_CYCLES[
                                                        cycle_name
                                                    ],
                                                    community_push_updates=push,
                                                    ghost_delta_updates=delta,
                                                    use_neighbor_collectives=nbr,
                                                    repartition=repart,
                                                    use_coloring=coloring,
                                                    vertex_following=vf,
                                                    refine=refine,
                                                )
                                            except ValueError:
                                                continue  # constraint oracle said no
                                            yield Candidate(
                                                config=config, ranks=ranks
                                            )

    def size(self) -> int:
        return len(self.candidates())


def default_space(
    max_ranks: int = 8, base: LouvainConfig | None = None
) -> SearchSpace:
    """The stock space, with the rank axis capped at ``max_ranks``.

    Rank counts are the powers of two up to the cap — matching both the
    paper's process-count sweeps and the ghost-fraction probe points of
    the featurizer.
    """
    if max_ranks < 1:
        raise ValueError(f"max_ranks must be >= 1, got {max_ranks}")
    ranks = []
    p = 1
    while p <= max_ranks:
        ranks.append(p)
        p *= 2
    kwargs: dict[str, Any] = {"rank_counts": tuple(ranks)}
    if base is not None:
        kwargs["base"] = base
    return SearchSpace(**kwargs)
