"""Autotuning: cost-model-guided config planning with a persistent DB.

The paper hand-picks its heuristic parameters (ET ``alpha``, the Fig. 2
threshold cycle, ETC's 90% exit) and the best setting varies per graph
(Tables II-VII); this subsystem picks them *per workload*:

1. :mod:`~repro.tune.features` featurizes the graph in one CSR pass;
2. :mod:`~repro.tune.space` declares the search space over variant,
   heuristic parameters, transport knobs and rank count, reusing
   :class:`~repro.core.config.LouvainConfig` validation as its
   constraint oracle;
3. :mod:`~repro.tune.costmodel` pre-screens hundreds of candidates with
   the :mod:`~repro.runtime.perfmodel` cost primitives;
4. :mod:`~repro.tune.search` measures the survivors with
   successive-halving trials (deterministic given a seed) behind a
   quality guard that refuses plans losing more modularity than a
   tolerance;
5. :mod:`~repro.tune.db` persists plans keyed by graph fingerprint,
   with nearest-neighbour fallback in feature space for unseen graphs.

Quickstart::

    from repro.tune import TuningDB, tune_graph

    db = TuningDB("tuning.json")
    record, cached = tune_graph(g, db)       # search on miss, instant on hit
    result = run_louvain(g, record.ranks, record.config)

Or through the service: ``DetectionRequest(..., tune="auto")`` makes an
:class:`~repro.service.Engine` built with a tuning DB plan the config
automatically, and ``repro-louvain tune`` does the same from the shell.
See ``docs/TUNING.md``.
"""

from .costmodel import CostEstimate, predict_cost, screen
from .db import (
    DB_FORMAT_VERSION,
    DEFAULT_NEAREST_DISTANCE,
    TuningDB,
    TuningRecord,
)
from .features import (
    GraphFeatures,
    compute_features,
    feature_distance,
)
from .search import (
    SearchReport,
    Trial,
    TunerSettings,
    plan_for_graph,
    tune_graph,
)
from .space import (
    THRESHOLD_CYCLES,
    Candidate,
    SearchSpace,
    default_space,
)

__all__ = [
    "Candidate",
    "CostEstimate",
    "DB_FORMAT_VERSION",
    "DEFAULT_NEAREST_DISTANCE",
    "GraphFeatures",
    "SearchReport",
    "SearchSpace",
    "THRESHOLD_CYCLES",
    "Trial",
    "TunerSettings",
    "TuningDB",
    "TuningRecord",
    "compute_features",
    "default_space",
    "feature_distance",
    "plan_for_graph",
    "predict_cost",
    "screen",
    "tune_graph",
]
