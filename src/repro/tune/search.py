"""Two-stage tuning search: cost-model screening + measured halving.

Stage 1 — **screen**: every candidate of the search space is scored by
the closed-form cost model (:mod:`repro.tune.costmodel`); only the
``trials`` cheapest-predicted candidates advance.  This is what lets
the space stay hundreds of points wide while the measured budget stays
single-digit.

Stage 2 — **successive halving**: survivors run *measured* trials
through :func:`repro.bench.harness.run_trial` at increasing fidelity
(phase-capped runs first, full runs last), the slower half dropped at
each rung.  Measured time is the simulator's modelled seconds, so the
whole search is deterministic given the seed — same seed, same graph,
same space ⟹ identical trial schedule and identical planned config.

A **quality guard** closes the loop: the winner's full-run modularity
must reach the paper-default baseline's within ``quality_tolerance``,
otherwise the next-fastest finalist is considered, and if none passes
the plan falls back to the baseline config itself (never ship a fast
plan that detects worse communities).

The full-fidelity runs (baseline + finalists) additionally yield a
**Pareto frontier** over (modelled seconds, modularity): the heuristic
axes added since the paper — coloring, vertex following, Leiden-style
refinement — trade speed against quality rather than strictly winning
on one, so the report exposes the whole frontier instead of collapsing
it to a single winner.  Callers who care about quality more than the
guard requires can pick a slower, higher-Q point off the frontier.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..bench.harness import run_trial
from ..core.config import LouvainConfig
from ..core.result import LouvainResult
from ..graph.csr import CSRGraph
from ..runtime.perfmodel import CORI_HASWELL, MachineModel
from .costmodel import predict_cost, screen
from .db import TuningDB, TuningRecord
from .features import GraphFeatures, compute_features
from .space import Candidate, SearchSpace, default_space

#: Version of the search procedure (recorded for reproducibility).
TUNER_VERSION = 1


def _achieved_ghost(result: LouvainResult) -> float | None:
    """Mean achieved coarse-phase ghost fraction of one run, if measured.

    Phase 0 always runs on the input split, so only phases >= 1 (whose
    layout the repartitioner chose) count.  ``None`` when the run never
    reached a coarse phase or predates the measurement.
    """
    gfs = [
        p.ghost_fraction
        for p in result.phases
        if p.phase >= 1 and p.ghost_fraction >= 0.0
    ]
    if not gfs:
        return None
    return float(sum(gfs) / len(gfs))


def _pareto_frontier(
    points: list[tuple[float, float, Candidate]],
) -> tuple[dict[str, Any], ...]:
    """Non-dominated (elapsed, modularity) points, fastest first.

    A point survives iff no other point is both at-most-as-slow and
    strictly higher-quality: scanning by elapsed ascending, keep a
    point only when its modularity strictly exceeds every faster
    point's.  Ties (same elapsed and modularity) keep the first by
    candidate key, so the frontier is deterministic.
    """
    ordered = sorted(points, key=lambda p: (p[0], -p[1], p[2].key()))
    frontier: list[dict[str, Any]] = []
    best_q = -math.inf
    for elapsed, modularity, cand in ordered:
        if modularity > best_q:
            best_q = modularity
            frontier.append(
                {
                    "candidate": cand.key(),
                    "describe": cand.describe(),
                    "elapsed": elapsed,
                    "modularity": modularity,
                }
            )
    return tuple(frontier)


@dataclass(frozen=True)
class TunerSettings:
    """Knobs of one tuning run (all deterministic given ``seed``)."""

    #: Candidates admitted to the measured stage after screening.
    trials: int = 8
    #: Keep ``ceil(len / eta)`` candidates per halving rung.
    eta: int = 2
    #: Phase caps of the low-fidelity rungs (the final rung always runs
    #: the full configuration).
    rung_phase_caps: tuple[int, ...] = (1, 2)
    #: Optional cap on cumulative *modelled* seconds spent in measured
    #: trials; once exceeded, remaining candidates are dropped
    #: deterministically (screen order) instead of measured.
    budget_seconds: float | None = None
    #: Tuned modularity may fall at most this far below baseline.
    quality_tolerance: float = 0.02
    #: Rank count of the paper-default baseline run the guard (and the
    #: speedup report) compares against.
    baseline_ranks: int = 4
    #: Seed stamped onto every candidate config (ET's RNG) — the single
    #: number the whole search is reproducible from.
    seed: int = 0
    machine: MachineModel = CORI_HASWELL
    partition: str = "even_edge"
    #: Run every measured trial under the collective-schedule verifier.
    verify_schedule: bool | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.baseline_ranks < 1:
            raise ValueError(
                f"baseline_ranks must be >= 1, got {self.baseline_ranks}"
            )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be > 0, got {self.budget_seconds}"
            )


@dataclass
class Trial:
    """One measured run of one candidate at one fidelity."""

    rung: int
    candidate: Candidate
    #: Phase cap of this rung (``None`` = full-fidelity run).
    max_phases: int | None
    elapsed: float
    modularity: float
    phases: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "rung": self.rung,
            "candidate": self.candidate.key(),
            "describe": self.candidate.describe(),
            "max_phases": self.max_phases,
            "elapsed": self.elapsed,
            "modularity": self.modularity,
            "phases": self.phases,
        }


@dataclass
class SearchReport:
    """Everything :func:`plan_for_graph` did, for humans and JSON."""

    record: TuningRecord
    candidates_total: int
    candidates_screened: int
    trials: list[Trial] = field(default_factory=list)
    #: Search wall-notes: why the winner won / guard decisions.
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        rec = self.record
        lines = [
            f"tuning {rec.fingerprint[:12]}…  [{rec.features.format()}]",
            f"  space: {self.candidates_total} candidates, "
            f"screened to {self.candidates_screened} measured",
        ]
        for t in self.trials:
            cap = "full" if t.max_phases is None else f"<= {t.max_phases} phase(s)"
            lines.append(
                f"  rung {t.rung}: {t.candidate.describe():<40} {cap:>14}  "
                f"{t.elapsed:.4f}s  Q={t.modularity:.4f}"
            )
        if rec.frontier:
            lines.append(
                f"  pareto frontier ({len(rec.frontier)} point(s), "
                "modelled seconds x modularity):"
            )
            lines.extend(
                f"    {pt['elapsed']:.4f}s  Q={pt['modularity']:.4f}  "
                f"{pt['describe']}"
                for pt in rec.frontier
            )
        lines.extend(f"  {n}" for n in self.notes)
        lines.append(f"  {rec.summary()}")
        lines.append(
            f"  tuning cost: {rec.tune_seconds:.4f} modelled seconds "
            f"over {len(self.trials)} trial(s)"
        )
        return "\n".join(lines)


def plan_for_graph(
    g: CSRGraph,
    space: SearchSpace | None = None,
    settings: TunerSettings | None = None,
    features: GraphFeatures | None = None,
) -> SearchReport:
    """Run the two-stage search on ``g`` and return the full report.

    Deterministic: candidate enumeration, screening ties, rung
    membership, and the measured times themselves (the simulator is a
    pure function of its inputs) all derive from ``settings.seed``.
    """
    settings = settings or TunerSettings()
    space = space or default_space()
    features = features or compute_features(g)
    machine = settings.machine

    candidates = space.candidates(seed=settings.seed)
    ranked = screen(features, candidates, machine)
    # Admit the cheapest-predicted candidates, collapsing *equivalence
    # classes*: two candidates with identical predicted cost, identical
    # rank count, and identical outcome (same config cache_key — i.e.
    # they differ only in transport knobs the model says are free here,
    # e.g. push-vs-pull at p = 1) would yield byte-identical trials, so
    # measuring both wastes budget.
    survivors: list[Candidate] = []
    seen_equiv: set[tuple[float, int, str]] = set()
    for predicted_s, cand in ranked:
        equiv = (round(predicted_s, 12), cand.ranks, cand.config.cache_key())
        if equiv in seen_equiv:
            continue
        seen_equiv.add(equiv)
        survivors.append(cand)
        if len(survivors) >= settings.trials:
            break
    num_screened = len(survivors)
    predicted = {c.key(): s for s, c in ranked}

    trials: list[Trial] = []
    notes: list[str] = []
    spent = 0.0

    def budget_left() -> bool:
        return (
            settings.budget_seconds is None
            or spent < settings.budget_seconds
        )

    def measure(
        cand: Candidate, rung: int, cap: int | None
    ) -> tuple[Trial, LouvainResult]:
        nonlocal spent, features
        result = run_trial(
            g,
            cand.config,
            cand.ranks,
            machine=machine,
            partition=settings.partition,
            max_phases=cap,
            verify_schedule=settings.verify_schedule,
        )
        trial = Trial(
            rung=rung,
            candidate=cand,
            max_phases=cap,
            elapsed=result.elapsed,
            modularity=result.modularity,
            phases=result.num_phases,
        )
        trials.append(trial)
        spent += result.elapsed
        # Feed the achieved coarse-phase ghost fraction back into the
        # features that get persisted with the record: later cost-model
        # queries on this graph then rank repartitioned candidates from
        # measurement instead of the fixed fallback discount.
        if cand.config.repartition == "community" and cand.ranks > 1:
            achieved = _achieved_ghost(result)
            if achieved is not None:
                features = features.with_achieved_ghost(
                    cand.ranks, achieved
                )
        return trial, result

    # ------------------------------------------------------------------
    # Baseline (paper defaults) — the guard's reference, always run.
    # ------------------------------------------------------------------
    baseline_config = replace(LouvainConfig(), seed=settings.seed)
    baseline_cand = Candidate(
        config=baseline_config, ranks=settings.baseline_ranks
    )
    _, baseline_result = measure(baseline_cand, rung=-1, cap=None)

    # ------------------------------------------------------------------
    # Successive halving over the screened survivors.
    # ------------------------------------------------------------------
    rung = 0
    for cap in settings.rung_phase_caps:
        if len(survivors) <= 1:
            break
        measured: list[tuple[float, Candidate]] = []
        for cand in survivors:
            if not budget_left():
                break  # deterministic: screen order decides who is cut
            trial, _ = measure(cand, rung=rung, cap=cap)
            measured.append((trial.elapsed, cand))
        if measured:
            measured.sort(key=lambda ec: (ec[0], ec[1].key()))
            keep = max(1, math.ceil(len(measured) / settings.eta))
            survivors = [c for _, c in measured[:keep]]
        else:
            survivors = survivors[:1]
        rung += 1

    # ------------------------------------------------------------------
    # Final rung: full-fidelity runs of the remaining finalists.
    # ------------------------------------------------------------------
    finalists: list[tuple[float, float, Candidate]] = []
    for i, cand in enumerate(survivors):
        if i > 0 and not budget_left():
            break
        trial, _ = measure(cand, rung=rung, cap=None)
        finalists.append((trial.elapsed, trial.modularity, cand))
    finalists.sort(key=lambda emc: (emc[0], emc[2].key()))

    # ------------------------------------------------------------------
    # Quality guard: fastest finalist whose modularity holds up.
    # ------------------------------------------------------------------
    floor = baseline_result.modularity - settings.quality_tolerance
    winner: tuple[float, float, Candidate] | None = None
    for elapsed, modularity, cand in finalists:
        if modularity >= floor:
            winner = (elapsed, modularity, cand)
            break
        notes.append(
            f"guard: rejected {cand.describe()} "
            f"(Q={modularity:.4f} < floor {floor:.4f})"
        )
    guard_passed = winner is not None
    if winner is None:
        notes.append(
            "guard: no finalist met the quality floor; "
            "falling back to the paper-default baseline"
        )
        winner = (
            baseline_result.elapsed,
            baseline_result.modularity,
            baseline_cand,
        )

    win_elapsed, win_modularity, win_cand = winner

    # Pareto frontier over every full-fidelity run (baseline included,
    # deduplicated by candidate): the quality/speed trade-offs of the
    # heuristic axes, not just the guard's single winner.
    full_runs: list[tuple[float, float, Candidate]] = [
        (baseline_result.elapsed, baseline_result.modularity, baseline_cand)
    ]
    seen_full = {baseline_cand.key()}
    for elapsed, modularity, cand in finalists:
        if cand.key() not in seen_full:
            seen_full.add(cand.key())
            full_runs.append((elapsed, modularity, cand))
    frontier = _pareto_frontier(full_runs)

    record = TuningRecord(
        fingerprint=g.fingerprint(),
        features=features,
        config=win_cand.config,
        ranks=win_cand.ranks,
        predicted_seconds=predicted.get(
            win_cand.key(),
            predict_cost(features, win_cand, machine).seconds,
        ),
        measured_seconds=win_elapsed,
        baseline_seconds=baseline_result.elapsed,
        baseline_modularity=baseline_result.modularity,
        tuned_modularity=win_modularity,
        quality_tolerance=settings.quality_tolerance,
        quality_guard_passed=guard_passed,
        tuner_seed=settings.seed,
        machine=machine.name,
        schedule=tuple(
            {
                "rung": t.rung,
                "candidate": t.candidate.key(),
                "max_phases": t.max_phases,
            }
            for t in trials
        ),
        trials=tuple(t.to_dict() for t in trials),
        frontier=frontier,
        tune_seconds=spent,
        created=time.time(),
    )
    return SearchReport(
        record=record,
        candidates_total=len(candidates),
        candidates_screened=num_screened,
        trials=trials,
        notes=notes,
    )


def tune_graph(
    g: CSRGraph,
    db: TuningDB,
    space: SearchSpace | None = None,
    settings: TunerSettings | None = None,
    *,
    force: bool = False,
) -> tuple[TuningRecord, bool]:
    """DB-aware tuning: serve an exact hit, otherwise search and store.

    Returns ``(record, cached)`` — ``cached=True`` means the plan came
    straight from the database and **no measured trials ran**.
    """
    record = db.get(g.fingerprint())
    if record is not None and not force:
        return record, True
    report = plan_for_graph(g, space=space, settings=settings)
    db.put(report.record)
    return report.record, False
