"""Analytic pre-screening cost model for tuning candidates.

Running a measured trial for every point of the search space would cost
hundreds of simulated detections; the tuner instead *ranks* candidates
with a closed-form estimate built from the same
:class:`~repro.runtime.perfmodel.MachineModel` cost primitives the
simulator charges, then measures only the most promising few.

The model mirrors the per-iteration structure of Algorithm 3:

* local ΔQ sweep over the rank's adjacency entries (``compute``);
* ghost community refresh — one personalized exchange whose volume is
  the cross-rank entry fraction the featurizer measured
  (``ghost_comm``);
* community-info exchange — three alltoallv legs for the paper's pull
  protocol, one fused round trip with delta-sized payloads for the
  owner-push protocol (``community_comm``);
* the modularity/counters allreduce, doubled for ETC's extra
  inactive-count vote (``allreduce``);

plus per-phase graph reconstruction and one-time ingest.  Under
``repartition="community"`` the coarse phases' ghost/community legs use
the *achieved* ghost fraction fed back by prior repartitioned runs (or
a fixed discount before any feedback exists), and each phase boundary
is charged a one-time migration/placement term.  Variant
effects enter as *work multipliers*: ET deactivates vertices (stronger
on skewed graphs, Table I), threshold cycling truncates early phases
(Fig. 2), ETC exits phases at its inactive fraction.

The absolute numbers only need to be plausible — the measured
successive-halving stage corrects them — but the *ordering* they induce
decides which candidates get measured at all, so the model must rank
e.g. push-vs-pull and ET-vs-Baseline the same way the simulator does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.config import LouvainConfig
from ..runtime.perfmodel import MachineModel
from .features import GraphFeatures
from .space import Candidate

#: Bytes per shipped ghost community entry (vertex id + community id).
_GHOST_ENTRY_BYTES = 16
#: Bytes per community-info entry ((a_c, size) plus addressing).
_COMM_INFO_BYTES = 24
#: Bytes per edge moved during distributed graph reconstruction.
_REBUILD_ENTRY_BYTES = 24
#: Bytes per edge of the on-disk binary input.
_INPUT_ENTRY_BYTES = 20
#: Per-phase shrink factor of the coarsened graph (empirically the
#: rebuilt graph keeps ~20-30% of the previous phase's edges).
_PHASE_SHRINK = 0.25
#: Payload shrink of the push protocol's fused legs vs one pull leg
#: (only *changed* subscribed communities ship).
_PUSH_PAYLOAD_FACTOR = 0.4
#: Payload shrink of the ghost delta refresh (unmoved vertices skip).
_DELTA_PAYLOAD_FACTOR = 0.45
#: Fallback coarse-phase ghost-fraction discount under
#: ``repartition="community"`` when the featurizer carries no measured
#: feedback yet (achieved fractions, once observed, replace this guess).
_REPARTITION_GHOST_FACTOR = 0.7
#: Per-color-class sweep-round overhead of coloring-ordered sweeps.
#: Coloring buys modularity (independent sets move on fresh neighbour
#: state), never time: every iteration runs one synchronised sweep
#: round per color class, each paying its own scan/bookkeeping pass and
#: its own ghost/community legs.  The measured simulator shows colored
#: runs 1.5-4x slower even at one rank, so the model must rank coloring
#: as strictly more expensive everywhere — a colored candidate reaches
#: the measured rungs on the Pareto frontier's quality axis, not by
#: looking cheap.
_COLORING_ROUND_OVERHEAD = 0.25
#: Modelled propagation rounds of one Leiden refinement pass (min-label
#: propagation converges in the intra-community diameter, small for the
#: dense communities Louvain forms).
_REFINE_ROUNDS = 4.0


@dataclass(frozen=True)
class CostEstimate:
    """Predicted modelled runtime of one candidate, with a breakdown."""

    seconds: float
    breakdown: Mapping[str, float]

    def format(self) -> str:
        parts = " ".join(
            f"{k}={v:.4f}" for k, v in sorted(self.breakdown.items())
        )
        return f"{self.seconds:.4f}s ({parts})"


def _iterations_per_phase(features: GraphFeatures) -> float:
    """Baseline move-phase iteration count: grows slowly with size."""
    import math

    return 8.0 + 2.0 * math.log10(features.num_vertices + 10.0)


def _phase_count(features: GraphFeatures) -> int:
    import math

    return max(3, int(round(2.0 + math.log10(features.num_vertices + 10.0))))


def _variant_factors(
    config: LouvainConfig, features: GraphFeatures
) -> tuple[float, float]:
    """(compute work multiplier, iteration-count multiplier).

    ET work scales with ``(1 + alpha) / 2`` — small alpha retires
    vertices aggressively — and pays off more on skewed degree
    distributions, where a few hubs dominate the sweep (§IV-B, Table I).
    TC truncates early phases; its saving grows with how coarse the
    cycle's thresholds are relative to the final tau.  ETC's exit cuts
    iterations in proportion to how early it pulls the trigger.
    """
    import math

    work = 1.0
    iters = 1.0
    variant = config.variant
    if variant.uses_early_termination:
        work *= 0.55 + 0.35 * config.alpha
        # Skew bonus: hubs deactivate late, leaves early.
        work *= 1.0 - 0.10 * min(features.degree_cv, 2.0)
    if variant.uses_threshold_cycling:
        exps = [
            -math.log10(t) * c for t, c in config.threshold_cycle
        ]
        total = sum(c for _, c in config.threshold_cycle)
        mean_exp = sum(exps) / max(total, 1)
        final_exp = -math.log10(config.min_cycle_tau)
        # Coarser mean threshold (smaller exponent) -> fewer iterations.
        iters *= 0.65 + 0.30 * min(mean_exp / max(final_exp, 1.0), 1.0)
    if variant.uses_inactive_exit:
        iters *= 0.55 + 0.45 * config.etc_exit_fraction
    return work, iters


def predict_cost(
    features: GraphFeatures,
    candidate: Candidate,
    machine: MachineModel,
) -> CostEstimate:
    """Closed-form modelled-seconds estimate for one candidate."""
    config, p = candidate.config, candidate.ranks
    nnz = max(features.mean_degree * features.num_vertices, 1.0)
    # Input-sized entries: the on-disk read and VF's pre-coarsening see
    # the graph as ingested, before any merging shrinks it.
    input_entries_per_rank = nnz / p
    entries_per_rank = input_entries_per_rank
    gf = features.ghost_fraction_at(p)
    work_factor, iter_factor = _variant_factors(config, features)
    iters = _iterations_per_phase(features) * iter_factor
    phases = _phase_count(features)

    # Vertex following merges the degree-one population away before
    # phase 0: each merged leaf removes one vertex and its two stored
    # entries, shrinking every phase's sweep and comm volume.  The
    # one-time pre-coarsening is charged below as an extra rebuild.
    vertex_following = config.vertex_following
    if vertex_following:
        leaf = min(features.degree_one_fraction, 0.95)
        entries_per_rank *= 1.0 - min(
            2.0 * leaf / max(features.mean_degree, 1.0), 0.9
        )

    # Coloring-ordered sweeps: one synchronised sweep round per color
    # class inside each iteration — per-round scan overhead on the
    # compute side, per-round ghost/community legs on the comm side,
    # plus the one-time distance-1 coloring itself.  The class count
    # grows with density.
    colors = 1.0
    if config.use_coloring:
        import math

        colors = min(8.0, 2.0 + math.log2(features.mean_degree + 2.0))
        work_factor *= 1.0 + _COLORING_ROUND_OVERHEAD * (colors - 1.0)

    # Estimated neighbour count for the MPI-3 neighbourhood collectives:
    # with a 1-D contiguous partition most ghost traffic is near-range.
    degree = (
        min(p - 1, max(1, round(p * min(1.0, 4.0 * gf))))
        if config.use_neighbor_collectives and p > 1
        else None
    )

    repartitioned = config.repartition == "community" and p > 1
    # Coarse phases (k >= 1) run on the community-placed layout; use the
    # measured feedback when a prior repartitioned run reported it, else
    # a fixed optimistic discount.  Phase 0 always sees the input split.
    if repartitioned:
        achieved = features.achieved_ghost_at(p)
        gf_coarse = (
            achieved if achieved is not None
            else gf * _REPARTITION_GHOST_FACTOR
        )
    else:
        gf_coarse = gf

    compute = ghost = community = allreduce = rebuild = partition = 0.0
    refine = 0.0
    if vertex_following:
        # The pre-coarsening: a rebuild-sized alltoallv on the *input*
        # graph plus the owner-routed neighbour-degree lookup.
        vf_bytes = int(input_entries_per_rank * _REBUILD_ENTRY_BYTES)
        rebuild += machine.alltoallv_cost(
            vf_bytes, vf_bytes, p, rank=0
        ) + machine.allreduce_cost(64, p)
    size = 1.0  # relative size of the current phase's graph
    for k in range(phases):
        e = entries_per_rank * size
        gf_k = gf if k == 0 else gf_coarse
        per_iter_compute = machine.compute_cost(e * work_factor)

        ghost_bytes = gf_k * e * _GHOST_ENTRY_BYTES
        if config.ghost_delta_updates:
            ghost_bytes *= _DELTA_PAYLOAD_FACTOR
        per_iter_ghost = machine.exchange_leg_cost(
            int(ghost_bytes), int(ghost_bytes), p, rank=0, degree=degree
        )

        comm_bytes = gf_k * e * _COMM_INFO_BYTES
        if config.community_push_updates:
            leg = machine.exchange_leg_cost(
                int(comm_bytes * _PUSH_PAYLOAD_FACTOR),
                int(comm_bytes * _PUSH_PAYLOAD_FACTOR),
                p,
                rank=0,
                degree=degree,
            )
            per_iter_community = 2.0 * leg  # one fused round trip
        else:
            leg = machine.exchange_leg_cost(
                int(comm_bytes), int(comm_bytes), p, rank=0, degree=degree
            )
            per_iter_community = 3.0 * leg  # fetch x2 + delta push
        per_iter_allreduce = machine.allreduce_cost(64, p)
        if config.variant.uses_inactive_exit:
            per_iter_allreduce += machine.allreduce_cost(16, p)

        compute += iters * per_iter_compute
        # Each color class pays its own ghost refresh and community
        # round trip inside one iteration; the end-of-iteration
        # allreduce stays single.
        ghost += iters * per_iter_ghost * colors
        community += iters * per_iter_community * colors
        allreduce += iters * per_iter_allreduce
        if config.use_coloring:
            # One distance-1 coloring per phase: a few conflict-
            # resolution sweeps over the adjacency, each with a
            # convergence vote.
            compute += machine.compute_cost(3.0 * e)
            allreduce += 3.0 * machine.allreduce_cost(16, p)

        if config.refine == "leiden":
            # Per-phase refinement: a few min-label propagation rounds
            # (ghost exchange + convergence vote each) plus the
            # owner-routed split census and label-clash audit.
            refine += _REFINE_ROUNDS * (
                per_iter_ghost + machine.allreduce_cost(8, p)
            ) + 2.0 * machine.exchange_leg_cost(
                int(gf_k * e * _GHOST_ENTRY_BYTES),
                int(gf_k * e * _GHOST_ENTRY_BYTES),
                p,
                rank=0,
                degree=degree,
            )

        rebuild_bytes = int(e * _REBUILD_ENTRY_BYTES)
        rebuild += machine.alltoallv_cost(
            rebuild_bytes, rebuild_bytes, p, rank=0
        ) + machine.allreduce_cost(64, p)
        if repartitioned:
            # One-time migration/placement term per boundary: every rank
            # broadcasts its coarse meta-edge partials (allgather) and
            # replays the greedy placement on the merged list.
            coarse_bytes = int(e * _PHASE_SHRINK * _REBUILD_ENTRY_BYTES)
            partition += machine.allgather_cost(
                coarse_bytes, p
            ) + machine.compute_cost(e * _PHASE_SHRINK * p)
        size *= _PHASE_SHRINK

    io = machine.io_cost(input_entries_per_rank * _INPUT_ENTRY_BYTES)
    breakdown = {
        "compute": compute,
        "ghost_comm": ghost,
        "community_comm": community,
        "allreduce": allreduce,
        "rebuild": rebuild,
        "partition": partition,
        "refine": refine,
        "io": io,
    }
    return CostEstimate(
        seconds=float(sum(breakdown.values())), breakdown=breakdown
    )


def screen(
    features: GraphFeatures,
    candidates: list[Candidate],
    machine: MachineModel,
) -> list[tuple[float, Candidate]]:
    """Rank candidates by predicted modelled seconds, cheapest first.

    Ties (identical predictions — e.g. transport knobs at ``p = 1``)
    break on the candidate key, so the ordering is fully deterministic.
    """
    scored = [
        (predict_cost(features, c, machine).seconds, c) for c in candidates
    ]
    scored.sort(key=lambda sc: (sc[0], sc[1].key()))
    return scored
