"""Persistent tuning database: fingerprint-keyed, JSON, atomic writes.

Tuning is expensive (dozens of measured trials) and graph-specific, so
its product — a planned ``(LouvainConfig, ranks)`` pair with the
evidence behind it — is persisted and reused:

* **exact hit** — a graph whose :meth:`CSRGraph.fingerprint` is already
  in the DB gets its planned config back instantly, no trials;
* **nearest-neighbour fallback** — an unseen graph is served the plan
  of the closest previously-tuned graph in feature space
  (:func:`repro.tune.features.feature_distance`), when one is within
  ``max_distance``.  Structure, not identity, is what the plan actually
  depends on, so a near neighbour's plan transfers.

The on-disk format is a single versioned JSON document.  Writes go
through the same temp-file + atomic-rename discipline as
:mod:`repro.core.resultio`, so a crash mid-save never corrupts the DB,
and the file is human-diffable (sorted keys) for review.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.config import LouvainConfig
from .features import GraphFeatures, feature_distance

#: On-disk document version; bump on incompatible layout changes.
DB_FORMAT_VERSION = 1

#: Default feature-space radius inside which a neighbour's plan is
#: considered transferable.  Vector axes are normalised to ~unit scale
#: (see :meth:`GraphFeatures.vector`), so 0.75 means "same size class
#: and broadly similar shape".
DEFAULT_NEAREST_DISTANCE = 0.75


@dataclass(frozen=True)
class TuningRecord:
    """Everything one tuning run learned about one graph."""

    fingerprint: str
    features: GraphFeatures
    config: LouvainConfig
    ranks: int
    #: Cost-model estimate for the winning candidate.
    predicted_seconds: float
    #: Measured (modelled) full-run seconds of the winning candidate.
    measured_seconds: float
    #: Paper-default baseline: full-run seconds and modularity.
    baseline_seconds: float
    baseline_modularity: float
    tuned_modularity: float
    #: Quality guard: the tuned config must reach at least
    #: ``baseline_modularity - quality_tolerance``.
    quality_tolerance: float
    quality_guard_passed: bool
    #: Search reproducibility inputs.
    tuner_seed: int
    machine: str
    #: Deterministic trial schedule: (rung, candidate key, phase cap).
    schedule: tuple[dict[str, Any], ...] = ()
    #: Full trial log: per-run measured seconds and modularity.
    trials: tuple[dict[str, Any], ...] = ()
    #: Quality/speed Pareto frontier over the full-fidelity runs
    #: (baseline + finalists): sorted by modelled seconds ascending,
    #: each point strictly higher modularity than the one before it.
    #: Points are ``{candidate, describe, elapsed, modularity}`` dicts.
    frontier: tuple[dict[str, Any], ...] = ()
    #: Total modelled seconds spent on measured trials (tuning cost).
    tune_seconds: float = 0.0
    #: Unix timestamp of when the record was created.
    created: float = 0.0
    #: Unix timestamp of the last lookup that served this record
    #: (exact or nearest hit); drives LRU eviction.  0.0 = never used
    #: since creation, in which case ``created`` stands in.
    last_used: float = 0.0
    #: Where the plan came from ("search"; responses served via the
    #: nearest-neighbour path tag the donor fingerprint).
    source: str = "search"
    #: Serving feedback (the obs drift loop, ROADMAP item 3): jobs the
    #: engine served with this plan, their total measured (modelled)
    #: seconds, and the drift monitor's latest smoothed
    #: measured/predicted ratio.  All written back by the engine after
    #: each served job; absent in pre-drift records.
    served_jobs: int = 0
    served_seconds_total: float = 0.0
    drift_ratio: float = 1.0

    @property
    def speedup(self) -> float:
        """Baseline-over-tuned modelled-time ratio (> 1 is a win)."""
        if self.measured_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.measured_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "features": self.features.to_dict(),
            "config": self.config.to_dict(),
            "ranks": self.ranks,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "baseline_seconds": self.baseline_seconds,
            "baseline_modularity": self.baseline_modularity,
            "tuned_modularity": self.tuned_modularity,
            "quality_tolerance": self.quality_tolerance,
            "quality_guard_passed": self.quality_guard_passed,
            "tuner_seed": self.tuner_seed,
            "machine": self.machine,
            "schedule": list(self.schedule),
            "trials": list(self.trials),
            "frontier": list(self.frontier),
            "tune_seconds": self.tune_seconds,
            "created": self.created,
            "last_used": self.last_used,
            "source": self.source,
            "served_jobs": self.served_jobs,
            "served_seconds_total": self.served_seconds_total,
            "drift_ratio": self.drift_ratio,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningRecord":
        return cls(
            fingerprint=str(data["fingerprint"]),
            features=GraphFeatures.from_dict(data["features"]),
            config=LouvainConfig.from_dict(dict(data["config"])),
            ranks=int(data["ranks"]),
            predicted_seconds=float(data["predicted_seconds"]),
            measured_seconds=float(data["measured_seconds"]),
            baseline_seconds=float(data["baseline_seconds"]),
            baseline_modularity=float(data["baseline_modularity"]),
            tuned_modularity=float(data["tuned_modularity"]),
            quality_tolerance=float(data["quality_tolerance"]),
            quality_guard_passed=bool(data["quality_guard_passed"]),
            tuner_seed=int(data["tuner_seed"]),
            machine=str(data["machine"]),
            schedule=tuple(data.get("schedule", ())),
            trials=tuple(data.get("trials", ())),
            # Pre-frontier records load with an empty frontier.
            frontier=tuple(data.get("frontier", ())),
            tune_seconds=float(data.get("tune_seconds", 0.0)),
            created=float(data.get("created", 0.0)),
            last_used=float(data.get("last_used", 0.0)),
            source=str(data.get("source", "search")),
            served_jobs=int(data.get("served_jobs", 0)),
            served_seconds_total=float(data.get("served_seconds_total", 0.0)),
            drift_ratio=float(data.get("drift_ratio", 1.0)),
        )

    def summary(self) -> str:
        guard = "ok" if self.quality_guard_passed else "FAILED->baseline"
        return (
            f"plan {self.config.label()} x{self.ranks}: "
            f"{self.measured_seconds:.4f}s vs baseline "
            f"{self.baseline_seconds:.4f}s ({self.speedup:.2f}x), "
            f"Q={self.tuned_modularity:.4f} vs {self.baseline_modularity:.4f} "
            f"[guard {guard}]"
        )


@dataclass
class _NearestHit:
    """A nearest-neighbour lookup result with its distance."""

    record: TuningRecord
    distance: float


class TuningDB:
    """Thread-safe fingerprint-keyed store of :class:`TuningRecord` s.

    ``path=None`` gives an in-memory DB (tests, throwaway engines);
    with a path, the constructor loads any existing file and every
    :meth:`put` persists atomically.

    Hygiene: a long-lived serving deployment shares one DB across
    shards and tunes every graph it ever sees, so the DB is bounded:

    * ``max_entries`` — size cap; beyond it, least-recently-*used*
      records (``last_used``, falling back to ``created``) are evicted;
    * ``max_age_seconds`` — records whose last use is older than this
      are dropped regardless of the cap (stale plans for graphs nobody
      serves anymore).

    GC runs on load and on every :meth:`put`; the pruned document is
    rewritten with the same temp-file + atomic-rename discipline as
    ordinary saves, so a crash mid-GC never corrupts the DB.  Lookups
    (:meth:`get` / :meth:`nearest` hits) stamp ``last_used`` in memory;
    the stamps persist with the next write rather than on every read.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        max_entries: int | None = None,
        max_age_seconds: float | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError(
                f"max_age_seconds must be > 0, got {max_age_seconds}"
            )
        self.path = os.fspath(path) if path is not None else None
        self.max_entries = max_entries
        self.max_age_seconds = max_age_seconds
        #: Records dropped by GC over this instance's lifetime.
        self.gc_evictions = 0
        self._lock = threading.Lock()
        self._entries: dict[str, TuningRecord] = {}
        if self.path is not None and os.path.exists(self.path):
            self._entries = _read_file(self.path)
            with self._lock:
                if self._gc_locked() and self.path is not None:
                    _write_file(self.path, self._entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def get(self, fingerprint: str) -> TuningRecord | None:
        """Exact-fingerprint lookup (stamps ``last_used`` on a hit)."""
        with self._lock:
            record = self._entries.get(fingerprint)
            if record is not None:
                record = self._touch_locked(record)
            return record

    def put(self, record: TuningRecord) -> None:
        """Insert/replace a record, GC, and persist (when file-backed)."""
        if not record.created:
            record = _stamp_created(record)
        with self._lock:
            self._entries[record.fingerprint] = record
            self._gc_locked()
            if self.path is not None:
                _write_file(self.path, self._entries)

    def gc(self) -> int:
        """Apply the size cap and age limit now; returns records dropped.

        Persists the pruned document when file-backed (atomic rewrite),
        also flushing any in-memory ``last_used`` stamps.
        """
        with self._lock:
            dropped = self._gc_locked()
            if self.path is not None:
                _write_file(self.path, self._entries)
            return dropped

    def _touch_locked(self, record: TuningRecord) -> TuningRecord:
        import dataclasses

        record = dataclasses.replace(record, last_used=time.time())
        self._entries[record.fingerprint] = record
        return record

    def _gc_locked(self) -> int:
        """Prune by age then by LRU size cap; returns records dropped."""
        dropped = 0
        if self.max_age_seconds is not None:
            cutoff = time.time() - self.max_age_seconds
            stale = [
                fp
                for fp, rec in self._entries.items()
                if (rec.last_used or rec.created) < cutoff
            ]
            for fp in stale:
                del self._entries[fp]
            dropped += len(stale)
        if (
            self.max_entries is not None
            and len(self._entries) > self.max_entries
        ):
            # Oldest last-use first; fingerprint breaks ties so the
            # eviction order is deterministic.
            victims = sorted(
                self._entries.values(),
                key=lambda r: ((r.last_used or r.created), r.fingerprint),
            )[: len(self._entries) - self.max_entries]
            for rec in victims:
                del self._entries[rec.fingerprint]
            dropped += len(victims)
        self.gc_evictions += dropped
        return dropped

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Persist to ``path`` (default: the DB's own path)."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("in-memory TuningDB has no path to save to")
        with self._lock:
            _write_file(target, self._entries)
        return target

    # ------------------------------------------------------------------
    def nearest(
        self,
        features: GraphFeatures,
        max_distance: float = DEFAULT_NEAREST_DISTANCE,
    ) -> _NearestHit | None:
        """Closest tuned graph in feature space, within ``max_distance``.

        Ties break on fingerprint so lookups are deterministic.
        """
        with self._lock:
            entries = list(self._entries.values())
        best: _NearestHit | None = None
        for rec in sorted(entries, key=lambda r: r.fingerprint):
            d = feature_distance(features, rec.features)
            if d <= max_distance and (best is None or d < best.distance):
                best = _NearestHit(record=rec, distance=d)
        if best is not None:
            with self._lock:
                # The donor may have been evicted concurrently; only a
                # still-present record gets its LRU stamp refreshed.
                if best.record.fingerprint in self._entries:
                    best = _NearestHit(
                        record=self._touch_locked(best.record),
                        distance=best.distance,
                    )
        return best


def _stamp_created(record: TuningRecord) -> TuningRecord:
    import dataclasses

    return dataclasses.replace(record, created=time.time())


def _read_file(path: str) -> dict[str, TuningRecord]:
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a valid tuning DB: {exc}") from exc
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ValueError(f"{path}: not a tuning DB document")
    version = doc.get("version", 0)
    if not 1 <= version <= DB_FORMAT_VERSION:
        raise ValueError(
            f"{path}: tuning DB version {version} not supported "
            f"(this build reads 1..{DB_FORMAT_VERSION})"
        )
    out: dict[str, TuningRecord] = {}
    for fp, entry in doc["entries"].items():
        rec = TuningRecord.from_dict(entry)
        out[fp] = rec
    return out


def _write_file(path: str, entries: Mapping[str, TuningRecord]) -> None:
    doc = {
        "version": DB_FORMAT_VERSION,
        "entries": {
            fp: rec.to_dict() for fp, rec in sorted(entries.items())
        },
    }
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
