"""Persistent tuning database: fingerprint-keyed, JSON, atomic writes.

Tuning is expensive (dozens of measured trials) and graph-specific, so
its product — a planned ``(LouvainConfig, ranks)`` pair with the
evidence behind it — is persisted and reused:

* **exact hit** — a graph whose :meth:`CSRGraph.fingerprint` is already
  in the DB gets its planned config back instantly, no trials;
* **nearest-neighbour fallback** — an unseen graph is served the plan
  of the closest previously-tuned graph in feature space
  (:func:`repro.tune.features.feature_distance`), when one is within
  ``max_distance``.  Structure, not identity, is what the plan actually
  depends on, so a near neighbour's plan transfers.

The on-disk format is a single versioned JSON document.  Writes go
through the same temp-file + atomic-rename discipline as
:mod:`repro.core.resultio`, so a crash mid-save never corrupts the DB,
and the file is human-diffable (sorted keys) for review.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.config import LouvainConfig
from .features import GraphFeatures, feature_distance

#: On-disk document version; bump on incompatible layout changes.
DB_FORMAT_VERSION = 1

#: Default feature-space radius inside which a neighbour's plan is
#: considered transferable.  Vector axes are normalised to ~unit scale
#: (see :meth:`GraphFeatures.vector`), so 0.75 means "same size class
#: and broadly similar shape".
DEFAULT_NEAREST_DISTANCE = 0.75


@dataclass(frozen=True)
class TuningRecord:
    """Everything one tuning run learned about one graph."""

    fingerprint: str
    features: GraphFeatures
    config: LouvainConfig
    ranks: int
    #: Cost-model estimate for the winning candidate.
    predicted_seconds: float
    #: Measured (modelled) full-run seconds of the winning candidate.
    measured_seconds: float
    #: Paper-default baseline: full-run seconds and modularity.
    baseline_seconds: float
    baseline_modularity: float
    tuned_modularity: float
    #: Quality guard: the tuned config must reach at least
    #: ``baseline_modularity - quality_tolerance``.
    quality_tolerance: float
    quality_guard_passed: bool
    #: Search reproducibility inputs.
    tuner_seed: int
    machine: str
    #: Deterministic trial schedule: (rung, candidate key, phase cap).
    schedule: tuple[dict[str, Any], ...] = ()
    #: Full trial log: per-run measured seconds and modularity.
    trials: tuple[dict[str, Any], ...] = ()
    #: Total modelled seconds spent on measured trials (tuning cost).
    tune_seconds: float = 0.0
    #: Unix timestamp of when the record was created.
    created: float = 0.0
    #: Where the plan came from ("search"; responses served via the
    #: nearest-neighbour path tag the donor fingerprint).
    source: str = "search"

    @property
    def speedup(self) -> float:
        """Baseline-over-tuned modelled-time ratio (> 1 is a win)."""
        if self.measured_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.measured_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "features": self.features.to_dict(),
            "config": self.config.to_dict(),
            "ranks": self.ranks,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "baseline_seconds": self.baseline_seconds,
            "baseline_modularity": self.baseline_modularity,
            "tuned_modularity": self.tuned_modularity,
            "quality_tolerance": self.quality_tolerance,
            "quality_guard_passed": self.quality_guard_passed,
            "tuner_seed": self.tuner_seed,
            "machine": self.machine,
            "schedule": list(self.schedule),
            "trials": list(self.trials),
            "tune_seconds": self.tune_seconds,
            "created": self.created,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningRecord":
        return cls(
            fingerprint=str(data["fingerprint"]),
            features=GraphFeatures.from_dict(data["features"]),
            config=LouvainConfig.from_dict(dict(data["config"])),
            ranks=int(data["ranks"]),
            predicted_seconds=float(data["predicted_seconds"]),
            measured_seconds=float(data["measured_seconds"]),
            baseline_seconds=float(data["baseline_seconds"]),
            baseline_modularity=float(data["baseline_modularity"]),
            tuned_modularity=float(data["tuned_modularity"]),
            quality_tolerance=float(data["quality_tolerance"]),
            quality_guard_passed=bool(data["quality_guard_passed"]),
            tuner_seed=int(data["tuner_seed"]),
            machine=str(data["machine"]),
            schedule=tuple(data.get("schedule", ())),
            trials=tuple(data.get("trials", ())),
            tune_seconds=float(data.get("tune_seconds", 0.0)),
            created=float(data.get("created", 0.0)),
            source=str(data.get("source", "search")),
        )

    def summary(self) -> str:
        guard = "ok" if self.quality_guard_passed else "FAILED->baseline"
        return (
            f"plan {self.config.label()} x{self.ranks}: "
            f"{self.measured_seconds:.4f}s vs baseline "
            f"{self.baseline_seconds:.4f}s ({self.speedup:.2f}x), "
            f"Q={self.tuned_modularity:.4f} vs {self.baseline_modularity:.4f} "
            f"[guard {guard}]"
        )


@dataclass
class _NearestHit:
    """A nearest-neighbour lookup result with its distance."""

    record: TuningRecord
    distance: float


class TuningDB:
    """Thread-safe fingerprint-keyed store of :class:`TuningRecord` s.

    ``path=None`` gives an in-memory DB (tests, throwaway engines);
    with a path, the constructor loads any existing file and every
    :meth:`put` persists atomically.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: dict[str, TuningRecord] = {}
        if self.path is not None and os.path.exists(self.path):
            self._entries = _read_file(self.path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def get(self, fingerprint: str) -> TuningRecord | None:
        """Exact-fingerprint lookup."""
        with self._lock:
            return self._entries.get(fingerprint)

    def put(self, record: TuningRecord) -> None:
        """Insert/replace a record and persist (when file-backed)."""
        if not record.created:
            record = _stamp_created(record)
        with self._lock:
            self._entries[record.fingerprint] = record
            if self.path is not None:
                _write_file(self.path, self._entries)

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Persist to ``path`` (default: the DB's own path)."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("in-memory TuningDB has no path to save to")
        with self._lock:
            _write_file(target, self._entries)
        return target

    # ------------------------------------------------------------------
    def nearest(
        self,
        features: GraphFeatures,
        max_distance: float = DEFAULT_NEAREST_DISTANCE,
    ) -> _NearestHit | None:
        """Closest tuned graph in feature space, within ``max_distance``.

        Ties break on fingerprint so lookups are deterministic.
        """
        with self._lock:
            entries = list(self._entries.values())
        best: _NearestHit | None = None
        for rec in sorted(entries, key=lambda r: r.fingerprint):
            d = feature_distance(features, rec.features)
            if d <= max_distance and (best is None or d < best.distance):
                best = _NearestHit(record=rec, distance=d)
        return best


def _stamp_created(record: TuningRecord) -> TuningRecord:
    import dataclasses

    return dataclasses.replace(record, created=time.time())


def _read_file(path: str) -> dict[str, TuningRecord]:
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a valid tuning DB: {exc}") from exc
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ValueError(f"{path}: not a tuning DB document")
    version = doc.get("version", 0)
    if not 1 <= version <= DB_FORMAT_VERSION:
        raise ValueError(
            f"{path}: tuning DB version {version} not supported "
            f"(this build reads 1..{DB_FORMAT_VERSION})"
        )
    out: dict[str, TuningRecord] = {}
    for fp, entry in doc["entries"].items():
        rec = TuningRecord.from_dict(entry)
        out[fp] = rec
    return out


def _write_file(path: str, entries: Mapping[str, TuningRecord]) -> None:
    doc = {
        "version": DB_FORMAT_VERSION,
        "entries": {
            fp: rec.to_dict() for fp, rec in sorted(entries.items())
        },
    }
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
