"""Dynamic (incremental) community detection.

The Grappolo line of work the paper builds on supports *dynamic*
community detection (Halappanavar et al. [14]): when the graph changes
by a small batch of edge insertions/deletions, re-detect communities by
warm-starting Louvain from the previous solution instead of from
singletons.  Only vertices whose neighbourhood changed (and their
ripples) move, so convergence takes far fewer iterations.

This module provides:

* :class:`EdgeChurn` — a batch of insertions and deletions;
* :class:`ChurnAccumulator` — streamed updates folded into one *net*
  batch (repeated add/remove of the same edge deduplicated);
* :func:`apply_churn` — produce the updated graph;
* :func:`incremental_louvain` — warm-started distributed re-detection;
* :func:`churn_statistics` — how disruptive a batch was.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.edgelist import EdgeList
from ..runtime.perfmodel import CORI_HASWELL, MachineModel
from .config import LouvainConfig
from .distlouvain import run_louvain
from .result import LouvainResult


@dataclass(frozen=True)
class EdgeChurn:
    """A batch of graph updates.

    Insertions carry weights; deletions remove the named undirected
    edges entirely (a partial weight decrease is an insertion with a
    negative... no — express it as delete + re-insert).
    """

    add_u: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    add_v: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    add_w: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    del_u: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    del_v: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def __post_init__(self) -> None:
        if not (len(self.add_u) == len(self.add_v) == len(self.add_w)):
            raise ValueError("insertion arrays must have equal length")
        if len(self.del_u) != len(self.del_v):
            raise ValueError("deletion arrays must have equal length")

    @property
    def num_insertions(self) -> int:
        return len(self.add_u)

    @property
    def num_deletions(self) -> int:
        return len(self.del_u)

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique vertices incident to any update."""
        return np.unique(
            np.concatenate([self.add_u, self.add_v, self.del_u, self.del_v])
        )

    @staticmethod
    def random(
        g: CSRGraph,
        insert_fraction: float = 0.01,
        delete_fraction: float = 0.01,
        seed: int = 0,
    ) -> "EdgeChurn":
        """Random churn: delete a fraction of existing edges, insert the
        same order of new random edges (unit weight)."""
        rng = np.random.default_rng(seed)
        eu, ev, _ = g.edge_array()
        m = len(eu)
        n_del = int(delete_fraction * m)
        n_ins = int(insert_fraction * m)
        pick = (
            rng.choice(m, size=n_del, replace=False)
            if n_del
            else np.empty(0, np.int64)
        )
        au = rng.integers(0, g.num_vertices, n_ins).astype(np.int64)
        av = rng.integers(0, g.num_vertices, n_ins).astype(np.int64)
        keep = au != av
        return EdgeChurn(
            add_u=au[keep],
            add_v=av[keep],
            add_w=np.ones(int(keep.sum())),
            del_u=eu[pick],
            del_v=ev[pick],
        )


def apply_churn(g: CSRGraph, churn: EdgeChurn) -> CSRGraph:
    """Return the graph after applying ``churn``.

    Deletions remove whole undirected edges (missing edges are ignored);
    insertions add weight to existing edges or create new ones.
    """
    eu, ev, ew = g.edge_array()
    n = g.num_vertices
    if churn.num_deletions:
        dl = np.minimum(churn.del_u, churn.del_v)
        dh = np.maximum(churn.del_u, churn.del_v)
        del_keys = set(zip(dl.tolist(), dh.tolist()))
        keep = np.array(
            [(int(a), int(b)) not in del_keys for a, b in zip(eu, ev)],
            dtype=bool,
        )
        eu, ev, ew = eu[keep], ev[keep], ew[keep]
    if churn.num_insertions:
        hi = max(
            int(churn.add_u.max()), int(churn.add_v.max())
        ) if churn.num_insertions else -1
        n = max(n, hi + 1)
        eu = np.concatenate([eu, churn.add_u])
        ev = np.concatenate([ev, churn.add_v])
        ew = np.concatenate([ew, churn.add_w])
    return EdgeList.from_arrays(n, eu, ev, ew).to_csr()


class ChurnAccumulator:
    """Fold streamed edge updates into one deduplicated *net* batch.

    The serving tier triggers incremental re-detection when accumulated
    churn crosses a threshold, so the count that matters is the **net**
    effect on the graph, not the raw operation count: a client that adds
    and then removes the same edge within one accumulation window has
    changed nothing, and adding the same edge twice touches one edge,
    not two.  Per normalised edge key ``(min(u, v), max(u, v))``:

    * repeated inserts accumulate their weight but count once;
    * repeated deletes count once;
    * insert followed by delete cancels the insert (the delete is kept —
      deleting an edge absent from the base graph is a no-op, while a
      base edge the window first fattened and then removed must go);
    * delete followed by insert keeps both, which
      :func:`apply_churn` applies as delete-then-insert — i.e. the edge
      ends at exactly the re-inserted weight, matching the sequential
      replay of the window.

    ``net_size`` — the number of distinct edges with a pending
    operation — is what threshold checks should use.
    """

    def __init__(self) -> None:
        self._adds: dict[tuple[int, int], float] = {}
        self._dels: set[tuple[int, int]] = set()
        #: Raw (pre-dedup) operation counts, for observability.
        self.raw_insertions = 0
        self.raw_deletions = 0

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        return (u, v) if u <= v else (v, u)

    def add(self, u: int, v: int, w: float = 1.0) -> None:
        """Record one edge insertion (weights of repeats accumulate)."""
        key = self._key(u, v)
        self._adds[key] = self._adds.get(key, 0.0) + float(w)
        self.raw_insertions += 1

    def remove(self, u: int, v: int) -> None:
        """Record one edge deletion (cancels a pending insert)."""
        key = self._key(u, v)
        self._adds.pop(key, None)
        self._dels.add(key)
        self.raw_deletions += 1

    def add_edges(self, u, v, w=None) -> None:
        """Vectorised :meth:`add` over aligned arrays."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        ws = (
            np.ones(len(u), dtype=np.float64)
            if w is None
            else np.asarray(w, dtype=np.float64)
        )
        if not (len(u) == len(v) == len(ws)):
            raise ValueError("u, v, w must have equal length")
        for a, b, x in zip(u, v, ws):
            self.add(int(a), int(b), float(x))

    def remove_edges(self, u, v) -> None:
        """Vectorised :meth:`remove` over aligned arrays."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if len(u) != len(v):
            raise ValueError("u, v must have equal length")
        for a, b in zip(u, v):
            self.remove(int(a), int(b))

    @property
    def net_size(self) -> int:
        """Distinct edges with a pending net operation."""
        return len(self._adds.keys() | self._dels)

    @property
    def raw_size(self) -> int:
        """Total operations recorded (before deduplication)."""
        return self.raw_insertions + self.raw_deletions

    def __len__(self) -> int:
        return self.net_size

    def __bool__(self) -> bool:
        return self.net_size > 0

    def batch(self) -> EdgeChurn:
        """The pending net churn as one deterministic :class:`EdgeChurn`.

        Edges are emitted in sorted key order so the same stream of
        updates always produces a byte-identical batch (and therefore a
        bit-identical incremental re-detection).
        """
        adds = sorted(self._adds.items())
        dels = sorted(self._dels)
        return EdgeChurn(
            add_u=np.array([k[0] for k, _ in adds], dtype=np.int64),
            add_v=np.array([k[1] for k, _ in adds], dtype=np.int64),
            add_w=np.array([w for _, w in adds], dtype=np.float64),
            del_u=np.array([k[0] for k in dels], dtype=np.int64),
            del_v=np.array([k[1] for k in dels], dtype=np.int64),
        )

    def clear(self) -> None:
        """Reset to an empty window (raw counters included)."""
        self._adds.clear()
        self._dels.clear()
        self.raw_insertions = 0
        self.raw_deletions = 0

    def take(self) -> EdgeChurn:
        """:meth:`batch` then :meth:`clear`, atomically from the
        caller's perspective — the accumulation-window handoff."""
        out = self.batch()
        self.clear()
        return out


def incremental_louvain(
    g_new: CSRGraph,
    previous_assignment: np.ndarray,
    nranks: int = 4,
    config: LouvainConfig | None = None,
    *,
    machine: MachineModel = CORI_HASWELL,
    reset_touched: np.ndarray | None = None,
) -> LouvainResult:
    """Re-detect communities on the updated graph, warm-started.

    Parameters
    ----------
    g_new:
        Graph after the churn.  May have *more* vertices than the
        previous assignment covers: new vertices start as singletons.
    previous_assignment:
        Community per old vertex from the previous detection.
    reset_touched:
        Optional vertex ids to reset to singletons (typically
        ``churn.touched_vertices()``), letting vertices whose
        neighbourhood changed re-decide from scratch while the rest of
        the graph keeps its structure.
    """
    seed = warm_start_assignment(
        g_new, previous_assignment, reset_touched=reset_touched
    )
    return run_louvain(
        g_new,
        nranks,
        config,
        machine=machine,
        initial_assignment=seed,
    )


def warm_start_assignment(
    g_new: CSRGraph,
    previous_assignment: np.ndarray,
    *,
    reset_touched: np.ndarray | None = None,
) -> np.ndarray:
    """Build the warm-start seed labels for an incremental re-detection.

    Extends the previous assignment to any new vertices (fresh
    singletons) and optionally resets the ``reset_touched`` vertices to
    singletons so they re-decide from scratch.  Shared by
    :func:`incremental_louvain` and the detection service's
    ``mode="incremental"`` requests.
    """
    previous_assignment = np.asarray(previous_assignment, dtype=np.int64)
    n_new = g_new.num_vertices
    if len(previous_assignment) > n_new:
        raise ValueError(
            f"previous assignment covers {len(previous_assignment)} "
            f"vertices, new graph has only {n_new}"
        )
    # Extend to new vertices: fresh singleton labels beyond the old range.
    n_old = len(previous_assignment)
    seed = np.empty(n_new, dtype=np.int64)
    seed[:n_old] = previous_assignment
    if n_new > n_old:
        base = int(previous_assignment.max()) + 1 if n_old else 0
        seed[n_old:] = base + np.arange(n_new - n_old, dtype=np.int64)
    if reset_touched is not None and len(reset_touched):
        touched = np.asarray(reset_touched, dtype=np.int64)
        fresh = int(seed.max()) + 1
        seed[touched] = fresh + np.arange(len(touched), dtype=np.int64)
    return seed


@dataclass(frozen=True)
class ChurnStats:
    """How disruptive a churn batch was, relative to the old solution."""

    touched_vertices: int
    touched_fraction: float
    intra_deleted: int
    inter_inserted: int


def churn_statistics(
    churn: EdgeChurn, previous_assignment: np.ndarray
) -> ChurnStats:
    """Classify a churn batch against the previous communities.

    Deleting intra-community edges and inserting inter-community edges
    are the disruptive operations — they are what can make the old
    partition suboptimal.
    """
    previous_assignment = np.asarray(previous_assignment)
    n = len(previous_assignment)
    touched = churn.touched_vertices()
    touched = touched[touched < n]

    def labels(x):
        x = np.asarray(x)
        safe = np.clip(x, 0, n - 1) if n else x
        return previous_assignment[safe] if n else x

    intra_del = int(
        np.sum(labels(churn.del_u) == labels(churn.del_v))
    ) if churn.num_deletions and n else 0
    inter_ins = int(
        np.sum(labels(churn.add_u) != labels(churn.add_v))
    ) if churn.num_insertions and n else 0
    return ChurnStats(
        touched_vertices=len(touched),
        touched_fraction=len(touched) / n if n else 0.0,
        intra_deleted=intra_del,
        inter_inserted=inter_ins,
    )
