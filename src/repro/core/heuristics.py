"""The paper's two performance heuristics (§IV-B).

* :class:`ThresholdCycler` — Threshold Cycling: tau modulated across
  phases following the Fig. 2 schedule, with a forced final pass at the
  lowest tau before declaring convergence (§V-C(a)).
* :class:`EarlyTermination` — the probabilistic vertex activity scheme of
  Eq. 3: ``P(v,k) = P(v,k-1) * (1 - alpha)`` while ``v``'s community is
  unchanged, reset to 1 on a move; permanently inactive below the 2%
  floor.  ETC additionally exits a phase when >= 90% of vertices are
  inactive globally (one extra allreduce).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import LouvainConfig


class ThresholdCycler:
    """Phase-indexed tau schedule (Fig. 2), plus the final-pass rule.

    ``tau_for_phase(k)`` walks the (tau, count) steps cyclically.  When a
    phase converges while its tau is above the schedule minimum, the
    caller must run one more phase at :attr:`final_tau` before stopping
    — :meth:`enter_final_pass` switches the cycler into that mode.
    """

    def __init__(self, config: LouvainConfig):
        self._schedule: list[float] = []
        for tau_k, count in config.threshold_cycle:
            self._schedule.extend([tau_k] * count)
        self.final_tau = config.min_cycle_tau
        self._final_pass = False

    def tau_for_phase(self, phase: int) -> float:
        if self._final_pass:
            return self.final_tau
        return self._schedule[phase % len(self._schedule)]

    @property
    def in_final_pass(self) -> bool:
        return self._final_pass

    def enter_final_pass(self) -> None:
        self._final_pass = True


@dataclass
class ETDecision:
    """Outcome of one ET update step."""

    active: np.ndarray  # bool mask: participates this iteration
    inactive_count: int  # permanently inactive vertices (local)


class EarlyTermination:
    """Per-vertex activity state for one phase (Eq. 3).

    The state is local to a rank (vertex activity needs no communication;
    only ETC's exit test does).  Deterministic given the seed.
    """

    def __init__(
        self,
        num_vertices: int,
        config: LouvainConfig,
        rng: np.random.Generator,
    ):
        self.alpha = config.alpha
        self.floor = config.et_inactive_floor
        self.rng = rng
        self.prob = np.ones(num_vertices, dtype=np.float64)
        self.permanently_inactive = np.zeros(num_vertices, dtype=bool)

    @property
    def num_vertices(self) -> int:
        return len(self.prob)

    def draw_active(self) -> np.ndarray:
        """Sample this iteration's active mask.

        A vertex participates with its current probability; permanently
        inactive vertices never participate (saving their computation
        *and* communication, as §IV-B(b) argues).
        """
        draws = self.rng.random(self.num_vertices)
        active = (draws < self.prob) & ~self.permanently_inactive
        return active

    def update(self, moved: np.ndarray) -> int:
        """Apply Eq. 3 after a sweep; returns local inactive count.

        ``moved`` is a bool mask of vertices whose community changed this
        iteration (``C(v,k-1) != C(v,k-2)`` in the paper's indexing).
        """
        if len(moved) != self.num_vertices:
            raise ValueError("moved mask length mismatch")
        self.prob[moved] = 1.0
        self.permanently_inactive[moved] = False
        stayed = ~moved
        self.prob[stayed] *= 1.0 - self.alpha
        self.permanently_inactive |= self.prob < self.floor
        return int(self.permanently_inactive.sum())

    def inactive_fraction(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return float(self.permanently_inactive.mean())


def make_rank_rng(seed: int, rank: int, phase: int) -> np.random.Generator:
    """Deterministic per-(rank, phase) RNG for the ET draws."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(rank, phase))
    )
