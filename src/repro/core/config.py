"""Configuration for the Louvain variants evaluated in the paper (§V).

The experiment legends map to :class:`Variant` as:

* ``Baseline``          -> ``Variant.BASELINE``
* ``Threshold Cycling`` -> ``Variant.THRESHOLD_CYCLING``
* ``ET(alpha)``         -> ``Variant.ET`` with ``alpha`` set
* ``ETC(alpha)``        -> ``Variant.ETC`` with ``alpha`` set
* ``ET + TC`` (Table VI) -> ``Variant.ET_TC``
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any


class Variant(enum.Enum):
    """Algorithm variants from §IV-B / §V of the paper."""

    BASELINE = "baseline"
    THRESHOLD_CYCLING = "threshold-cycling"
    ET = "et"
    ETC = "etc"
    ET_TC = "et+tc"

    @property
    def uses_early_termination(self) -> bool:
        return self in (Variant.ET, Variant.ETC, Variant.ET_TC)

    @property
    def uses_threshold_cycling(self) -> bool:
        return self in (Variant.THRESHOLD_CYCLING, Variant.ET_TC)

    @property
    def uses_inactive_exit(self) -> bool:
        """ETC's extra collective: exit phase on global inactive count."""
        return self is Variant.ETC


#: Fig. 2 schedule: phases 0-2 at 1e-3, 3-6 at 1e-4, 7-9 at 1e-5,
#: 10-12 at 1e-6, then the pattern repeats.
DEFAULT_THRESHOLD_CYCLE: tuple[tuple[float, int], ...] = (
    (1e-3, 3),
    (1e-4, 4),
    (1e-5, 3),
    (1e-6, 3),
)


#: Fields that determine the detection outcome (assignment, modularity,
#: per-phase statistics).  The complement — bit-identical transport
#: ablations and debug auditing — is deliberately outside the cache key
#: so e.g. a push-transport request can be served from a pull-transport
#: cached result.
CACHE_KEY_FIELDS = frozenset(
    {
        "variant",
        "tau",
        "alpha",
        "et_inactive_floor",
        "etc_exit_fraction",
        "threshold_cycle",
        "max_phases",
        "max_iterations",
        "seed",
        "use_coloring",
        "vertex_following",
        "refine",
        "resolution",
        "track_assignments",
        # Layout-only by design — assignments and modularity stay
        # bit-identical — but checkpoints store the partitioned graph,
        # so resuming across repartition modes must be refused.
        "repartition",
    }
)

#: Machine-readable justification for every field left out of
#: :data:`CACHE_KEY_FIELDS`.  Each value is ``"<kind>: <reason>"`` where
#: the kind is one of the exclusion categories the lint config-drift
#: rules (SPMD301/SPMD302) understand: ``transport`` — the knob changes
#: how data moves between ranks, never what is computed; ``audit`` —
#: the knob adds verification work executed identically by every rank.
#: Both kinds are *schedule-safe*: they may legitimately change which
#: collectives run without invalidating a cached detection result.
CACHE_KEY_EXCLUSIONS = {
    "use_neighbor_collectives": (
        "transport: neighborhood vs point-to-point halo exchange moves "
        "the same bytes; assignments and modularity are bit-identical"
    ),
    "ghost_delta_updates": (
        "transport: delta vs full ghost refresh converges to the same "
        "ghost state each round"
    ),
    "community_push_updates": (
        "transport: push vs pull community info exchange is a wire-"
        "protocol choice with bit-identical results"
    ),
    "validate_invariants": (
        "audit: adds replicated verification collectives; detection "
        "output is unchanged"
    ),
}


@dataclass(frozen=True)
class LouvainConfig:
    """All knobs of the (distributed) Louvain implementation.

    Defaults follow the paper: ``tau = 1e-6`` (Algorithm 2), ET inactive
    floor 2%, ETC exit at 90% inactive, Fig. 2 threshold cycle.
    """

    variant: Variant = Variant.BASELINE
    #: Convergence threshold tau (both iteration- and phase-level).
    tau: float = 1e-6
    #: ET decay parameter alpha in Eq. 3 (paper evaluates 0.25 / 0.75).
    alpha: float = 0.25
    #: Probability below which a vertex is labelled permanently inactive.
    et_inactive_floor: float = 0.02
    #: Global inactive fraction at which ETC exits the phase.
    etc_exit_fraction: float = 0.90
    #: (tau, phase-count) steps of the cycling schedule.
    threshold_cycle: tuple[tuple[float, int], ...] = DEFAULT_THRESHOLD_CYCLE
    #: Safety caps (the algorithm normally converges well before these).
    max_phases: int = 40
    max_iterations: int = 500
    #: RNG seed for the ET probabilistic scheme.
    seed: int = 0
    #: Use MPI-3-style neighbourhood collectives for ghost exchange
    #: (paper §VI future work; ablation knob).
    use_neighbor_collectives: bool = False
    #: Distance-1 coloring: process mutually non-adjacent vertex sets
    #: one after another (paper §VI future work).  More synchronisation
    #: per iteration, fewer iterations to converge.
    use_coloring: bool = False
    #: Grappolo's vertex-following heuristic (Lu & Halappanavar,
    #: arXiv:1410.1237 §4.1): merge every single-degree vertex into its
    #: sole neighbour *before* phase 1 via one extra coarsening, then
    #: un-merge exactly through the usual original-vertex projection.
    #: Leaves can never improve modularity by sitting alone, so this
    #: shrinks phase 1 without changing what communities are reachable.
    #: Skipped on warm starts and checkpoint resumes (the seed already
    #: encodes a community structure to respect).
    vertex_following: bool = False
    #: Post-phase refinement: "leiden" splits internally disconnected
    #: communities (the known Louvain defect, Traag et al. 2019) into
    #: their connected components after every phase's sweep.  Splitting
    #: along zero-edge cuts never lowers modularity.
    refine: str = "none"
    #: Only ship ghost community values that changed since the last
    #: exchange (the "further sophistication" §IV-B(b) sketches —
    #: unmoved vertices' ghost copies are already correct).
    ghost_delta_updates: bool = False
    #: Owner-push incremental community-info exchange: ranks subscribe
    #: to the remote communities they reference and owners push fresh
    #: ``(a_c, |c|)`` only for subscribed communities that *changed*,
    #: fused into the end-of-round delta exchange — one round trip per
    #: iteration instead of the pull protocol's three alltoalls (the
    #: §V-A "Community" traffic, ~34% of Baseline runtime).  Results
    #: are bit-identical to the pull protocol.
    community_push_updates: bool = False
    #: Resolution parameter gamma: Q_gamma = sum_c [in_c/W - g(a_c/W)^2].
    #: gamma > 1 favours more, smaller communities — the standard remedy
    #: for the resolution limit the paper's §I discusses [12], [30].
    resolution: float = 1.0
    #: Gather per-phase vertex-community associations to rank 0
    #: ("quality assessment feature", §V-D).  Costs extra collectives.
    track_assignments: bool = False
    #: Phase-boundary layout: "none" re-establishes the paper's even
    #: split at every reconstruction (§IV-A step 6); "community" places
    #: whole coarse communities on ranks via the greedy repartitioner,
    #: shrinking the next phase's ghost fraction at the source.
    #: Assignments and modularity are bit-identical either way for the
    #: deterministic variants on integer-weighted graphs (every float is
    #: then an order-independent integer sum); ET/ETC randomness and
    #: arbitrary float weights are layout-sensitive in the last ulp,
    #: exactly as changing the rank count is.
    repartition: str = "none"
    #: Debug mode: audit the distributed state (C_info vs ground truth,
    #: partition sanity, ghost coherence) after every phase and raise on
    #: any inconsistency.  Expensive; for tests and debugging.
    validate_invariants: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {self.tau}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.et_inactive_floor < 1.0:
            raise ValueError(
                f"et_inactive_floor must be in [0, 1), got "
                f"{self.et_inactive_floor}"
            )
        if not 0.0 < self.etc_exit_fraction <= 1.0:
            raise ValueError(
                f"etc_exit_fraction must be in (0, 1], got "
                f"{self.etc_exit_fraction}"
            )
        if self.max_phases < 1 or self.max_iterations < 1:
            raise ValueError("max_phases and max_iterations must be >= 1")
        if self.resolution <= 0.0:
            raise ValueError(
                f"resolution must be > 0, got {self.resolution}"
            )
        if self.refine not in ("none", "leiden"):
            raise ValueError(
                f"refine must be 'none' or 'leiden', got {self.refine!r}"
            )
        if self.repartition not in ("none", "community"):
            raise ValueError(
                f"repartition must be 'none' or 'community', got "
                f"{self.repartition!r}"
            )
        if not self.threshold_cycle:
            raise ValueError("threshold_cycle must be non-empty")
        for tau_k, count in self.threshold_cycle:
            if not 0.0 < tau_k < 1.0 or count < 1:
                raise ValueError(
                    f"bad threshold_cycle step ({tau_k}, {count})"
                )

    @property
    def min_cycle_tau(self) -> float:
        """Lowest tau in the cycling schedule (the forced final pass)."""
        return min(t for t, _ in self.threshold_cycle)

    def with_variant(self, variant: Variant, **kwargs) -> "LouvainConfig":
        return replace(self, variant=variant, **kwargs)

    def label(self) -> str:
        """Legend string matching the paper's figures/tables."""
        if self.variant is Variant.BASELINE:
            return "Baseline"
        if self.variant is Variant.THRESHOLD_CYCLING:
            return "Threshold Cycling"
        if self.variant is Variant.ET:
            return f"ET({self.alpha:g})"
        if self.variant is Variant.ETC:
            return f"ETC({self.alpha:g})"
        return f"ET({self.alpha:g})+TC"

    # ------------------------------------------------------------------
    # Canonical serialization / content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict of every field (round-trips via :meth:`from_dict`)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Variant):
                value = value.value
            elif f.name == "threshold_cycle":
                value = [[float(t), int(c)] for t, c in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LouvainConfig":
        """Rebuild a config from :meth:`to_dict` output (or a subset).

        Missing keys take their defaults; unknown keys raise
        :class:`ValueError` (typo safety for job-spec files).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown LouvainConfig field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "variant" in kwargs and not isinstance(kwargs["variant"], Variant):
            kwargs["variant"] = Variant(kwargs["variant"])
        if "threshold_cycle" in kwargs:
            kwargs["threshold_cycle"] = tuple(
                (float(t), int(c)) for t, c in kwargs["threshold_cycle"]
            )
        return cls(**kwargs)

    def cache_key(self) -> str:
        """Stable content hash over the semantically meaningful fields.

        Two configs hash equal iff they request the same detection
        *outcome*: transport knobs (``use_neighbor_collectives``,
        ``ghost_delta_updates``, ``community_push_updates``) are
        excluded because their results are proven bit-identical, and
        ``validate_invariants`` is excluded because it only audits.
        Field order never matters (keys are sorted), so the hash is
        stable across dataclass reordering and process restarts.  Used
        as the config half of the result-store cache key and recorded
        in checkpoint manifests to refuse cross-config resumes.
        """
        payload = {
            name: value
            for name, value in self.to_dict().items()
            if name in CACHE_KEY_FIELDS
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Ready-made configs for the variant sweep the paper reports.
PAPER_VARIANTS: tuple[LouvainConfig, ...] = (
    LouvainConfig(variant=Variant.BASELINE),
    LouvainConfig(variant=Variant.THRESHOLD_CYCLING),
    LouvainConfig(variant=Variant.ET, alpha=0.25),
    LouvainConfig(variant=Variant.ET, alpha=0.75),
    LouvainConfig(variant=Variant.ETC, alpha=0.25),
    LouvainConfig(variant=Variant.ETC, alpha=0.75),
)
