"""Distributed-memory parallel Louvain (the paper's Algorithms 2-4).

SPMD structure (executed identically on every rank):

Phase loop (Algorithm 2)
    * ``ExchangeGhostVertices`` — one-time-per-phase ghost coordinate
      exchange (Algorithm 4; :meth:`DistGraph.build_ghost_plan`);
    * iteration loop (Algorithm 3):

      i.   receive latest community assignment of every ghost vertex
           (lines 4-5; bulk refresh, category ``ghost_comm``);
      ii.  fetch current ``a_c``/size for every community referenced by
           this iteration's *active* vertices from the community owners
           (category ``community_comm``);
      iii. snapshot sweep: compute the best move for every active local
           vertex against the fetched state (lines 6-9; the shared
           kernel from :mod:`repro.core.sweep`);
      iv.  push ``a_c``/size deltas of the moves to community owners,
           who apply them (lines 10-11, category ``community_comm``);
      v.   one global allreduce combines the modularity partials, move
           and activity counters (lines 12-13, category ``allreduce``);
      vi.  tau test; plus ETC's extra inactive-count allreduce and its
           90% exit when enabled (§IV-B(b)).

    * distributed graph reconstruction (§IV-A(b); :mod:`~.coarsen`).

Community ids live in the vertex-id space, and a community is owned by
the rank owning the same-numbered vertex, so owners keep *dense*
``a_c``/size arrays over their vertex interval — the ``C_info`` vector
of Algorithm 3.

Consistency semantics are the paper's: within an iteration every rank
decides against state from the last synchronisation point, so remote
community updates lag by one exchange (§III-B).  This is why the final
modularity can differ slightly from the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.distgraph import DistGraph, split_by_rank
from ..runtime.comm import Communicator
from ..runtime.executor import SPMDResult, run_spmd
from ..runtime.perfmodel import CORI_HASWELL, MachineModel
from .coarsen import rebuild_distributed, remote_lookup
from .commcache import CommunityCache, aggregate_deltas
from .config import LouvainConfig
from .heuristics import EarlyTermination, ThresholdCycler, make_rank_rng
from .refine import refine_communities
from .result import IterationStats, LouvainResult, PhaseStats, normalize_assignment
from .sweep import propose_moves, sorted_lookup


@dataclass
class _PhaseOutcome:
    """What one phase hands back to the phase loop."""

    local_comm: np.ndarray
    ghost_comm: np.ndarray
    modularity: float
    stats: list[IterationStats]
    exited_by_inactive: bool
    #: Owner-side C_info at phase end (exposed for the debug audits).
    tot_owned: np.ndarray | None = None
    size_owned: np.ndarray | None = None


class _GhostChannel:
    """Per-phase ghost community refresh (Algorithm 3, lines 4-5).

    Two transports:

    * full refresh (the paper's baseline): every owned vertex's current
      community ships to every rank ghosting it, each call;
    * delta refresh (``config.ghost_delta_updates``, the optimization
      §IV-B(b) sketches as "further sophistication"): only vertices
      whose community changed since the last send are shipped, since a
      ghost copy of an unmoved vertex is already correct.
    """

    def __init__(self, dg: DistGraph, plan, config: LouvainConfig):
        self.dg = dg
        self.plan = plan
        self.delta = config.ghost_delta_updates
        self.neighbor = config.use_neighbor_collectives
        self._ghost: np.ndarray | None = None
        self._last_sent: np.ndarray | None = None
        self._send_cat: np.ndarray | None = None
        self._send_rank: np.ndarray | None = None
        self._send_loc: np.ndarray | None = None

    def send_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened ghost send plan: (owned vertex id, destination rank)
        pairs.  Built once; shared by the delta refresh and the push
        protocol's subscription hints (the ranks ghosting a vertex are
        the ranks that will reference its community next round)."""
        if self._send_cat is None:
            items = sorted(self.plan.send_ids.items())
            self._send_cat = (
                np.concatenate([ids for _, ids in items])
                if items
                else np.empty(0, np.int64)
            )
            self._send_rank = (
                np.repeat(
                    np.array([r for r, _ in items], dtype=np.int64),
                    [len(ids) for _, ids in items],
                )
                if items
                else np.empty(0, np.int64)
            )
        return self._send_cat, self._send_rank

    def send_local(self) -> np.ndarray:
        """Local slots of the send-plan vertices (cached ``to_local``)."""
        if self._send_loc is None:
            send_cat, _ = self.send_pairs()
            self._send_loc = np.asarray(self.dg.to_local(send_cat))
        return self._send_loc

    def refresh(self, comm: Communicator, local_comm: np.ndarray) -> np.ndarray:
        if not self.delta or self._ghost is None:
            self._ghost = self.dg.exchange_ghost_values(
                comm,
                self.plan,
                local_comm,
                category="ghost_comm",
                use_neighbor_collectives=self.neighbor,
            )
            self._last_sent = local_comm.copy()
            # The delta flag is config (replicated) and the first-call
            # full refresh happens on the same round everywhere, so the
            # branch is taken in lockstep.
            return self._ghost  # spmdlint: ignore[SPMD002]
        return self._exchange_changed(comm, local_comm)

    def publish(
        self, comm: Communicator, local_comm: np.ndarray
    ) -> np.ndarray:
        """Ship values changed since the last exchange, whatever the
        transport.  Used after the sweep so the modularity estimate sees
        the post-move assignment of every ghost; the sweep's own next
        ``refresh`` then sends nothing new (delta mode) or identical
        full values (baseline mode), so move trajectories are untouched.
        """
        if self._ghost is None:
            # Replicated: every rank performs the first (full) refresh
            # together, so the delta buffer exists on all ranks or none.
            return self.refresh(comm, local_comm)  # spmdlint: ignore[SPMD002]
        return self._exchange_changed(comm, local_comm)

    def _exchange_changed(
        self, comm: Communicator, local_comm: np.ndarray
    ) -> np.ndarray:
        send_cat, send_rank = self.send_pairs()
        send_loc = self.send_local()
        changed = local_comm != self._last_sent
        m = changed[send_loc]
        sel = send_cat[m]
        payloads = split_by_rank(
            send_rank[m], comm.size, sel, local_comm[send_loc[m]]
        )
        received = comm.alltoall(payloads, category="ghost_comm")
        for r, (ids, values) in enumerate(received):
            if r == comm.rank or not len(ids):
                continue
            slots = np.searchsorted(self.plan.ghost_ids, ids)
            self._ghost[slots] = values
        self._last_sent = local_comm.copy()
        return self._ghost


def _sweep_round(
    comm: Communicator,
    dg: DistGraph,
    ghosts: _GhostChannel,
    ctargets: np.ndarray,
    rows: np.ndarray,
    self_mask: np.ndarray,
    k: np.ndarray,
    local_comm: np.ndarray,
    tot_owned: np.ndarray,
    size_owned: np.ndarray,
    active: np.ndarray,
    config: LouvainConfig,
    cache: CommunityCache | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Steps (i)-(iv) of one Louvain iteration for one active set.

    Returns ``(new local_comm, moved mask, ghost_comm snapshot, moves)``.
    The baseline calls this once per iteration with the full active set;
    the coloring mode (§VI) calls it once per colour class.

    With ``cache`` set (``config.community_push_updates``), steps (ii)
    and (iv) run the owner-push protocol: community info comes from the
    subscription cache (plus a targeted fallback pull on first touch)
    and the delta exchange fuses the owners' pushes into its reply leg —
    one exchange per round instead of three alltoalls, with payload
    proportional to the number of *changed* communities.  Results are
    bit-identical to the pull protocol either way.
    """
    w = dg.total_weight

    # (i) latest ghost vertex community assignments (lines 4-5).
    ghost_comm = ghosts.refresh(comm, local_comm)
    target_comm = (
        np.concatenate([local_comm, ghost_comm])[ctargets]
        if len(ctargets)
        else np.empty(0, dtype=np.int64)
    )

    # (ii) fetch a_c and |c| for the communities this round evaluates:
    # neighbours of active vertices + their own.
    if len(target_comm):
        needed = np.unique(
            np.concatenate([target_comm[active[rows]], local_comm[active]])
        )
    else:
        needed = np.unique(local_comm[active])
    if cache is not None:
        prefetch = None
        if cache.cold:
            # Cold start: pull every community this rank's vertices
            # could reference (all neighbour communities and own ones,
            # active or not) so later rounds never miss — new ids can
            # then only arrive through hinted ghost moves.
            prefetch = (
                np.unique(np.concatenate([target_comm, local_comm]))
                if len(target_comm)
                else np.unique(local_comm)
            )
        needed_tot, needed_size = cache.fetch(
            comm, needed, tot_owned, size_owned, prefetch=prefetch
        )
    else:
        needed_tot, needed_size = _fetch_community_info(
            comm, dg, needed, tot_owned, size_owned
        )

    # (iii) local move computation (lines 6-9).
    res = propose_moves(
        index=dg.index,
        target_comm=target_comm,
        weights=dg.weights,
        self_mask=self_mask,
        degrees=k,
        cur_comm=local_comm,
        total_weight=w,
        tot_lookup=sorted_lookup(needed, needed_tot),
        size_lookup=sorted_lookup(needed, needed_size),
        active=active,
        resolution=config.resolution,
    )
    scanned = int(active[rows].sum()) if len(rows) else 0
    comm.charge_compute(res.pairs_evaluated + scanned + dg.num_local)

    # (iv) send community updates to owner processes (lines 10-11).
    moved = res.moved
    if cache is not None:
        # Subscription hints: every rank ghosting a moved vertex will
        # reference its new community next round — subscribe them now,
        # through the owner, so the info rides this exchange's push leg
        # instead of a fallback pull next round.
        send_cat, send_rank = ghosts.send_pairs()
        send_loc = ghosts.send_local()
        hm = moved[send_loc]
        cache.exchange_deltas(
            comm,
            old=local_comm[moved],
            new=res.proposal[moved],
            deg=k[moved],
            tot_owned=tot_owned,
            size_owned=size_owned,
            hint_ids=res.proposal[send_loc[hm]],
            hint_ranks=send_rank[hm],
        )
    else:
        _apply_community_deltas(
            comm,
            dg,
            old=local_comm[moved],
            new=res.proposal[moved],
            deg=k[moved],
            tot_owned=tot_owned,
            size_owned=size_owned,
        )
    return res.proposal, moved, ghost_comm, res.num_moves


def louvain_phase_distributed(
    comm: Communicator,
    dg: DistGraph,
    tau: float,
    config: LouvainConfig,
    phase: int,
    initial_assignment: np.ndarray | None = None,
    checkpoint_hook=None,
    resume_state=None,
) -> _PhaseOutcome:
    """Algorithm 3: the Louvain iterations of one phase at this rank.

    ``initial_assignment`` (community id per *owned* vertex, in the
    global vertex-id space) seeds the phase instead of singletons —
    the hook the dynamic/incremental mode uses to warm-start from a
    previous solution.

    ``checkpoint_hook`` (resilience subsystem) is called at the end of
    every non-final iteration with the live loop state, so mid-phase
    checkpoints can be cut; ``resume_state`` (a
    :class:`repro.resilience.louvain_state.IterationState`) rejoins the
    iteration loop from such a checkpoint instead of the singleton
    state.  Both are collective-consistent: the hook fires at the same
    iterations on every rank.
    """
    plan = dg.build_ghost_plan(comm)
    ctargets = dg.compressed_targets(plan)
    nloc = dg.num_local
    w = dg.total_weight
    n_global = dg.num_global_vertices
    k = dg.local_degrees()
    rows = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(dg.index))
    self_mask = dg.edges == dg.from_local(rows)

    # Each vertex starts in its own community; owners of the community id
    # set coincide with owners of the vertex set, so C_info is dense over
    # the owned slots.
    local_comm = dg.local_vertex_ids().copy()
    tot_owned = k.copy()
    size_owned = np.ones(nloc, dtype=np.int64)
    ghosts = _GhostChannel(dg, plan, config)
    # Owner-push community-info protocol (perf knob; bit-identical to
    # pull).  Per-phase lifetime: community ids live in this graph's
    # vertex-id space.  The warm-start / resume delta applications below
    # predate any subscription, so they can keep using the plain pull
    # path — the cache starts cold and fills via first-touch pulls.
    cache = (
        CommunityCache(
            dg, comm.size, sparse=config.use_neighbor_collectives
        )
        if config.community_push_updates
        else None
    )

    if initial_assignment is not None:
        # Warm start: treat the seed as a batch of moves from the
        # singleton state, so the owner-side C_info updates flow through
        # the same delta machinery as regular iterations.
        seed_comm = np.asarray(initial_assignment, dtype=np.int64)
        if len(seed_comm) != nloc:
            raise ValueError(
                f"initial_assignment covers {len(seed_comm)} vertices, "
                f"rank owns {nloc}"
            )
        moved0 = seed_comm != local_comm
        _apply_community_deltas(
            comm,
            dg,
            old=local_comm[moved0],
            new=seed_comm[moved0],
            deg=k[moved0],
            tot_owned=tot_owned,
            size_owned=size_owned,
        )
        local_comm = seed_comm.copy()

    # §VI future work: distance-1 coloring so concurrently processed
    # vertices are mutually non-adjacent (one sweep per colour class).
    color_classes: list[np.ndarray] | None = None
    if config.use_coloring:
        from .coloring import distributed_coloring

        colors = distributed_coloring(comm, dg, plan, seed=config.seed)
        num_colors = int(comm.allreduce(
            int(colors.max()) + 1 if nloc else 0, op="max",
            category="other",
        ))
        color_classes = [colors == c for c in range(num_colors)]

    et = (
        EarlyTermination(
            nloc, config, make_rank_rng(config.seed, comm.rank, phase)
        )
        if config.variant.uses_early_termination
        else None
    )

    stats: list[IterationStats] = []
    prev_q = -np.inf
    q = 0.0
    ghost_comm = np.empty(0, dtype=np.int64)
    exited_by_inactive = False
    start_it = 0

    if resume_state is not None:
        # Rejoin the loop exactly where the checkpoint was cut.  The
        # ghost channel is fresh, so the first refresh is a full one —
        # it reproduces the same ghost values the uninterrupted run's
        # (possibly delta) refresh would hold at this point.
        local_comm = resume_state.local_comm.astype(np.int64).copy()
        tot_owned = resume_state.tot_owned.astype(np.float64).copy()
        size_owned = resume_state.size_owned.astype(np.int64).copy()
        stats = list(resume_state.stats)
        prev_q = resume_state.prev_q
        q = resume_state.q
        start_it = resume_state.iteration + 1
        if et is not None and resume_state.et_prob is not None:
            et.prob = resume_state.et_prob.astype(np.float64).copy()
            et.permanently_inactive = resume_state.et_inactive.astype(
                bool
            ).copy()
            et.rng.bit_generator.state = resume_state.et_rng_state

    for it in range(start_it, config.max_iterations):
        # ET: vertices mark themselves active/inactive first (§IV-B(b)).
        active = et.draw_active() if et is not None else np.ones(nloc, bool)

        moved = np.zeros(nloc, dtype=bool)
        moves = 0
        rounds = (
            [active]
            if color_classes is None
            else [active & cls for cls in color_classes]
        )
        # Trip count is len(rounds) — 1, or the allreduced colour count
        # — replicated even though each round's active *mask* is
        # rank-local (the mask only gates local move proposals).
        for round_active in rounds:  # spmdlint: ignore[SPMD001, SPMD004]
            local_comm, round_moved, ghost_comm, n = _sweep_round(
                comm, dg, ghosts, ctargets, rows, self_mask, k,
                local_comm, tot_owned, size_owned, round_active, config,
                cache=cache,
            )
            moved |= round_moved
            moves += n

        # (v) global modularity (lines 12-13).  Publish this round's
        # moves first (a changed-values-only payload) so both sides of
        # every stored entry evaluate under the *post-move* assignment:
        # the estimate is then a function of the global assignment alone
        # and cannot depend on which endpoints happen to be rank-local
        # under the current layout (a requirement for repartitioned runs
        # to stay bit-identical).  The sweep itself keeps the
        # intentionally stale view of §III-B — only the convergence test
        # sees fresh values.
        ghost_comm = ghosts.publish(comm, local_comm)
        if len(ctargets):
            target_after = np.concatenate(
                [local_comm, ghost_comm]
            )[ctargets]
            intra = local_comm[rows] == target_after
            local_in = float(dg.weights[intra].sum())
        else:
            local_in = 0.0
        comm.charge_compute(dg.num_local_entries)
        local_inactive = et.update(moved) if et is not None else 0
        # a_c^2 is summed *before* dividing by w^2 (like
        # _exact_modularity) so the reduction is exact for integer
        # weights — the per-rank grouping of communities then cannot
        # perturb Q, which keeps repartitioned layouts bit-identical.
        partial = np.array(
            [
                local_in,
                float(np.square(tot_owned).sum()),
                float(moves),
                float(active.sum()),
            ]
        )
        total = comm.allreduce(partial, category="allreduce")
        q = (
            total[0] / w - config.resolution * total[1] / (w * w)
            if w > 0
            else 0.0
        )

        stats.append(
            IterationStats(
                phase=phase,
                iteration=it,
                modularity=q,
                moves=int(total[2]),
                active_fraction=(total[3] / n_global) if n_global else 1.0,
                inactive_fraction=0.0 if et is None else -1.0,  # fixed below
            )
        )

        # (vi) exit tests.
        if config.variant.uses_inactive_exit:
            # ETC's extra remote communication: global inactive count.
            global_inactive = comm.allreduce(
                local_inactive, category="allreduce"
            )
            frac = global_inactive / n_global if n_global else 0.0
            stats[-1] = _with_inactive(stats[-1], frac)
            if frac >= config.etc_exit_fraction:
                exited_by_inactive = True
                break
        elif et is not None:
            # ET tracks only its local view (no extra collective).
            stats[-1] = _with_inactive(stats[-1], et.inactive_fraction())
        if q - prev_q <= tau:
            break
        prev_q = q
        if checkpoint_hook is not None:
            # The phase continues past this iteration on every rank
            # (all exit tests are derived from replicated global
            # values), so cutting a checkpoint here is collective-safe.
            checkpoint_hook(
                {
                    "iteration": it,
                    "prev_q": prev_q,
                    "q": q,
                    "stats": stats,
                    "local_comm": local_comm,
                    "tot_owned": tot_owned,
                    "size_owned": size_owned,
                    "et": et,
                }
            )

    # Refresh ghosts one last time so reconstruction sees final state.
    ghost_comm = ghosts.refresh(comm, local_comm)
    return _PhaseOutcome(
        local_comm=local_comm,
        ghost_comm=ghost_comm,
        modularity=q,
        stats=stats,
        exited_by_inactive=exited_by_inactive,
        tot_owned=tot_owned,
        size_owned=size_owned,
    )


def _with_inactive(s: IterationStats, frac: float) -> IterationStats:
    return IterationStats(
        phase=s.phase,
        iteration=s.iteration,
        modularity=s.modularity,
        moves=s.moves,
        active_fraction=s.active_fraction,
        inactive_fraction=frac,
    )


def _fetch_community_info(
    comm: Communicator,
    dg: DistGraph,
    needed: np.ndarray,
    tot_owned: np.ndarray,
    size_owned: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Pull current (a_c, |c|) for each community id in ``needed``.

    Owners answer from their dense C_info arrays.  Two alltoalls
    (request + reply), charged to ``community_comm`` — the traffic the
    paper's §V-A profile attributes ~34% of the runtime to.
    """
    owners = np.asarray(dg.owner_of(needed))
    # ``needed`` is sorted; split_by_rank keeps that order within each
    # rank's slice (stable), so payloads stay deterministic even when a
    # general partition makes ``owners`` non-monotonic.
    requests = [
        ids if r != comm.rank else np.empty(0, np.int64)
        for r, (ids,) in enumerate(split_by_rank(owners, comm.size, needed))
    ]
    incoming = comm.alltoall(requests, category="community_comm")
    replies = []
    for ids in incoming:
        if len(ids):
            loc = dg.to_local(ids)
            replies.append(
                np.stack([tot_owned[loc], size_owned[loc].astype(np.float64)])
            )
        else:
            replies.append(np.empty((2, 0)))
    answers = comm.alltoall(replies, category="community_comm")

    tot_out = np.empty(len(needed), dtype=np.float64)
    size_out = np.empty(len(needed), dtype=np.int64)
    mine = owners == comm.rank
    if np.any(mine):
        loc = dg.to_local(needed[mine])
        tot_out[mine] = tot_owned[loc]
        size_out[mine] = size_owned[loc]
    for r in range(comm.size):
        sent = requests[r]
        if len(sent):
            slots = np.searchsorted(needed, sent)
            tot_out[slots] = answers[r][0]
            size_out[slots] = answers[r][1].astype(np.int64)
    return tot_out, size_out


def _apply_community_deltas(
    comm: Communicator,
    dg: DistGraph,
    old: np.ndarray,
    new: np.ndarray,
    deg: np.ndarray,
    tot_owned: np.ndarray,
    size_owned: np.ndarray,
) -> None:
    """Route (a_c, |c|) deltas of this rank's moves to community owners.

    Every rank participates in the exchange even with zero moves (the
    collective is unconditional in Algorithm 3).
    """
    # Pre-aggregate duplicates before communicating (shared with the
    # push protocol so both accumulate in the same order).
    uniq, agg_tot, agg_size = aggregate_deltas(old, new, deg)
    outgoing = split_by_rank(
        dg.owner_of(uniq), comm.size, uniq, agg_tot, agg_size
    )
    received = comm.alltoall(outgoing, category="community_comm")

    for r, (rids, rtot, rsize) in enumerate(received):
        if len(rids):
            loc = dg.to_local(rids)
            np.add.at(tot_owned, loc, rtot)
            np.add.at(size_owned, loc, rsize)


def _exact_modularity(
    comm: Communicator, dg: DistGraph, resolution: float = 1.0
) -> float:
    """Exact Q of the singleton partition of ``dg``.

    On a freshly coarsened graph this is the exact modularity of the
    phase's final communities: each meta vertex's self loop carries the
    intra-community weight (in_c) and its degree is the community's
    incident weight (a_c).  One small allreduce.
    """
    w = dg.total_weight
    if w <= 0:
        # total_weight is replicated at distribution time, so every rank
        # agrees on this exit.
        return 0.0  # spmdlint: ignore[SPMD002]
    partial = np.array(
        [float(dg.local_self_loops().sum()),
         float(np.square(dg.local_degrees()).sum())]
    )
    total = comm.allreduce(partial, category="allreduce")
    return float(total[0] / w - resolution * total[1] / (w * w))


def _check_resume_config(manifest, config: LouvainConfig | None) -> None:
    """Refuse to resume under semantics the checkpoint was not taken with.

    Pre-key manifests (empty ``config_key``) are accepted for backward
    compatibility.  Config and manifest are replicated across ranks, so
    raising here is SPMD-safe (all ranks raise together).
    """
    if config is None or not getattr(manifest, "config_key", ""):
        return
    if manifest.config_key != config.cache_key():
        raise ValueError(
            f"checkpoint {manifest.directory} was written by config "
            f"[{manifest.label}] (key {manifest.config_key[:12]}…) but "
            f"the resuming config is [{config.label()}] (key "
            f"{config.cache_key()[:12]}…); resuming across configs "
            "would corrupt the run"
        )


def _load_restored_state(comm: Communicator, manager, config=None):
    """Fetch this rank's checkpointed state for ``resume=True``.

    Prefers state attached by ``run_spmd(..., restore_from=...)`` (the
    world's clocks are already resumed there); otherwise performs the
    collective load through the checkpoint manager and resumes the
    clock here.
    """
    from ..resilience.louvain_state import unpack_rank_state

    attached = getattr(comm, "restored", None)
    if attached is not None:
        attached.consumed = True
        _check_resume_config(attached.manifest, config)
        # run_spmd(restore_from=...) attaches restored state to every
        # rank's communicator or to none, so all ranks exit here
        # together.
        return unpack_rank_state(  # spmdlint: ignore[SPMD002]
            comm.rank, attached.meta, attached.arrays
        )
    if manager is None:
        raise ValueError(
            "resume=True requires checkpoint_dir= or a world restored "
            "via run_spmd(..., restore_from=...)"
        )
    manifest, meta, arrays = manager.load_latest(comm)
    _check_resume_config(manifest, config)
    state = unpack_rank_state(comm.rank, meta, arrays)
    # Resumed modelled time = time at the checkpoint + restore cost
    # accrued so far on this fresh world.
    comm.clock += state.clock
    return state


def _save_checkpoint(
    manager,
    comm: Communicator,
    *,
    kind: str,
    phase: int,
    iteration: int,
    dg: DistGraph,
    orig_slice: np.ndarray,
    prev_mod: float,
    final_mod: float,
    phases: list[PhaseStats],
    iterations: list[IterationStats],
    cycler: ThresholdCycler | None,
    seed_assignment: np.ndarray | None = None,
    phase_assignments: list[np.ndarray] | None = None,
    iteration_state=None,
) -> None:
    """Cut one checkpoint (collective; charged to ``checkpoint``)."""
    from ..resilience.louvain_state import pack_rank_state

    meta, arrays = pack_rank_state(
        kind=kind,
        phase=phase,
        dg=dg,
        orig_slice=orig_slice,
        prev_mod=prev_mod,
        final_mod=final_mod,
        phases=phases,
        iterations=iterations,
        in_final_pass=bool(cycler.in_final_pass) if cycler else False,
        clock=comm.clock,
        seed_assignment=seed_assignment,
        phase_assignments=phase_assignments if comm.rank == 0 else None,
        iteration_state=iteration_state,
    )
    manager.save(
        comm,
        kind=kind,
        phase=phase,
        iteration=iteration,
        meta=meta,
        arrays=arrays,
    )


def _vertex_following_targets(
    comm: Communicator, dg: DistGraph, config: LouvainConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Community targets of Grappolo's vertex-following pre-merge.

    Closed form of the serial id-order pass in
    :func:`repro.core.grappolo.vertex_following_seed`: a degree-one
    vertex ``u`` (exactly one stored entry, not a self-loop) with sole
    neighbour ``n`` joins ``n``'s community — unless ``n`` is itself
    degree-one (an isolated edge), in which case both endpoints land on
    ``max(u, n)``, exactly what the serial in-order pass produces.  The
    rule is per-vertex and purely structural, so the result is
    independent of rank count and layout.

    SPMD: one owner-routed degree lookup plus one ghost exchange; every
    rank calls both even with zero local leaves.  Returns
    ``(local_comm, ghost_comm)`` ready for
    :func:`~repro.core.coarsen.rebuild_distributed`.
    """
    entry_counts = np.diff(dg.index)
    own_ids = dg.local_vertex_ids()
    cand = np.flatnonzero(entry_counts == 1)
    cand_targets = (
        dg.edges[dg.index[cand]] if len(cand) else np.empty(0, np.int64)
    )
    leaf_mask = cand_targets != own_ids[cand]
    leaves = cand[leaf_mask]
    leaf_targets = cand_targets[leaf_mask]
    # Stored-entry count of each leaf's neighbour, wherever it lives.
    tgt_deg = remote_lookup(
        comm,
        dg.owner_of,
        leaf_targets,
        lambda ids: entry_counts[dg.to_local(ids)],
        category="rebuild",
    )
    local_comm = own_ids.copy()
    if len(leaves):
        leaf_ids = own_ids[leaves]
        local_comm[leaves] = np.where(
            tgt_deg == 1,
            np.maximum(leaf_ids, leaf_targets),
            leaf_targets,
        )
    comm.charge_compute(dg.num_local)
    plan = dg.build_ghost_plan(comm)
    ghost_comm = dg.exchange_ghost_values(
        comm,
        plan,
        local_comm,
        category="ghost_comm",
        use_neighbor_collectives=config.use_neighbor_collectives,
    )
    return local_comm, ghost_comm


def distributed_louvain(
    comm: Communicator,
    dg: DistGraph | None,
    config: LouvainConfig | None = None,
    initial_assignment: np.ndarray | None = None,
    *,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    checkpoint_every_iterations: int | None = None,
    resume: bool = False,
) -> LouvainResult:
    """Algorithm 2: the full multi-phase distributed Louvain at one rank.

    Returns the (replicated) result; ``assignment`` covers the original
    global vertex set.  ``elapsed``/``trace`` are filled by the driver
    (:func:`run_louvain`) from the executor's clocks.

    ``initial_assignment`` warm-starts phase 0 from an existing
    community per owned vertex (global community ids drawn from the
    vertex-id space) — the incremental/dynamic re-detection mode.

    Resilience (see :mod:`repro.resilience`): with ``checkpoint_dir``
    set, the distributed state is checkpointed at every
    ``checkpoint_every``-th phase boundary (and every
    ``checkpoint_every_iterations`` Louvain iterations inside a phase,
    when set).  With ``resume=True`` the run restarts from the latest
    valid checkpoint instead of the input graph (``dg`` may then be
    ``None``); a resumed run reproduces the uninterrupted run's final
    labels and modularity bit for bit.
    """
    config = config or LouvainConfig()
    manager = None
    if checkpoint_dir is not None:
        from ..resilience.checkpoint import CheckpointManager

        manager = CheckpointManager(
            checkpoint_dir,
            every_phases=checkpoint_every,
            every_iterations=checkpoint_every_iterations,
            label=config.label(),
            config_key=config.cache_key(),
        )

    cycler = (
        ThresholdCycler(config)
        if config.variant.uses_threshold_cycling
        else None
    )
    restored = _load_restored_state(comm, manager, config) if resume else None
    if restored is not None:
        dg = restored.dg
        orig_slice = restored.orig_slice
        prev_mod = restored.prev_mod
        final_mod = restored.final_mod
        phases = restored.phases
        iterations = restored.iterations
        start_phase = restored.phase
        initial_assignment = restored.seed_assignment
        resume_iter = restored.iteration_state
        if cycler is not None and restored.in_final_pass:
            cycler.enter_final_pass()
        phase_assignments: list[np.ndarray] | None = (
            (restored.phase_assignments or [])
            if config.track_assignments
            else None
        )
    else:
        if dg is None:
            raise ValueError("dg may only be None when resume=True")
        # Each rank tracks the current meta-vertex of the original
        # vertices it loaded (its phase-0 interval).
        orig_slice = np.arange(dg.vbegin, dg.vend, dtype=np.int64)
        prev_mod = -np.inf
        phases = []
        iterations = []
        final_mod = 0.0
        start_phase = 0
        resume_iter = None
        phase_assignments = [] if config.track_assignments else None
        if config.vertex_following and initial_assignment is None:
            # Grappolo's vertex following: merge single-degree vertices
            # into their sole neighbour with one extra coarsening before
            # phase 0.  The un-merge is exact: the original-vertex
            # projection below folds each leaf through its meta vertex,
            # so the final assignment maps it wherever its neighbour's
            # community ends up.  Warm starts (incremental re-detection)
            # skip the merge — the seed already places every vertex —
            # and resumed runs restore the post-merge graph from the
            # checkpoint, so both paths stay bit-identical.
            vf_local, vf_ghost = _vertex_following_targets(comm, dg, config)
            vf_dg, vf_new = rebuild_distributed(
                comm, dg, vf_local, vf_ghost,
                repartition=config.repartition,
            )
            pre_dg = dg
            orig_slice = remote_lookup(
                comm,
                pre_dg.owner_of,
                orig_slice,
                lambda ids: vf_new[pre_dg.to_local(ids)],
                category="rebuild",
            )
            dg = vf_dg

    for phase in range(start_phase, config.max_phases):
        tau = cycler.tau_for_phase(phase) if cycler else config.tau
        phase_resume = (
            resume_iter
            if restored is not None and phase == start_phase
            else None
        )
        seed = (
            initial_assignment
            if phase == 0 and phase_resume is None
            else None
        )
        if (
            manager is not None
            and manager.should_checkpoint_phase(phase)
            # Don't re-cut the checkpoint we just restored from.
            and not (restored is not None and phase == start_phase)
        ):
            _save_checkpoint(
                manager,
                comm,
                kind="phase",
                phase=phase,
                iteration=-1,
                dg=dg,
                orig_slice=orig_slice,
                prev_mod=prev_mod,
                final_mod=final_mod,
                phases=phases,
                iterations=iterations,
                cycler=cycler,
                seed_assignment=seed,
                phase_assignments=phase_assignments,
            )

        ckpt_hook = None
        if manager is not None and manager.every_iterations:
            from ..resilience.louvain_state import IterationState

            def ckpt_hook(state, _dg=dg, _phase=phase):
                if not manager.should_checkpoint_iteration(
                    state["iteration"]
                ):
                    return
                et = state["et"]
                _save_checkpoint(
                    manager,
                    comm,
                    kind="iteration",
                    phase=_phase,
                    iteration=state["iteration"],
                    dg=_dg,
                    orig_slice=orig_slice,
                    prev_mod=prev_mod,
                    final_mod=final_mod,
                    phases=phases,
                    iterations=iterations,
                    cycler=cycler,
                    phase_assignments=phase_assignments,
                    iteration_state=IterationState(
                        iteration=state["iteration"],
                        prev_q=state["prev_q"],
                        q=state["q"],
                        stats=state["stats"],
                        local_comm=state["local_comm"],
                        tot_owned=state["tot_owned"],
                        size_owned=state["size_owned"],
                        et_prob=None if et is None else et.prob,
                        et_inactive=(
                            None if et is None else et.permanently_inactive
                        ),
                        et_rng_state=(
                            None
                            if et is None
                            else et.rng.bit_generator.state
                        ),
                    ),
                )

        out = louvain_phase_distributed(
            comm,
            dg,
            tau,
            config,
            phase,
            initial_assignment=seed,
            checkpoint_hook=ckpt_hook,
            resume_state=phase_resume,
        )
        iterations.extend(out.stats)
        n_vertices = dg.num_global_vertices
        n_edges = comm.allreduce(dg.num_local_entries, category="allreduce")
        # Achieved layout quality of the graph this phase ran on: the
        # cross-rank fraction of stored adjacency entries.  One small
        # allreduce; this is what repartition="community" shrinks and
        # what the tuner's cost model wants fed back.
        cross = int(np.count_nonzero(~dg.is_owned(dg.edges)))
        cross_total = comm.allreduce(
            np.array([cross, dg.num_local_entries], dtype=np.int64),
            category="partition",
        )
        ghost_fraction = (
            float(cross_total[0] / cross_total[1]) if cross_total[1] else 0.0
        )
        phases.append(
            PhaseStats(
                phase=phase,
                tau=tau,
                num_iterations=len(out.stats),
                modularity=out.modularity,
                num_vertices=n_vertices,
                num_edges=n_edges // 2,  # stored entries ~ 2 per edge
                exited_by_inactive=out.exited_by_inactive,
                ghost_fraction=ghost_fraction,
            )
        )
        if config.refine == "leiden":
            # Leiden-style refinement: split every community into its
            # connected components before coarsening.  Zero-edge cuts
            # mean in_c is preserved while the a_c^2 penalty can only
            # shrink, so modularity never decreases; connected
            # communities are merely renamed to their minimum member
            # (the rebuild renumbers canonically either way).
            ref_local, ref_ghost = refine_communities(
                comm,
                dg,
                out.local_comm,
                out.ghost_comm,
                use_neighbor_collectives=config.use_neighbor_collectives,
            )
            if out.tot_owned is not None and out.size_owned is not None:
                # Keep the owner-side C_info audit-consistent with the
                # refined labels (same delta protocol as a sweep move).
                moved = ref_local != out.local_comm
                _apply_community_deltas(
                    comm,
                    dg,
                    old=out.local_comm[moved],
                    new=ref_local[moved],
                    deg=dg.local_degrees()[moved],
                    tot_owned=out.tot_owned,
                    size_owned=out.size_owned,
                )
            out.local_comm = ref_local
            out.ghost_comm = ref_ghost

        if config.validate_invariants:
            from .validate import (
                audit_community_info,
                audit_ghost_coherence,
                audit_partition,
            )

            audit_community_info(
                comm, dg, out.local_comm, out.tot_owned, out.size_owned
            ).raise_if_failed()
            audit_partition(comm, dg, out.local_comm).raise_if_failed()
            audit_ghost_coherence(
                comm, dg, out.local_comm, out.ghost_comm
            ).raise_if_failed()

        new_dg, local_new = rebuild_distributed(
            comm, dg, out.local_comm, out.ghost_comm,
            repartition=config.repartition,
        )
        # The per-iteration modularity is computed against the stale
        # ghost view (the paper's semantics).  The coarsened graph gives
        # the *exact* value for free: meta self-loops are in_c and meta
        # degrees are a_c, both fully synchronised after the rebuild.
        final_mod = _exact_modularity(comm, new_dg, config.resolution)
        # Fold this phase into the original-vertex assignment: the new
        # meta id of original vertex o is local_new[to_local(x)] at the
        # owner of o's current meta vertex x.
        old_dg = dg
        orig_slice = remote_lookup(
            comm,
            old_dg.owner_of,
            orig_slice,
            lambda ids: local_new[old_dg.to_local(ids)],
            category="rebuild",
        )
        if phase_assignments is not None:
            gathered = comm.gather(orig_slice, root=0, category="other")
            if comm.rank == 0:
                phase_assignments.append(np.concatenate(gathered))

        gain = out.modularity - prev_mod
        no_merge = new_dg.num_global_vertices == dg.num_global_vertices
        dg = new_dg
        if gain <= tau or no_merge:
            if cycler and not cycler.in_final_pass and tau > cycler.final_tau:
                cycler.enter_final_pass()
                prev_mod = out.modularity
                continue
            break
        prev_mod = out.modularity

    # Assemble the replicated original-vertex assignment.
    pieces = comm.allgather(orig_slice, category="other")
    assignment = normalize_assignment(np.concatenate(pieces))
    return LouvainResult(
        modularity=final_mod,
        assignment=assignment,
        phases=phases,
        iterations=iterations,
        phase_assignments=phase_assignments,
    )


def run_louvain(
    g: CSRGraph,
    nranks: int,
    config: LouvainConfig | None = None,
    *,
    machine: MachineModel = CORI_HASWELL,
    partition: str = "even_edge",
    timeout: float = 300.0,
    initial_assignment: np.ndarray | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    checkpoint_every_iterations: int | None = None,
    resume: bool = False,
    fault_plan=None,
    verify_schedule: bool | None = None,
) -> LouvainResult:
    """Driver: distribute ``g`` over ``nranks`` simulated ranks and run.

    The returned result carries the modelled execution time and the
    per-category trace of the whole SPMD run.  ``initial_assignment``
    (community id per *global* vertex; any integer labels) warm-starts
    the run — see :mod:`repro.core.dynamic`.

    Resilience knobs (see :mod:`repro.resilience`): ``checkpoint_dir``
    enables phase-boundary (and, with
    ``checkpoint_every_iterations``, mid-phase) checkpointing;
    ``resume=True`` restarts from the latest valid checkpoint (the
    input graph is not re-distributed — state comes from the shards);
    ``fault_plan`` injects deterministic failures
    (:class:`repro.resilience.faults.FaultPlan`).  ``verify_schedule``
    enables the debug collective-schedule verifier for this run
    (defaults to the ``REPRO_VERIFY_SCHEDULE`` environment setting).
    """
    seed_global = None
    if initial_assignment is not None:
        seed_global = _labels_to_vertex_space(initial_assignment)

    def main(comm: Communicator) -> LouvainResult:
        if resume:
            # resume is a driver argument, identical on every rank.
            return distributed_louvain(  # spmdlint: ignore[SPMD002]
                comm,
                None,
                config,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                checkpoint_every_iterations=checkpoint_every_iterations,
                resume=True,
            )
        dg = DistGraph.distribute(comm, g, partition=partition)
        seed_local = (
            seed_global[dg.vbegin:dg.vend] if seed_global is not None else None
        )
        return distributed_louvain(
            comm,
            dg,
            config,
            initial_assignment=seed_local,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_every_iterations=checkpoint_every_iterations,
        )

    spmd: SPMDResult = run_spmd(
        nranks,
        main,
        machine=machine,
        timeout=timeout,
        fault_plan=fault_plan,
        verify_schedule=verify_schedule,
    )
    result: LouvainResult = spmd.value
    result.elapsed = spmd.elapsed
    result.trace = spmd.trace
    return result


def _labels_to_vertex_space(labels: np.ndarray) -> np.ndarray:
    """Map arbitrary community labels into the vertex-id space.

    The distributed algorithm requires community ids to be vertex ids
    (the owner of community ``c`` is the owner of vertex ``c``).  Each
    community is renamed to its minimum member vertex id, which is
    always a valid vertex and stable under relabeling.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = len(labels)
    if n == 0:
        return labels.copy()
    # Sort by (label, vertex id): the first entry of each label group is
    # that community's minimum member vertex.
    order = np.lexsort((np.arange(n), labels))
    sorted_labels = labels[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = sorted_labels[1:] != sorted_labels[:-1]
    uniq = sorted_labels[first]
    min_member = order[first]
    return min_member[np.searchsorted(uniq, labels)].astype(np.int64)
