"""Owner-push incremental community-info exchange (subscription caches).

The paper's §V-A profile attributes ~34% of Baseline runtime to the
per-iteration community-info traffic.  The pull protocol pays it in
full every round: ``_fetch_community_info`` re-requests ``(a_c, |c|)``
for *every* referenced community (two dense alltoalls) and
``_apply_community_deltas`` ships the move deltas in a third — even
though between rounds only a shrinking fraction of communities actually
change.

This module implements the owner-push alternative
(``LouvainConfig.community_push_updates``):

* each rank keeps a :class:`CommunityCache` of ``(a_c, |c|)`` for the
  remotely-owned communities it references, and *subscribes* to those
  ids at their owners when they are first pulled;
* the end-of-round delta exchange fuses into a single
  :meth:`~repro.runtime.comm.Communicator.exchange_roundtrip`: deltas
  travel to owners in the request leg, owners apply them and push fresh
  ``(id, a_c, |c|)`` records *only for subscribed communities that
  changed* in the reply leg — the next round then reads its community
  info from the cache instead of re-fetching it;
* new references are *pre-subscribed* before they can miss: the first
  fetch of a phase pulls every community the rank's vertices could
  reference (all neighbour communities, not just this round's active
  set), and afterwards the only way a new community id can reach a
  rank is through a ghost vertex moving into it — which the mover sees,
  so it attaches a *subscription hint* ``(community, ghosting rank)``
  to its delta records and the owner folds the fresh info into the same
  exchange's push leg (see :meth:`CommunityCache.exchange_deltas` for
  the completeness argument).

Because the cached values always equal the owner state after all
deltas of earlier rounds — the same state the pull protocol re-fetches
— assignments and modularity stay **bit-identical** to the pull
protocol.

Steady state cost per round: *zero* collectives in the fetch (pure
cache read) plus one fused exchange whose payload is proportional to
the number of *changed* communities — versus three dense alltoalls
with payload proportional to the number of *referenced* communities.

Payloads are packed ``(id, tot, size)`` struct arrays
(:data:`COMM_INFO_DTYPE`), so the performance model charges the true
24-byte-per-record wire size of the equivalent MPI derived datatype.
"""

from __future__ import annotations

import numpy as np

from ..graph.distgraph import DistGraph, split_by_rank
from ..runtime.comm import Communicator

#: Packed wire record of one community's info (or one community delta):
#: community id, incident-weight total a_c (or its delta), size (or its
#: delta).  24 bytes per record.
COMM_INFO_DTYPE = np.dtype(
    [("id", "<i8"), ("tot", "<f8"), ("size", "<i8")]
)

_EMPTY_INFO = np.empty(0, dtype=COMM_INFO_DTYPE)
_EMPTY_IDS = np.empty(0, dtype=np.int64)


def pack_info(
    ids: np.ndarray, tot: np.ndarray, size: np.ndarray
) -> np.ndarray:
    """Pack aligned (ids, tot, size) columns into one struct array."""
    out = np.empty(len(ids), dtype=COMM_INFO_DTYPE)
    out["id"] = ids
    out["tot"] = tot
    out["size"] = size
    return out


def unpack_info(
    packed: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unpack a struct array into contiguous (ids, tot, size) columns."""
    return (
        np.ascontiguousarray(packed["id"]),
        np.ascontiguousarray(packed["tot"]),
        np.ascontiguousarray(packed["size"]),
    )


def aggregate_deltas(
    old: np.ndarray, new: np.ndarray, deg: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Net (a_c, |c|) delta per community touched by a batch of moves.

    A vertex moving ``old -> new`` contributes ``(-k, -1)`` to its old
    community and ``(+k, +1)`` to its new one; duplicates are summed
    before communicating.  Shared by the pull and push protocols so the
    float accumulation order — and hence the owner-side state — is
    bit-identical between them.
    """
    ids = np.concatenate([old, new])
    dtot = np.concatenate([-deg, deg])
    dsize = np.concatenate(
        [-np.ones(len(old), np.int64), np.ones(len(new), np.int64)]
    )
    uniq, inv = np.unique(ids, return_inverse=True)
    agg_tot = np.zeros(len(uniq))
    agg_size = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(agg_tot, inv, dtot)
    np.add.at(agg_size, inv, dsize)
    return uniq, agg_tot, agg_size


def _membership(sorted_ids: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Bool mask: which ``query`` ids appear in sorted ``sorted_ids``."""
    if not len(sorted_ids) or not len(query):
        return np.zeros(len(query), dtype=bool)
    pos = np.searchsorted(sorted_ids, query)
    pos_clipped = np.minimum(pos, len(sorted_ids) - 1)
    return (pos < len(sorted_ids)) & (sorted_ids[pos_clipped] == query)


class CommunityCache:
    """Per-phase subscription cache of remote community info at one rank.

    Subscriber side: ``ids`` (sorted), ``tot``, ``size`` mirror the
    owners' dense C_info entries for every remotely-owned community this
    rank has referenced so far this phase.  Owner side: ``subs[r]``
    holds the *local slots* (``dg.to_local(community id)``) rank ``r`` is
    subscribed to, and ``changed`` marks owned slots touched by deltas
    since the last push.

    Lifetime is one phase: community ids live in the vertex-id space of
    the current (coarsened) graph, so the cache is rebuilt from scratch
    — via the cold-start pull of the first fetch — after every
    reconstruction, and likewise after a checkpoint restore (the pull
    re-materialises exactly the owner state the interrupted run held).
    """

    def __init__(self, dg: DistGraph, comm_size: int, sparse: bool = False):
        self.dg = dg
        self.sparse = sparse
        #: True until the first (collective, cold-start) fetch.
        self.cold = True
        # Subscriber-side mirror of remote C_info entries.
        self.ids = np.empty(0, dtype=np.int64)
        self.tot = np.empty(0, dtype=np.float64)
        self.size = np.empty(0, dtype=np.int64)
        # Owner-side subscription sets (local slots, sorted) per rank.
        self.subs: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(comm_size)
        ]
        # Owned slots with un-pushed (a_c, |c|) changes.
        self.changed = np.zeros(dg.num_local, dtype=bool)
        # Hint pairs already sent (key = community * size + rank), so a
        # repeated move into the same community costs no hint bytes —
        # the subscription it created is permanent.
        self._hinted = np.empty(0, dtype=np.int64)
        # Instrumentation (read by benchmarks/tests).
        self.pulled_entries = 0
        self.pushed_entries = 0
        self.hinted_pairs = 0

    # ------------------------------------------------------------------
    # Subscriber side
    # ------------------------------------------------------------------
    def fetch(
        self,
        comm: Communicator,
        needed: np.ndarray,
        tot_owned: np.ndarray,
        size_owned: np.ndarray,
        prefetch: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current (a_c, |c|) for each id in sorted-unique ``needed``.

        The first call of a phase is collective on every rank: it pulls
        — and subscribes to — all of ``prefetch`` (the full set of
        communities this rank's vertices could reference, not just this
        round's active subset).  Every later call is a pure local cache
        read: the cold pull plus the subscription hints of
        :meth:`exchange_deltas` guarantee that any community referenced
        after round one is already cached, so no miss gate is needed.
        Returns exactly what the pull protocol's
        ``_fetch_community_info`` would.
        """
        dg = self.dg
        owners = dg.owner_of(needed)
        mine = owners == comm.rank
        remote = needed[~mine]
        if self.cold:
            self.cold = False
            ids = remote if prefetch is None else prefetch
            ids = ids[dg.owner_of(ids) != comm.rank]
            self._pull_and_subscribe(comm, ids, tot_owned, size_owned)
        elif len(remote):
            missing = remote[~_membership(self.ids, remote)]
            if len(missing):
                # The no-miss invariant (cold prefetch + hints) is the
                # correctness basis of the gate-free fetch; a miss here
                # is a protocol bug, never a recoverable condition.
                raise RuntimeError(
                    f"community cache miss on rank {comm.rank}: "
                    f"{missing[:8].tolist()}{'...' if len(missing) > 8 else ''}"
                )

        tot_out = np.empty(len(needed), dtype=np.float64)
        size_out = np.empty(len(needed), dtype=np.int64)
        if np.any(mine):
            loc = dg.to_local(needed[mine])
            tot_out[mine] = tot_owned[loc]
            size_out[mine] = size_owned[loc]
        if len(remote):
            slots = np.searchsorted(self.ids, remote)
            tot_out[~mine] = self.tot[slots]
            size_out[~mine] = self.size[slots]
        return tot_out, size_out

    def _pull_and_subscribe(
        self,
        comm: Communicator,
        wanted: np.ndarray,
        tot_owned: np.ndarray,
        size_owned: np.ndarray,
    ) -> None:
        """Cold-start pull of ``wanted`` ids; each request doubles as
        the subscription, so owners push future changes of these ids.

        Replies are id-less ``(2, n)`` value arrays (16 bytes/record):
        the requester aligns them with the ids it asked for, exactly
        like the pull protocol's reply leg.
        """
        dg = self.dg
        owners = dg.owner_of(wanted)
        requests = [
            ids for (ids,) in split_by_rank(owners, comm.size, wanted)
        ]

        def serve(incoming: list) -> list:
            replies = []
            for r, ids in enumerate(incoming):
                if ids is None or not len(ids):
                    replies.append(np.empty((2, 0)))
                    continue
                loc = np.asarray(dg.to_local(ids))
                self.subscribe(r, loc)
                replies.append(
                    np.stack(
                        [tot_owned[loc], size_owned[loc].astype(np.float64)]
                    )
                )
            return replies

        got = comm.exchange_roundtrip(
            requests, serve, category="community_comm", sparse=self.sparse
        )
        fresh = [
            pack_info(requests[r], got[r][0], got[r][1].astype(np.int64))
            for r in range(comm.size)
            if got[r] is not None and got[r].shape[1]
        ]
        if fresh:
            self._insert(np.concatenate(fresh))

    def _insert(self, packed: np.ndarray) -> None:
        """Merge newly pulled records into the sorted cache arrays."""
        ids, tot, size = unpack_info(packed)
        self.pulled_entries += len(ids)
        all_ids = np.concatenate([self.ids, ids])
        order = np.argsort(all_ids, kind="stable")
        self.ids = all_ids[order]
        self.tot = np.concatenate([self.tot, tot])[order]
        self.size = np.concatenate([self.size, size])[order]

    def _apply_push(self, packed: np.ndarray) -> None:
        """Fold owner-pushed fresh values into the cache.

        Known ids are overwritten in place; unknown ids (proactive
        hint-driven subscriptions — see :meth:`exchange_deltas`) are
        inserted, pre-empting the fallback pull the next fetch would
        otherwise need.
        """
        ids, tot, size = unpack_info(packed)
        self.pushed_entries += len(ids)
        known = _membership(self.ids, ids)
        if np.any(known):
            slots = np.searchsorted(self.ids, ids[known])
            self.tot[slots] = tot[known]
            self.size[slots] = size[known]
        if not np.all(known):
            new = ~known
            all_ids = np.concatenate([self.ids, ids[new]])
            order = np.argsort(all_ids, kind="stable")
            self.ids = all_ids[order]
            self.tot = np.concatenate([self.tot, tot[new]])[order]
            self.size = np.concatenate([self.size, size[new]])[order]

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    def subscribe(self, rank: int, local_slots: np.ndarray) -> None:
        """Register ``rank`` for future pushes of these owned slots."""
        self.subs[rank] = np.union1d(self.subs[rank], local_slots)

    def exchange_deltas(
        self,
        comm: Communicator,
        old: np.ndarray,
        new: np.ndarray,
        deg: np.ndarray,
        tot_owned: np.ndarray,
        size_owned: np.ndarray,
        hint_ids: np.ndarray | None = None,
        hint_ranks: np.ndarray | None = None,
    ) -> None:
        """The fused end-of-round exchange (replaces three alltoalls).

        Request leg: this rank's aggregated move deltas, routed to the
        community owners, plus *subscription hints* — ``(hint_ids[i],
        hint_ranks[i])`` pairs saying "rank ``hint_ranks[i]`` may
        reference community ``hint_ids[i]`` from now on" (the mover of
        a ghosted vertex knows which ranks ghost it, so it subscribes
        them to the move's target community before they could miss it).
        Serve step (owner side, runs once per rank inside the
        collective): apply every rank's deltas to the dense C_info
        arrays — same rank order and ``np.add.at`` accumulation as the
        pull protocol, so the owned floats stay bit-identical — mark the
        touched slots, then register the hinted subscriptions.  Reply
        leg: fresh ``(id, a_c, |c|)`` for ``changed ∩ subscribed`` per
        subscriber; received pushes update the local cache (hint-driven
        entries are inserted).  Unconditional every round, like the
        delta alltoall of Algorithm 3 it fuses away.

        Hints + the cold prefetch make the gate-free fetch complete: a
        community ``c`` referenced by rank ``r`` at round ``t`` is the
        community of one of ``r``'s local vertices or their neighbours,
        so either it dates from before the phase's first fetch (covered
        by the cold prefetch over *all* of ``r``'s neighbour
        communities), or some vertex ``v`` moved into ``c`` at a round
        ``t' < t``.  If ``v`` is owned by ``r``, then ``r`` evaluated
        ``c`` during that sweep, so ``c`` was in round ``t'``'s fetch
        set.  If ``v`` is a ghost, its owner hinted ``(c, r)`` in round
        ``t'``'s exchange (``r`` ghosts ``v``), and the push leg
        delivered ``c``'s info.  Either way ``c`` is cached — and kept
        fresh by the permanent subscription — before round ``t``.
        A moved vertex always changes its target community's delta
        entry, so hinted communities are always in ``changed`` and the
        hint's info always rides the same exchange's push.
        """
        dg = self.dg
        p = comm.size
        uniq, agg_tot, agg_size = aggregate_deltas(old, new, deg)
        owners = dg.owner_of(uniq)
        deltas = [
            pack_info(i, t, s)
            for (i, t, s) in split_by_rank(owners, p, uniq, agg_tot, agg_size)
        ]
        if hint_ids is None or not len(hint_ids):
            hints = [(_EMPTY_IDS, _EMPTY_IDS)] * p
        else:
            # Dedupe (community, subscriber) pairs — within this round
            # and against every pair ever hinted (subscriptions are
            # permanent, so re-hinting is pure payload waste) — and
            # drop pairs where the subscriber owns the community.
            key = hint_ids * np.int64(p) + hint_ranks
            key = np.unique(key)
            key = key[~_membership(self._hinted, key)]
            hid = key // p
            hrank = key % p
            m = dg.owner_of(hid) != hrank
            hid, hrank, key = hid[m], hrank[m], key[m]
            self._hinted = np.union1d(self._hinted, key)
            self.hinted_pairs += len(key)
            hints = split_by_rank(dg.owner_of(hid), p, hid, hrank)
        requests = [(deltas[r], *hints[r]) for r in range(p)]
        changed = self.changed

        def serve(incoming: list) -> list:
            for req in incoming:
                if req is None:
                    continue
                packed, hid, hrank = req
                if len(packed):
                    ids, dtot, dsize = unpack_info(packed)
                    loc = np.asarray(dg.to_local(ids))
                    np.add.at(tot_owned, loc, dtot)
                    np.add.at(size_owned, loc, dsize)
                    changed[loc] = True
                for r in np.unique(hrank):
                    self.subscribe(
                        int(r), np.asarray(dg.to_local(hid[hrank == r]))
                    )
            replies = []
            for r in range(p):
                sel = self.subs[r]
                if len(sel):
                    sel = sel[changed[sel]]
                replies.append(
                    pack_info(
                        np.asarray(dg.from_local(sel)),
                        tot_owned[sel],
                        size_owned[sel],
                    )
                )
            changed[:] = False
            return replies

        got = comm.exchange_roundtrip(
            requests, serve, category="community_comm", sparse=self.sparse
        )
        for packed in got:
            if packed is not None and len(packed):
                self._apply_push(packed)
