"""Leiden-style post-phase refinement (``LouvainConfig.refine="leiden"``).

Louvain's known defect (Traag, Waltman & van Eck, *From Louvain to
Leiden*, 2019) is that a community can become *internally disconnected*:
a vertex that acted as the bridge between two parts of its community
moves away — under this repo's synchronised snapshot sweeps, label
swaps make this routine — and the two parts stay fused because each
still gains from the community's aggregate ``a_c``.  The fix is to
split every community into its connected components before coarsening.

Splitting along a zero-edge cut can never lower modularity: the
components of a disconnected community share no edges, so the total
internal weight ``in_c`` is preserved exactly while the degree-sum
penalty shrinks (``(sum_i a_i)^2 >= sum_i a_i^2`` for non-negative
``a_i``).  Applied after every phase's sweep, the final hierarchy
contains only connected communities by induction (coarsening a
connected community yields one meta-vertex, trivially connected).

The pass is a *community-constrained* variant of
:func:`repro.graph.distalgo.distributed_components`: min-label
propagation where a vertex may only adopt a neighbour's label when both
sit in the same community.  Component labels are then mapped back so
that **unsplit communities keep their original id** — refinement is a
bit-exact no-op on a phase whose communities are all connected — while
each component of a split community takes its minimum member id (a
valid community id under the repo-wide "community = some vertex id"
ownership convention).

One rare hazard guards the id-preserving mapping: a community's id is
a vertex id whose vertex may have *left* it (an orphan id, another
snapshot-sweep artefact), so a kept original id could coincide with
the min-member label of some split component elsewhere, silently
merging unrelated communities at the next coarsening.  An owner-routed
uniqueness audit detects any such clash, and the pass then falls back
to canonical min-member labels for every community (injective by
construction: min members of disjoint vertex sets are distinct).  Both
the split decision and the fallback decision are global and purely
structural, so refined runs stay bit-identical across rank counts,
layouts, and transports.

SPMD: call from every rank.  The propagation trip count is
data-dependent but replicated (one ``lor`` allreduce per round), the
same schedule-safe shape as the component kernel.
"""

from __future__ import annotations

import numpy as np

from ..graph.distgraph import DistGraph, GhostPlan, split_by_rank
from ..runtime.comm import Communicator
from .coarsen import remote_lookup

__all__ = ["refine_communities"]


def _component_labels(
    comm: Communicator,
    dg: DistGraph,
    plan: GhostPlan,
    local_comm: np.ndarray,
    ghost_comm: np.ndarray,
    use_neighbor_collectives: bool,
    max_rounds: int,
) -> np.ndarray:
    """Min vertex id of each owned vertex's (community, component)."""
    ctargets = dg.compressed_targets(plan)
    nloc = dg.num_local
    rows = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(dg.index))
    labels = dg.local_vertex_ids().copy()

    for _ in range(max_rounds):
        ghost_labels = dg.exchange_ghost_values(
            comm,
            plan,
            labels,
            category="other",
            use_neighbor_collectives=use_neighbor_collectives,
        )
        if len(rows):
            both = np.concatenate([labels, ghost_labels])
            comm_both = np.concatenate([local_comm, ghost_comm])
            target_labels = both[ctargets]
            # The community constraint: only same-community edges carry
            # labels, so propagation never crosses a community wall.
            same = comm_both[ctargets] == local_comm[rows]
            new_labels = labels.copy()
            np.minimum.at(new_labels, rows[same], target_labels[same])
        else:
            new_labels = labels.copy()
        comm.charge_compute(dg.num_local_entries)
        changed = bool(np.any(new_labels != labels))
        labels = new_labels
        if not comm.allreduce(changed, op="lor", category="other"):
            return labels
    raise RuntimeError(
        f"refinement propagation did not converge in {max_rounds} rounds"
    )


def _split_flags(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
    labels: np.ndarray,
) -> np.ndarray:
    """Per owned vertex: does its community have more than one component?

    Component representatives (label == own vertex id, exactly one per
    component) report to their community's owner, who counts; every
    vertex then asks its community's owner for the count.  Two
    owner-routed exchanges, both unconditional.
    """
    roots = labels == dg.local_vertex_ids()
    root_comms, root_counts = np.unique(
        local_comm[roots], return_counts=True
    )
    outgoing = split_by_rank(
        dg.owner_of(root_comms), comm.size, root_comms, root_counts
    )
    received = comm.alltoall(outgoing, category="other")
    ncomp = np.zeros(dg.num_local, dtype=np.int64)
    for rids, rcounts in received:
        if len(rids):
            np.add.at(ncomp, dg.to_local(rids), rcounts)
    counts = remote_lookup(
        comm,
        dg.owner_of,
        local_comm,
        lambda ids: ncomp[dg.to_local(ids)],
        category="other",
    )
    return counts > 1


def _labels_collide(
    comm: Communicator,
    dg: DistGraph,
    refined: np.ndarray,
    original: np.ndarray,
) -> bool:
    """Do two different original communities claim one refined label?

    Each rank routes its distinct ``(refined label, original community)``
    pairs to the label's owner, who checks that every claim on a label
    names the same source community.  Replicated verdict via one
    ``lor`` allreduce.
    """
    pairs = np.unique(np.stack([refined, original], axis=1), axis=0)
    lab, orig = pairs[:, 0], pairs[:, 1]
    outgoing = split_by_rank(dg.owner_of(lab), comm.size, lab, orig)
    received = comm.alltoall(outgoing, category="other")
    all_lab = np.concatenate(
        [rl for rl, _ in received] or [np.empty(0, np.int64)]
    )
    all_orig = np.concatenate(
        [ro for _, ro in received] or [np.empty(0, np.int64)]
    )
    conflict = False
    if len(all_lab):
        order = np.lexsort((all_orig, all_lab))
        sl, so = all_lab[order], all_orig[order]
        dup = sl[1:] == sl[:-1]
        conflict = bool(np.any(dup & (so[1:] != so[:-1])))
    return bool(comm.allreduce(conflict, op="lor", category="other"))


def refine_communities(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
    ghost_comm: np.ndarray,
    *,
    use_neighbor_collectives: bool = False,
    max_rounds: int = 10_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Split every internally disconnected community into components.

    ``local_comm`` holds the community of each owned vertex and
    ``ghost_comm`` the communities of this rank's ghosts (aligned with
    ``dg.build_ghost_plan(comm)``), exactly as a Louvain phase leaves
    them.  Returns ``(refined_local, refined_ghost)`` in the same
    layout.  Communities that are already connected keep their id
    untouched; each component of a disconnected community becomes its
    own community labelled by its minimum member id (or, on the rare
    label clash the module docstring describes, every community is
    canonically relabelled to its minimum member).
    """
    if len(local_comm) != dg.num_local:
        raise ValueError(
            f"local_comm covers {len(local_comm)} vertices, rank owns "
            f"{dg.num_local}"
        )
    plan = dg.build_ghost_plan(comm)
    labels = _component_labels(
        comm,
        dg,
        plan,
        local_comm,
        ghost_comm,
        use_neighbor_collectives,
        max_rounds,
    )
    split = _split_flags(comm, dg, local_comm, labels)
    refined = np.where(split, labels, local_comm)
    if _labels_collide(comm, dg, refined, local_comm):
        refined = labels
    refined_ghost = dg.exchange_ghost_values(
        comm,
        plan,
        refined,
        category="other",
        use_neighbor_collectives=use_neighbor_collectives,
    )
    return refined, refined_ghost
