"""Modularity (Newman 2004) in the paper's Equation 2 formulation.

With the library's storage convention (non-loop edges stored twice, self
loops once; ``W = total_weight = sum_u k_u``):

``Q = sum_c [ in_c / W - (a_c / W)^2 ]``

where ``in_c`` sums the stored adjacency weights whose both endpoints lie
in ``c`` (intra edges counted twice, loops once), and ``a_c`` sums the
weighted degrees of the members of ``c``.  This matches Equation 2 with
``W = 2m``.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph


def community_aggregates(
    g: CSRGraph, assignment: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-community ``(ids, in_c, a_c)`` for a global graph.

    ``assignment[u]`` is the community of vertex ``u`` (arbitrary ids).
    Returns the sorted distinct community ids with aligned ``in_c`` and
    ``a_c`` arrays.
    """
    assignment = np.asarray(assignment)
    if len(assignment) != g.num_vertices:
        raise ValueError(
            f"assignment covers {len(assignment)} vertices, graph has "
            f"{g.num_vertices}"
        )
    rows = np.repeat(
        np.arange(g.num_vertices, dtype=np.int64), np.diff(g.index)
    )
    ids, inverse = np.unique(assignment, return_inverse=True)
    cin = np.zeros(len(ids), dtype=np.float64)
    intra = inverse[rows] == inverse[g.edges]
    np.add.at(cin, inverse[rows][intra], g.weights[intra])
    atot = np.zeros(len(ids), dtype=np.float64)
    np.add.at(atot, inverse, g.degrees())
    return ids, cin, atot


def modularity(
    g: CSRGraph, assignment: np.ndarray, resolution: float = 1.0
) -> float:
    """Modularity ``Q`` of a community assignment (Equation 2).

    ``resolution`` is the gamma of generalized modularity
    ``sum_c [in_c/W - gamma (a_c/W)^2]``; 1.0 gives the paper's metric.
    """
    w = g.total_weight
    if w <= 0.0:
        return 0.0
    _, cin, atot = community_aggregates(g, assignment)
    return float(cin.sum() / w - resolution * np.square(atot / w).sum())


def modularity_bounds_ok(q: float) -> bool:
    """Sanity window: Q always lies in [-1/2, 1]."""
    return -0.5 - 1e-9 <= q <= 1.0 + 1e-9


def move_gain(
    g: CSRGraph,
    assignment: np.ndarray,
    vertex: int,
    target: int,
) -> float:
    """Exact modularity change of moving ``vertex`` to ``target``.

    Slow (recomputes aggregates); used as the ground truth in tests for
    the fast incremental scores used by the sweeps.
    """
    before = modularity(g, assignment)
    trial = assignment.copy()
    trial[vertex] = target
    return modularity(g, trial) - before
