"""Invariant auditing for distributed Louvain state.

The distributed algorithm maintains replicated/partitioned state whose
consistency is easy to silently break (lagged C_info, stale ghosts,
renumbering bugs).  This module provides SPMD audits used by tests and
by the ``audit_distributed_state`` debugging entry point:

* **C_info consistency** — every owner's ``a_c``/size must equal the
  values recomputed from the actual vertex assignments;
* **partition sanity** — assignments reference alive communities only,
  sizes sum to ``|V|``, weights sum to ``W``;
* **ghost coherence** — after an exchange, every ghost copy matches the
  owner's current value.

All audits are collective (every rank must call them) and return a
:class:`AuditReport` replicated on every rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime.comm import Communicator
from .coarsen import remote_lookup


@dataclass
class AuditReport:
    """Outcome of a distributed state audit (replicated on all ranks)."""

    ok: bool = True
    failures: list[str] = field(default_factory=list)

    def record(self, condition: bool, message: str) -> None:
        if not condition:
            self.ok = False
            self.failures.append(message)

    def merge_global(self, comm: Communicator) -> "AuditReport":
        """Combine every rank's findings (allgather of failure lists)."""
        all_failures = comm.allgather(self.failures, category="other")
        merged = [f for sub in all_failures for f in sub]
        return AuditReport(ok=not merged, failures=merged)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "distributed state audit failed:\n  "
                + "\n  ".join(self.failures)
            )


def audit_community_info(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
    tot_owned: np.ndarray,
    size_owned: np.ndarray,
    tolerance: float = 1e-6,
) -> AuditReport:
    """Verify owner-side C_info against ground truth.

    Recomputes every community's ``a_c`` (sum of member degrees) and
    size from the actual assignments: each rank aggregates the degrees
    of its *vertices* per community and routes the partials to the
    community owners, who compare with their maintained arrays.
    """
    report = AuditReport()
    k = dg.local_degrees()
    uniq, inv = np.unique(local_comm, return_inverse=True)
    part_tot = np.zeros(len(uniq))
    part_size = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(part_tot, inv, k)
    np.add.at(part_size, inv, 1)

    owners = np.asarray(dg.owner_of(uniq))
    outgoing = []
    for r in range(comm.size):
        m = owners == r
        outgoing.append((uniq[m], part_tot[m], part_size[m]))
    received = comm.alltoall(outgoing, category="other")

    true_tot = np.zeros(dg.num_local)
    true_size = np.zeros(dg.num_local, dtype=np.int64)
    for ids, tots, sizes in received:
        if len(ids):
            loc = dg.to_local(ids)
            np.add.at(true_tot, loc, tots)
            np.add.at(true_size, loc, sizes)

    bad_tot = np.flatnonzero(
        np.abs(true_tot - tot_owned) > tolerance * (1 + np.abs(true_tot))
    )
    for c in bad_tot[:5]:
        report.record(
            False,
            f"rank {comm.rank}: a_c mismatch for community "
            f"{int(dg.from_local(int(c)))}: "
            f"maintained {tot_owned[c]}, actual {true_tot[c]}",
        )
    bad_size = np.flatnonzero(true_size != size_owned)
    for c in bad_size[:5]:
        report.record(
            False,
            f"rank {comm.rank}: size mismatch for community "
            f"{int(dg.from_local(int(c)))}: "
            f"maintained {size_owned[c]}, actual {true_size[c]}",
        )
    return report.merge_global(comm)


def audit_partition(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
) -> AuditReport:
    """Global partition sanity: coverage, label validity, weight."""
    report = AuditReport()
    n_global = dg.num_global_vertices
    report.record(
        len(local_comm) == dg.num_local,
        f"rank {comm.rank}: assignment length {len(local_comm)} != "
        f"{dg.num_local} owned vertices",
    )
    if len(local_comm):
        report.record(
            bool((local_comm >= 0).all() and (local_comm < n_global).all()),
            f"rank {comm.rank}: community ids outside [0, {n_global})",
        )
    total_vertices = comm.allreduce(dg.num_local, category="other")
    report.record(
        total_vertices == n_global,
        f"vertex coverage {total_vertices} != {n_global}",
    )
    total_weight = comm.allreduce(
        float(dg.weights.sum()), category="other"
    )
    report.record(
        abs(total_weight - dg.total_weight)
        <= 1e-9 * max(1.0, dg.total_weight),
        f"weight drift: stored {dg.total_weight}, actual {total_weight}",
    )
    return report.merge_global(comm)


def audit_ghost_coherence(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
    ghost_comm: np.ndarray,
) -> AuditReport:
    """Every ghost copy must equal the owner's current value."""
    report = AuditReport()
    plan = dg.build_ghost_plan(comm)
    # The alignment check must be decided collectively: an early return
    # taken by the misaligned rank alone would skip the remote_lookup
    # collectives the healthy ranks are about to enter (schedule
    # divergence -> deadlock on real MPI).
    misaligned = len(ghost_comm) != plan.num_ghosts
    if comm.allreduce(misaligned, op="lor", category="other"):
        report.record(
            not misaligned,
            f"rank {comm.rank}: ghost array misaligned "
            f"({len(ghost_comm)} entries for {plan.num_ghosts} ghosts)",
        )
        return report.merge_global(comm)
    truth = remote_lookup(
        comm,
        dg.owner_of,
        plan.ghost_ids,
        lambda ids: local_comm[dg.to_local(ids)],
        category="other",
    )
    bad = np.flatnonzero(truth != ghost_comm)
    for g in bad[:5]:
        report.record(
            False,
            f"rank {comm.rank}: ghost {plan.ghost_ids[g]} holds "
            f"{ghost_comm[g]}, owner says {truth[g]}",
        )
    return report.merge_global(comm)
