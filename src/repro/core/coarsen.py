"""Graph coarsening: communities collapse into meta-vertices between phases.

Serial version (:func:`coarsen_csr`) is the textbook Louvain phase-2 step.
The distributed version (:func:`rebuild_distributed`) follows §IV-A(b) of
the paper — the seven numbered steps around Fig. 1:

1. each rank counts/renumbers its *owned*, still-alive communities;
2. owned communities used only by remote vertices are kept alive via a
   notification exchange (the stale-ID check of step 2);
3. alive counts feed a parallel prefix sum (``exscan``) producing the
   global renumbering base per rank;
4. new ids are propagated back to every rank that uses them;
5. each rank translates its edges into partial meta-edge lists
   (intra-community entries become self loops);
6. partial lists are redistributed so every rank owns an (almost) equal
   number of meta-vertices;
7. local CSR arrays of the coarsened graph are rebuilt.

Both versions preserve ``total_weight`` exactly — the invariant property
tests lean on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.distgraph import DistGraph, split_by_rank
from ..graph.partition import even_vertex, place_communities
from ..runtime.comm import Communicator


def coarsen_csr(
    g: CSRGraph, assignment: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Collapse ``assignment`` communities of a global CSR graph.

    Returns ``(meta_graph, vertex_to_meta)`` where ``vertex_to_meta[u]``
    is the meta-vertex (renumbered community) containing ``u``.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if len(assignment) != g.num_vertices:
        raise ValueError("assignment length must equal num_vertices")
    ids, inverse = np.unique(assignment, return_inverse=True)
    n_new = len(ids)
    rows = np.repeat(
        np.arange(g.num_vertices, dtype=np.int64), np.diff(g.index)
    )
    src = inverse[rows].astype(np.int64)
    dst = inverse[g.edges].astype(np.int64)
    index, edges, weights = _aggregate_directed(src, dst, g.weights, n_new)
    return (
        CSRGraph(index=index, edges=edges, weights=weights),
        inverse.astype(np.int64),
    )


def _aggregate_directed(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, n_rows: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum duplicate (src, dst) entries and emit CSR arrays.

    Inputs are *stored adjacency entries* (both directions of each edge,
    loops once), so the output keeps the library's storage convention
    and the total weight automatically.
    """
    if len(src):
        span = np.int64(max(int(dst.max()) + 1, 1))
        key = src * span + dst
        order = np.argsort(key, kind="stable")
        key, src, dst, w = key[order], src[order], dst[order], w[order]
        uniq = np.empty(len(key), dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        starts = np.flatnonzero(uniq)
        w = np.add.reduceat(w, starts)
        src, dst = src[starts], dst[starts]
    index = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(index, src + 1, 1)
    np.cumsum(index, out=index)
    return index, dst.astype(np.int64), w.astype(np.float64)


# ----------------------------------------------------------------------
# Distributed reconstruction (paper §IV-A(b), Fig. 1)
# ----------------------------------------------------------------------
def remote_lookup(
    comm: Communicator,
    owner: np.ndarray | Callable[[np.ndarray], np.ndarray],
    query_ids: np.ndarray,
    local_lookup,
    category: str = "rebuild",
) -> np.ndarray:
    """Resolve values owned by other ranks: route each query id to its
    owner, owners answer via ``local_lookup(ids)``.

    ``owner`` is either a contiguous-partition ``offsets`` array or a
    callable mapping global ids to owning ranks (e.g.
    ``DistGraph.owner_of``, which also handles general partitions).
    ``local_lookup`` must accept an ``int64`` array of *owned* ids and
    return the aligned values.  Queries for locally-owned ids are
    answered without communication, but every rank must call this
    function (it contains collectives).
    """
    query_ids = np.asarray(query_ids, dtype=np.int64)
    uniq_ids, inverse = np.unique(query_ids, return_inverse=True)
    if callable(owner):
        uniq_owners = np.asarray(owner(uniq_ids))
    else:
        uniq_owners = np.searchsorted(owner, uniq_ids, side="right") - 1

    requests = [
        uniq_ids[uniq_owners == r] if r != comm.rank else np.empty(0, np.int64)
        for r in range(comm.size)
    ]
    incoming = comm.alltoall(requests, category=category)
    replies = [
        local_lookup(ids) if len(ids) else np.empty(0, np.int64)
        for ids in incoming
    ]
    answers = comm.alltoall(replies, category=category)

    out_uniq = np.empty(len(uniq_ids), dtype=np.int64)
    mine = uniq_owners == comm.rank
    if np.any(mine):
        out_uniq[mine] = local_lookup(uniq_ids[mine])
    for r in range(comm.size):
        sent = requests[r]
        if len(sent):
            slots = np.searchsorted(uniq_ids, sent)
            out_uniq[slots] = answers[r]
    return out_uniq[inverse]


def rebuild_distributed(
    comm: Communicator,
    dg: DistGraph,
    local_comm: np.ndarray,
    ghost_comm: np.ndarray,
    repartition: str = "none",
) -> tuple[DistGraph, np.ndarray]:
    """Distributed graph reconstruction at the end of a phase.

    Parameters
    ----------
    local_comm:
        Final community id of each owned vertex (global community ids,
        which live in the vertex-id space).
    ghost_comm:
        Final community id of each ghost vertex, aligned with the phase's
        :class:`~repro.graph.distgraph.GhostPlan` (i.e. already refreshed
        after the last iteration).
    repartition:
        ``"none"`` re-establishes the paper's even-vertex layout
        (step 6); ``"community"`` places whole coarse communities with
        :func:`~repro.graph.partition.place_communities` instead,
        producing a general (non-contiguous) partition that shrinks the
        next phase's ghost fraction.  Meta-vertex *ids* are identical in
        both modes (community ranks by sorted old community id), so the
        choice never changes assignments — only layout.

    Returns
    -------
    (new_dg, local_new_id):
        The coarsened distributed graph and, for each *owned vertex of
        the old graph*, the new meta-vertex id of its community — the
        hook callers use to fold the phase into the original-vertex
        assignment.
    """
    if repartition not in ("none", "community"):
        raise ValueError(f"unknown repartition mode {repartition!r}")
    plan = dg.build_ghost_plan(comm)
    if len(ghost_comm) != plan.num_ghosts:
        raise ValueError("ghost_comm not aligned with the ghost plan")

    # --- steps 1-2: find alive communities -----------------------------
    used = np.unique(np.concatenate([local_comm, ghost_comm])) if len(
        ghost_comm
    ) else np.unique(local_comm)
    used_sorted = used  # sorted by np.unique

    if repartition == "community":
        # --- steps 1-4, community mode: canonical global renumbering ---
        # One allgather replaces the notify alltoall + exscan + id
        # propagation: every rank learns the full alive set (the union
        # of used-here sets) and numbers it by sorted old community id.
        # With contiguous ownership this equals the exscan numbering
        # below exactly (per-rank alive sets are sorted and rank ranges
        # ascend), and unlike the exscan it stays canonical once
        # ownership is no longer contiguous — which keeps meta ids, and
        # therefore assignments, bit-identical to "none".
        all_alive = np.unique(
            np.concatenate(comm.allgather(used, category="partition"))
        )
        n_new = len(all_alive)

        def translate(ids: np.ndarray) -> np.ndarray:
            return np.searchsorted(all_alive, ids)

        new_of_used = translate(used_sorted)
    else:
        # A community (id == vertex id) is alive if any vertex anywhere
        # is assigned to it.  Used-here ids are split by owner; owners
        # also learn about remote usage through the notification
        # alltoall.
        owners = np.asarray(dg.owner_of(used))
        notify = [
            used[owners == r] if r != comm.rank else np.empty(0, np.int64)
            for r in range(comm.size)
        ]
        reported = comm.alltoall(notify, category="rebuild")
        mine_here = used[owners == comm.rank]
        alive = np.unique(np.concatenate([mine_here] + list(reported)))
        # (every id reported to us is owned by us by construction)

        # --- step 3: global renumbering via parallel prefix sum --------
        base = comm.exscan(len(alive), category="rebuild")
        n_new = comm.allreduce(len(alive), category="rebuild")
        new_ids = base + np.arange(len(alive), dtype=np.int64)
        alive_sorted = alive  # np.unique output is sorted

        def lookup_owned(ids: np.ndarray) -> np.ndarray:
            pos = np.searchsorted(alive_sorted, ids)
            bad = (pos >= len(alive_sorted)) | (
                alive_sorted[np.minimum(pos, max(len(alive_sorted) - 1, 0))]
                != ids
            )
            if np.any(bad):
                raise KeyError(
                    f"rank {comm.rank}: asked for dead community ids "
                    f"{np.asarray(ids)[bad][:5].tolist()}"
                )
            return new_ids[pos]

        # --- step 4: propagate new ids for every community used here ---
        new_of_used = remote_lookup(
            comm, dg.owner_of, used, lookup_owned, category="rebuild"
        )

        def translate(ids: np.ndarray) -> np.ndarray:
            return new_of_used[np.searchsorted(used_sorted, ids)]

    local_new = translate(local_comm)
    ghost_new = translate(ghost_comm) if len(ghost_comm) else ghost_comm

    # --- step 5: partial meta edge lists --------------------------------
    rows = np.repeat(
        np.arange(dg.num_local, dtype=np.int64), np.diff(dg.index)
    )
    # Community of each edge target: local targets via local_new, ghost
    # targets via ghost_new (the compressed-target trick).
    ctargets = dg.compressed_targets(plan)
    target_new = np.concatenate([local_new, ghost_new])[ctargets] if len(
        ctargets
    ) else np.empty(0, np.int64)
    src_new = local_new[rows]
    comm.charge_compute(dg.num_local_entries, category="rebuild")

    # --- step 6: redistribute by new owner ------------------------------
    if repartition == "community":
        new_offsets = None
        rank_of_new = _community_placement(
            comm, int(n_new), src_new, target_new, dg.weights
        )
        dest = rank_of_new[src_new] if len(src_new) else src_new
    else:
        new_offsets = even_vertex(int(n_new), comm.size)
        rank_of_new = None
        dest = np.searchsorted(new_offsets, src_new, side="right") - 1
    outgoing = []
    for r, (s, d, w) in enumerate(
        split_by_rank(dest, comm.size, src_new, target_new, dg.weights)
    ):
        # Pre-aggregate per destination to cut message volume (the
        # "partial new edge lists" of step 5 are already combined).
        outgoing.append(_combine_entries(s, d, w))
    received = comm.alltoall(outgoing, category="rebuild")

    rs = np.concatenate([t[0] for t in received])
    rd = np.concatenate([t[1] for t in received])
    rw = np.concatenate([t[2] for t in received])

    # --- step 7: rebuild local CSR --------------------------------------
    if repartition == "community":
        assert rank_of_new is not None
        owned = np.flatnonzero(rank_of_new == comm.rank)
        index, edges, weights = _aggregate_directed(
            np.searchsorted(owned, rs), rd, rw, len(owned)
        )
        new_dg = DistGraph(
            offsets=None,
            rank=comm.rank,
            index=index,
            edges=edges,
            weights=weights,
            total_weight=dg.total_weight,
            owned_ids=owned,
            rank_of=rank_of_new,
            rank_count=comm.size,
        )
    else:
        vb = int(new_offsets[comm.rank])
        nlocal_new = int(new_offsets[comm.rank + 1]) - vb
        index, edges, weights = _aggregate_directed(
            rs - vb, rd, rw, nlocal_new
        )
        new_dg = DistGraph(
            offsets=new_offsets,
            rank=comm.rank,
            index=index,
            edges=edges,
            weights=weights,
            total_weight=dg.total_weight,
        )
    return new_dg, local_new


def _community_placement(
    comm: Communicator,
    n_new: int,
    src_new: np.ndarray,
    target_new: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Replicated greedy placement of coarse communities onto ranks.

    Each rank pre-aggregates its partial meta edge list, the lists are
    allgathered (the one-time migration-planning exchange, charged to
    the ``"partition"`` category), merged deterministically, and fed to
    :func:`~repro.graph.partition.place_communities`.  Every rank runs
    the same greedy on the same merged list, so the returned owner map
    is replicated without a broadcast.
    """
    s, d, w = _combine_entries(src_new, target_new, weights)
    gathered = comm.allgather((s, d, w), category="partition")
    ms, md, mw = _combine_entries(
        np.concatenate([t[0] for t in gathered]),
        np.concatenate([t[1] for t in gathered]),
        np.concatenate([t[2] for t in gathered]),
    )
    # Greedy scan: one pass over the merged list plus a per-community
    # argmax over ranks.
    comm.charge_compute(len(ms) + n_new * comm.size, category="partition")
    return place_communities(n_new, ms, md, mw, comm.size)


def _combine_entries(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge duplicate (src, dst) pairs by summing weights."""
    if not len(src):
        return src, dst, w
    span = np.int64(max(int(dst.max()) + 1, 1))
    key = src * span + dst
    order = np.argsort(key, kind="stable")
    key, src, dst, w = key[order], src[order], dst[order], w[order]
    uniq = np.empty(len(key), dtype=bool)
    uniq[0] = True
    np.not_equal(key[1:], key[:-1], out=uniq[1:])
    starts = np.flatnonzero(uniq)
    return src[starts], dst[starts], np.add.reduceat(w, starts)
