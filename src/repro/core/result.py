"""Result containers: per-iteration/per-phase statistics and final output.

Figures 5 and 6 of the paper plot modularity growth and iterations per
phase; :class:`LouvainResult` keeps exactly the series needed to redraw
them, alongside the final community assignment and modelled timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime.tracing import TraceReport


@dataclass(frozen=True)
class IterationStats:
    """One Louvain iteration within a phase (one row of Fig. 5a/6a)."""

    phase: int
    iteration: int
    modularity: float
    moves: int
    active_fraction: float
    inactive_fraction: float


@dataclass(frozen=True)
class PhaseStats:
    """One Louvain phase (graph level) — one point of Fig. 5b/6b."""

    phase: int
    tau: float
    num_iterations: int
    modularity: float
    num_vertices: int
    num_edges: int
    exited_by_inactive: bool = False  # ETC's 90%-inactive exit fired
    #: Achieved cross-rank stored-entry fraction of the graph this phase
    #: ran on (distributed runs; -1.0 when not measured, e.g. serial
    #: runs or pre-existing checkpoints).
    ghost_fraction: float = -1.0


@dataclass
class LouvainResult:
    """Outcome of a full (multi-phase) Louvain run.

    ``assignment`` maps every *original* vertex to its final community,
    with community ids renumbered contiguously from 0.
    """

    modularity: float
    assignment: np.ndarray
    phases: list[PhaseStats] = field(default_factory=list)
    iterations: list[IterationStats] = field(default_factory=list)
    #: Modelled execution time in seconds (distributed runs only).
    elapsed: float = 0.0
    #: Trace breakdown (distributed runs only).
    trace: TraceReport | None = None
    #: Per-phase assignments of original vertices (when tracking is on).
    phase_assignments: list[np.ndarray] | None = None

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_iterations(self) -> int:
        return sum(p.num_iterations for p in self.phases)

    @property
    def num_communities(self) -> int:
        return int(self.assignment.max()) + 1 if len(self.assignment) else 0

    def community_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_communities)

    def modularity_by_iteration(self) -> list[tuple[int, float]]:
        """Cumulative iteration index -> modularity (Fig. 5a/6a series)."""
        return [
            (i, it.modularity) for i, it in enumerate(self.iterations)
        ]

    def iterations_per_phase(self) -> list[tuple[int, int]]:
        """Phase -> iteration count (Fig. 5b/6b series)."""
        return [(p.phase, p.num_iterations) for p in self.phases]

    def summary(self) -> str:
        return (
            f"Q={self.modularity:.5f} communities={self.num_communities} "
            f"phases={self.num_phases} iterations={self.total_iterations} "
            f"elapsed={self.elapsed:.4f}s"
        )


def normalize_assignment(raw: np.ndarray) -> np.ndarray:
    """Renumber arbitrary community ids to 0..k-1 (order-preserving)."""
    _, dense = np.unique(raw, return_inverse=True)
    return dense.astype(np.int64)
