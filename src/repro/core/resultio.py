"""Persist and reload community detection results.

Two formats:

* ``.npz`` — compact binary (assignment + scalar metadata), the choice
  for pipelines;
* ``.txt`` — one ``vertex community`` pair per line, the conventional
  interchange format ground-truth files (e.g. LFR, SNAP communities)
  use, so results can be compared with external tools.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .result import LouvainResult, PhaseStats


def save_result(path: str | os.PathLike, result: LouvainResult) -> None:
    """Save a result as ``.npz`` (assignment + run metadata)."""
    meta = {
        "modularity": result.modularity,
        "elapsed": result.elapsed,
        "phases": [
            {
                "phase": p.phase,
                "tau": p.tau,
                "num_iterations": p.num_iterations,
                "modularity": p.modularity,
                "num_vertices": p.num_vertices,
                "num_edges": p.num_edges,
                "exited_by_inactive": p.exited_by_inactive,
            }
            for p in result.phases
        ],
    }
    np.savez_compressed(
        path,
        assignment=result.assignment,
        meta=np.array(json.dumps(meta)),
    )


def load_result(path: str | os.PathLike) -> LouvainResult:
    """Reload a result saved by :func:`save_result`.

    Per-iteration statistics are not persisted (they are diagnostics of
    a run, not part of the result); phases and the final state are.
    """
    with np.load(path, allow_pickle=False) as data:
        assignment = data["assignment"]
        meta = json.loads(str(data["meta"]))
    phases = [
        PhaseStats(
            phase=p["phase"],
            tau=p["tau"],
            num_iterations=p["num_iterations"],
            modularity=p["modularity"],
            num_vertices=p["num_vertices"],
            num_edges=p["num_edges"],
            exited_by_inactive=p["exited_by_inactive"],
        )
        for p in meta["phases"]
    ]
    return LouvainResult(
        modularity=meta["modularity"],
        assignment=assignment.astype(np.int64),
        phases=phases,
        elapsed=meta["elapsed"],
    )


def write_communities_text(
    path: str | os.PathLike, assignment: np.ndarray
) -> None:
    """Write ``vertex community`` pairs, one per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for v, c in enumerate(assignment):
            fh.write(f"{v} {c}\n")


def read_communities_text(path: str | os.PathLike) -> np.ndarray:
    """Read ``vertex community`` pairs back into a dense array."""
    pairs = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'vertex community'"
                )
            pairs.append((int(parts[0]), int(parts[1])))
    if not pairs:
        return np.empty(0, dtype=np.int64)
    n = max(v for v, _ in pairs) + 1
    out = np.full(n, -1, dtype=np.int64)
    for v, c in pairs:
        out[v] = c
    if np.any(out < 0):
        missing = int(np.flatnonzero(out < 0)[0])
        raise ValueError(f"{path}: no community listed for vertex {missing}")
    return out
