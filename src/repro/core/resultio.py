"""Persist and reload community detection results.

Two formats:

* ``.npz`` — compact binary (assignment + scalar metadata), the choice
  for pipelines;
* ``.txt`` — one ``vertex community`` pair per line, the conventional
  interchange format ground-truth files (e.g. LFR, SNAP communities)
  use, so results can be compared with external tools.
"""

from __future__ import annotations

import io
import json
import os
import tempfile

import numpy as np

from .result import LouvainResult, PhaseStats

#: On-disk ``.npz`` layout version.  Bump on incompatible changes; v1
#: files (written before the field existed) are still accepted.
RESULT_FORMAT_VERSION = 2


def save_result(path: str | os.PathLike, result: LouvainResult) -> None:
    """Save a result as ``.npz`` (assignment + run metadata).

    The write is crash-safe: the archive is assembled in memory,
    written to a temporary file in the destination directory, and moved
    into place with an atomic rename — a crash mid-save never leaves a
    truncated file at ``path``.
    """
    meta = {
        "format_version": RESULT_FORMAT_VERSION,
        "modularity": result.modularity,
        "elapsed": result.elapsed,
        "phases": [
            {
                "phase": p.phase,
                "tau": p.tau,
                "num_iterations": p.num_iterations,
                "modularity": p.modularity,
                "num_vertices": p.num_vertices,
                "num_edges": p.num_edges,
                "exited_by_inactive": p.exited_by_inactive,
            }
            for p in result.phases
        ],
    }
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        assignment=result.assignment,
        meta=np.array(json.dumps(meta)),
    )
    path = os.fspath(path)
    if not path.endswith(".npz"):  # np.savez appends the suffix itself
        path += ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(buf.getvalue())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_result(path: str | os.PathLike) -> LouvainResult:
    """Reload a result saved by :func:`save_result`.

    Per-iteration statistics are not persisted (they are diagnostics of
    a run, not part of the result); phases and the final state are.
    Raises :class:`ValueError` if the file was written by a newer,
    incompatible format version.
    """
    with np.load(path, allow_pickle=False) as data:
        assignment = data["assignment"]
        meta = json.loads(str(data["meta"]))
    version = meta.get("format_version", 1)  # pre-versioning files are v1
    if not 1 <= version <= RESULT_FORMAT_VERSION:
        raise ValueError(
            f"{os.fspath(path)}: result format version {version} is not "
            f"supported (this build reads versions 1.."
            f"{RESULT_FORMAT_VERSION}); re-save with a matching version"
        )
    phases = [
        PhaseStats(
            phase=p["phase"],
            tau=p["tau"],
            num_iterations=p["num_iterations"],
            modularity=p["modularity"],
            num_vertices=p["num_vertices"],
            num_edges=p["num_edges"],
            exited_by_inactive=p["exited_by_inactive"],
        )
        for p in meta["phases"]
    ]
    return LouvainResult(
        modularity=meta["modularity"],
        assignment=assignment.astype(np.int64),
        phases=phases,
        elapsed=meta["elapsed"],
    )


def write_communities_text(
    path: str | os.PathLike, assignment: np.ndarray
) -> None:
    """Write ``vertex community`` pairs, one per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for v, c in enumerate(assignment):
            fh.write(f"{v} {c}\n")


def read_communities_text(path: str | os.PathLike) -> np.ndarray:
    """Read ``vertex community`` pairs back into a dense array."""
    pairs = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'vertex community'"
                )
            pairs.append((int(parts[0]), int(parts[1])))
    if not pairs:
        return np.empty(0, dtype=np.int64)
    n = max(v for v, _ in pairs) + 1
    out = np.full(n, -1, dtype=np.int64)
    for v, c in pairs:
        out[v] = c
    if np.any(out < 0):
        missing = int(np.flatnonzero(out < 0)[0])
        raise ValueError(f"{path}: no community listed for vertex {missing}")
    return out
