"""Vectorised move-selection kernel for one Louvain iteration.

The paper's implementation is MPI+OpenMP: within a rank, vertices are
processed *in parallel* by OpenMP threads, so move decisions within one
iteration are made against a snapshot of the community state from the
iteration start (the same semantics as Grappolo [22]).  This module
implements that snapshot sweep as numpy segment operations:

1. group every (vertex, neighbouring community) pair and sum the edge
   weights into ``d_{u,c}``;
2. score each candidate ``score(c) = d_{u,c} - k_u * tot'(c) / W`` where
   ``tot'`` excludes ``u``'s own degree from its current community —
   maximising this score is equivalent to maximising the modularity gain
   of Algorithm 1 line 6;
3. per vertex, pick the best-scoring community (ties broken toward the
   smallest community id, which also gives deterministic output);
4. suppress the classic singleton-singleton swap oscillation: when both
   the vertex's community and the target are singletons, only the move
   toward the smaller id is allowed (the "minimum labelling" rule of
   Lu et al. [22]).

The kernel knows nothing about ownership: the distributed caller feeds
it snapshot community ids for *global* targets and a ``tot`` lookup that
covers remotely-owned communities, so exactly the same decision logic
runs in the serial, shared-memory and distributed paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Relative tolerance for "strictly positive gain" decisions.
GAIN_EPS = 1e-12


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one snapshot sweep over the local vertices."""

    #: Proposed community per local vertex (== current where no move).
    proposal: np.ndarray
    #: True where the proposal differs from the current community.
    moved: np.ndarray
    #: Number of (vertex, community) candidate pairs evaluated — the
    #: work measure charged to the performance model.
    pairs_evaluated: int

    @property
    def num_moves(self) -> int:
        return int(self.moved.sum())


def propose_moves(
    index: np.ndarray,
    target_comm: np.ndarray,
    weights: np.ndarray,
    self_mask: np.ndarray,
    degrees: np.ndarray,
    cur_comm: np.ndarray,
    total_weight: float,
    tot_lookup: Callable[[np.ndarray], np.ndarray],
    size_lookup: Callable[[np.ndarray], np.ndarray],
    active: np.ndarray | None = None,
    resolution: float = 1.0,
) -> SweepResult:
    """Compute the best move for every (active) local vertex.

    Parameters
    ----------
    index:
        Local CSR row index, ``int64[nloc + 1]``.
    target_comm:
        Snapshot community id of every edge target, aligned with the CSR
        entries (ghosts already resolved by the caller).
    weights:
        Edge weights aligned with the entries.
    self_mask:
        True for entries that are self loops (excluded from ``d_{u,c}``).
    degrees:
        Weighted degree ``k_u`` per local vertex.
    cur_comm:
        Current community id per local vertex.
    total_weight:
        Global ``W`` (= 2m).
    tot_lookup / size_lookup:
        Vectorised maps from community ids to the snapshot ``a_c`` and
        community size.  Must cover every id in ``target_comm`` and
        ``cur_comm``.
    active:
        Bool mask of vertices participating this iteration (ET); default
        all.  Inactive vertices never move but still appear as targets in
        their neighbours' candidate lists.
    resolution:
        Gamma of generalized modularity: candidate scores become
        ``d_{u,c} - gamma * k_u * tot'(c) / W``; 1.0 is classic Q.
    """
    nloc = len(index) - 1
    if active is None:
        active = np.ones(nloc, dtype=bool)
    proposal = cur_comm.copy()
    moved = np.zeros(nloc, dtype=bool)
    if nloc == 0 or total_weight <= 0.0:
        return SweepResult(proposal=proposal, moved=moved, pairs_evaluated=0)

    rows = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(index))
    keep = active[rows] & ~self_mask
    c_rows = rows[keep]
    c_comm = target_comm[keep]
    c_w = weights[keep]

    # Guarantee the current community is a candidate for every active
    # vertex (zero-weight synthetic entry), so src_score always exists.
    act_ids = np.flatnonzero(active)
    if len(act_ids) == 0:
        return SweepResult(proposal=proposal, moved=moved, pairs_evaluated=0)
    c_rows = np.concatenate([c_rows, act_ids])
    c_comm = np.concatenate([c_comm, cur_comm[act_ids]])
    c_w = np.concatenate([c_w, np.zeros(len(act_ids))])

    # Group by (row, community) and sum weights -> d_{u,c}.
    order = np.lexsort((c_comm, c_rows))
    c_rows, c_comm, c_w = c_rows[order], c_comm[order], c_w[order]
    first = np.empty(len(c_rows), dtype=bool)
    first[0] = True
    first[1:] = (c_rows[1:] != c_rows[:-1]) | (c_comm[1:] != c_comm[:-1])
    starts = np.flatnonzero(first)
    d = np.add.reduceat(c_w, starts)
    pr = c_rows[starts]
    pc = c_comm[starts]

    # Score candidates against the snapshot totals (minus own degree
    # when evaluating the current community).
    tot_eff = tot_lookup(pc).astype(np.float64, copy=True)
    is_src = pc == cur_comm[pr]
    tot_eff[is_src] -= degrees[pr[is_src]]
    score = d - resolution * degrees[pr] * tot_eff / total_weight

    # Per-row argmax with smallest-community-id tie break: sort so the
    # winner is the last element of each row group.
    order2 = np.lexsort((-pc, score, pr))
    pr2, pc2, score2 = pr[order2], pc[order2], score[order2]
    last = np.empty(len(pr2), dtype=bool)
    last[-1] = True
    last[:-1] = pr2[1:] != pr2[:-1]
    win_rows = pr2[last]
    win_comm = pc2[last]
    win_score = score2[last]

    src_rows = pr[is_src]
    src_score = np.empty(nloc, dtype=np.float64)
    src_score[src_rows] = score[is_src]

    eps = GAIN_EPS * (1.0 + np.abs(src_score[win_rows]))
    better = win_score > src_score[win_rows] + eps
    cand_rows = win_rows[better]
    cand_comm = win_comm[better]

    # Singleton-singleton swap suppression (minimum labelling).
    if len(cand_rows):
        src_c = cur_comm[cand_rows]
        src_alone = (size_lookup(src_c) == 1) & (
            np.abs(tot_lookup(src_c) - degrees[cand_rows]) <= 1e-9
        )
        dst_single = size_lookup(cand_comm) == 1
        blocked = src_alone & dst_single & (cand_comm > src_c)
        cand_rows = cand_rows[~blocked]
        cand_comm = cand_comm[~blocked]

    proposal[cand_rows] = cand_comm
    moved[cand_rows] = True
    return SweepResult(
        proposal=proposal, moved=moved, pairs_evaluated=len(pr)
    )


def array_lookup(ids: np.ndarray, values: np.ndarray) -> Callable:
    """Lookup over a dense array indexed directly by community id."""
    del ids  # dense case: the id *is* the index

    def look(query: np.ndarray) -> np.ndarray:
        return values[query]

    return look


def sorted_lookup(ids: np.ndarray, values: np.ndarray) -> Callable:
    """Lookup over sparse (sorted ids, values) pairs via searchsorted.

    Raises ``KeyError`` on a miss — in the distributed algorithm a miss
    means a community's owner was never asked for its totals, which is a
    protocol bug worth failing loudly on.
    """

    def look(query: np.ndarray) -> np.ndarray:
        query = np.asarray(query)
        if len(ids) == 0:
            if len(query):
                raise KeyError(
                    f"community totals missing for ids "
                    f"{np.unique(query)[:5].tolist()} (empty table)"
                )
            return np.empty(0, dtype=values.dtype)
        pos = np.searchsorted(ids, query)
        bad = (pos >= len(ids)) | (ids[np.minimum(pos, len(ids) - 1)] != query)
        if np.any(bad):
            missing = np.unique(np.asarray(query)[bad])[:5]
            raise KeyError(
                f"community totals missing for ids {missing.tolist()}"
            )
        return values[pos]

    return look
