"""Shared-memory parallel Louvain in the style of Grappolo [22].

The paper uses Grappolo as its single-node comparator (Table III) and as
the vehicle for the preliminary ET study (Table I).  This module
reproduces its algorithmic behaviour:

* vertices decide moves **in parallel against an iteration-start
  snapshot** (OpenMP semantics), implemented here with the shared
  vectorised sweep kernel;
* optional **distance-1 coloring**: color classes are processed one
  after another, each class in parallel, so vertices moving together are
  never adjacent — Grappolo's convergence heuristic;
* optional **vertex following**: degree-1 vertices are pre-merged into
  their sole neighbour's community at the start of each phase;
* the ET heuristic (Eq. 3) exactly as §IV-B(b) describes modifying the
  multithreaded implementation for Table I.

Thread count affects modelled time through the machine model's OpenMP
curve; the algorithmic trajectory is deterministic and thread-agnostic
(as is Grappolo's under coloring).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.perfmodel import CORI_HASWELL_SHARED, MachineModel
from .coarsen import coarsen_csr
from .config import LouvainConfig
from .heuristics import EarlyTermination, ThresholdCycler, make_rank_rng
from .result import IterationStats, LouvainResult, PhaseStats, normalize_assignment
from .sweep import propose_moves


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+c)`` for each (start, count), counts > 0."""
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if len(starts) > 1:
        bounds = np.cumsum(counts[:-1])
        out[bounds] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


def greedy_coloring(g: CSRGraph) -> np.ndarray:
    """Distance-1 greedy coloring (smallest available color, id order).

    Vectorised wave schedule producing the exact sequential result: the
    id-order greedy color of ``u`` depends only on its lower-id
    neighbours, so each wave colors every vertex whose lower-id
    neighbours are all colored and computes the per-vertex mex with
    segment ops over the wave's edge list.  Two vertices in the same
    wave are never adjacent, so within-wave order cannot matter.
    Bit-identical to :func:`_greedy_coloring_loop`.
    """
    n = g.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.index))
    lower = g.edges < rows
    pred_rows = rows[lower]  # already sorted by row
    pred_cols = g.edges[lower]
    pred_index = np.searchsorted(pred_rows, np.arange(n + 1))
    remaining = np.bincount(pred_rows, minlength=n)
    # Reverse CSR: for each vertex, the higher-id vertices waiting on it.
    order = np.argsort(pred_cols, kind="stable")
    succ_targets = pred_rows[order]
    succ_index = np.searchsorted(pred_cols[order], np.arange(n + 1))
    ready = np.flatnonzero(remaining == 0)
    while ready.size:
        colors[ready] = _wave_mex(ready, pred_index, pred_cols, colors)
        remaining[ready] = -1  # retire: never becomes ready again
        starts = succ_index[ready]
        counts = succ_index[ready + 1] - starts
        nz = counts > 0
        if np.any(nz):
            waiting = succ_targets[_ranges(starts[nz], counts[nz])]
            np.subtract.at(remaining, waiting, 1)
        ready = np.flatnonzero(remaining == 0)
    return colors


def _wave_mex(
    ready: np.ndarray,
    pred_index: np.ndarray,
    pred_cols: np.ndarray,
    colors: np.ndarray,
) -> np.ndarray:
    """Smallest color unused by each ready vertex's lower-id neighbours."""
    starts = pred_index[ready]
    counts = pred_index[ready + 1] - starts
    m = len(ready)
    nz = counts > 0
    if not np.any(nz):
        return np.zeros(m, dtype=np.int64)
    eids = _ranges(starts[nz], counts[nz])
    group = np.repeat(np.flatnonzero(nz), counts[nz])
    taken = colors[pred_cols[eids]]
    # Unique (group, color) pairs, color-sorted within each group.
    order = np.lexsort((taken, group))
    gs, cs = group[order], taken[order]
    keep = np.ones(len(gs), dtype=bool)
    keep[1:] = (gs[1:] != gs[:-1]) | (cs[1:] != cs[:-1])
    gs, cs = gs[keep], cs[keep]
    # mex = first rank where the sorted unique colors skip a value.
    grp_start = np.searchsorted(gs, np.arange(m))
    rank = np.arange(len(gs), dtype=np.int64) - grp_start[gs]
    mex = (np.searchsorted(gs, np.arange(1, m + 1)) - grp_start).astype(
        np.int64
    )
    gap = cs != rank
    np.minimum.at(mex, gs[gap], rank[gap])
    return mex


def _greedy_coloring_loop(g: CSRGraph) -> np.ndarray:
    """Reference per-vertex scan (kept for equivalence tests and benches)."""
    n = g.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        nbrs, _ = g.neighbors(u)
        taken = set(int(colors[v]) for v in nbrs if colors[v] >= 0)
        c = 0
        while c in taken:
            c += 1
        colors[u] = c
    return colors


def vertex_following_seed(g: CSRGraph) -> np.ndarray:
    """Initial assignment merging degree-1 vertices into their neighbour.

    Lu et al.'s vertex-following heuristic: a vertex with exactly one
    (non-loop) neighbour can never profitably sit in its own community,
    so it starts in the neighbour's.  Vectorised over the CSR index with
    the same single-pass id-order semantics as the reference loop: a
    leaf adopts its neighbour's label, and a mutual leaf pair (isolated
    edge) lands on the larger id — bit-identical to
    :func:`_vertex_following_loop`.
    """
    n = g.num_vertices
    comm = np.arange(n, dtype=np.int64)
    if n == 0 or g.nnz == 0:
        return comm
    deg = np.diff(g.index)
    # First stored neighbour per row (clamped for trailing empty rows,
    # whose leaf mask is False anyway).
    nbr = g.edges[np.minimum(g.index[:-1], g.nnz - 1)]
    # True leaf: exactly one neighbour and no self loop.  (A meta vertex
    # with a self loop has internal structure; following it would
    # wrongly dissolve a whole community.)
    leaf = (deg == 1) & (nbr != np.arange(n, dtype=np.int64))
    comm[leaf] = nbr[leaf]
    # A leaf's neighbour is itself a leaf only on an isolated edge; the
    # sequential pass lands both endpoints on the larger id.
    ids = np.flatnonzero(leaf)
    partner = nbr[ids]
    mutual = leaf[partner] & (nbr[partner] == ids)
    comm[ids[mutual]] = np.maximum(ids[mutual], partner[mutual])
    return comm


def _vertex_following_loop(g: CSRGraph) -> np.ndarray:
    """Reference per-vertex scan (kept for equivalence tests and benches)."""
    n = g.num_vertices
    comm = np.arange(n, dtype=np.int64)
    for u in range(n):
        nbrs, _ = g.neighbors(u)
        if len(nbrs) == 1 and nbrs[0] != u:
            comm[u] = comm[nbrs[0]]
    return comm


class _Timer:
    """Accumulates modelled seconds for the shared-memory run."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.seconds = 0.0

    def charge(self, ops: float) -> None:
        self.seconds += self.machine.compute_cost(ops)


def grappolo_louvain(
    g: CSRGraph,
    config: LouvainConfig | None = None,
    *,
    threads: int = 8,
    coloring: bool = True,
    vertex_following: bool = True,
    machine: MachineModel = CORI_HASWELL_SHARED,
    initial_assignment: np.ndarray | None = None,
) -> LouvainResult:
    """Multi-phase shared-memory Louvain; returns result with modelled time.

    ``initial_assignment`` warm-starts phase 0 from an existing
    partition (arbitrary integer labels) instead of singletons — the
    dynamic re-detection mode of [14].
    """
    config = config or LouvainConfig()
    if initial_assignment is not None and len(initial_assignment) != g.num_vertices:
        raise ValueError(
            f"initial_assignment covers {len(initial_assignment)} vertices, "
            f"graph has {g.num_vertices}"
        )
    timer = _Timer(machine.with_threads(threads))
    orig_assign = np.arange(g.num_vertices, dtype=np.int64)
    cur = g
    cycler = (
        ThresholdCycler(config)
        if config.variant.uses_threshold_cycling
        else None
    )
    prev_mod = -np.inf
    phases: list[PhaseStats] = []
    iterations: list[IterationStats] = []
    final_mod = 0.0

    for phase in range(config.max_phases):
        tau = cycler.tau_for_phase(phase) if cycler else config.tau
        assignment, mod, stats, exited_inactive = _phase(
            cur, tau, config, phase, timer, coloring, vertex_following,
            seed_assignment=initial_assignment if phase == 0 else None,
        )
        iterations.extend(stats)
        phases.append(
            PhaseStats(
                phase=phase,
                tau=tau,
                num_iterations=len(stats),
                modularity=mod,
                num_vertices=cur.num_vertices,
                num_edges=cur.num_edges,
                exited_by_inactive=exited_inactive,
            )
        )
        meta, vertex_to_meta = coarsen_csr(cur, assignment)
        timer.charge(cur.nnz)  # rebuild pass
        orig_assign = vertex_to_meta[orig_assign]
        final_mod = mod

        gain = mod - prev_mod
        no_merge = meta.num_vertices == cur.num_vertices
        if gain <= tau or no_merge:
            if cycler and not cycler.in_final_pass and tau > cycler.final_tau:
                cycler.enter_final_pass()
                prev_mod = mod
                cur = meta
                continue
            break
        prev_mod = mod
        cur = meta

    return LouvainResult(
        modularity=final_mod,
        assignment=normalize_assignment(orig_assign),
        phases=phases,
        iterations=iterations,
        elapsed=timer.seconds,
    )


def _phase(
    g: CSRGraph,
    tau: float,
    config: LouvainConfig,
    phase: int,
    timer: _Timer,
    coloring: bool,
    vertex_following: bool,
    seed_assignment: np.ndarray | None = None,
) -> tuple[np.ndarray, float, list[IterationStats], bool]:
    n = g.num_vertices
    w = g.total_weight
    k = g.degrees()
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.index))
    self_mask = g.edges == rows

    if seed_assignment is not None:
        # Warm start: rename each community to its minimum member vertex
        # so labels live in the vertex-id space the sweep expects.
        from .distlouvain import _labels_to_vertex_space

        comm = _labels_to_vertex_space(seed_assignment)
    else:
        comm = (
            vertex_following_seed(g)
            if vertex_following
            else np.arange(n, dtype=np.int64)
        )
        if vertex_following:
            timer.charge(g.nnz)

    if coloring and n:
        colors = greedy_coloring(g)
        color_classes = [
            np.flatnonzero(colors == c) for c in range(int(colors.max()) + 1)
        ]
        timer.charge(g.nnz)
    else:
        color_classes = [np.arange(n, dtype=np.int64)]

    et = (
        EarlyTermination(n, config, make_rank_rng(config.seed, 0, phase))
        if config.variant.uses_early_termination
        else None
    )
    stats: list[IterationStats] = []
    prev_q = -np.inf
    q = 0.0
    exited_inactive = False

    for it in range(config.max_iterations):
        active = et.draw_active() if et else np.ones(n, dtype=bool)
        moved = np.zeros(n, dtype=bool)
        for cls in color_classes:
            cls_active = np.zeros(n, dtype=bool)
            cls_active[cls] = active[cls]
            if not cls_active.any():
                continue
            tot = np.zeros(n, dtype=np.float64)
            np.add.at(tot, comm, k)
            size = np.bincount(comm, minlength=n)
            res = propose_moves(
                index=g.index,
                target_comm=comm[g.edges],
                weights=g.weights,
                self_mask=self_mask,
                degrees=k,
                cur_comm=comm,
                total_weight=w,
                tot_lookup=lambda ids, t=tot: t[ids],
                size_lookup=lambda ids, s=size: s[ids],
                active=cls_active,
                resolution=config.resolution,
            )
            comm = res.proposal
            moved |= res.moved
            timer.charge(res.pairs_evaluated + int(cls_active[rows].sum()))

        q = _modularity_dense(g, comm, k, w, rows, config.resolution)
        timer.charge(g.nnz)  # modularity pass
        inactive_frac = 0.0
        if et is not None:
            et.update(moved)
            inactive_frac = et.inactive_fraction()
        stats.append(
            IterationStats(
                phase=phase,
                iteration=it,
                modularity=q,
                moves=int(moved.sum()),
                active_fraction=float(active.mean()) if n else 1.0,
                inactive_fraction=inactive_frac,
            )
        )
        if (
            config.variant.uses_inactive_exit
            and inactive_frac >= config.etc_exit_fraction
        ):
            exited_inactive = True
            break
        if q - prev_q <= tau:
            break
        prev_q = q

    return comm, q, stats, exited_inactive


def _modularity_dense(
    g: CSRGraph,
    comm: np.ndarray,
    k: np.ndarray,
    w: float,
    rows: np.ndarray,
    resolution: float = 1.0,
) -> float:
    if w <= 0:
        return 0.0
    intra = comm[rows] == comm[g.edges]
    cin = float(g.weights[intra].sum())
    tot = np.zeros(g.num_vertices, dtype=np.float64)
    np.add.at(tot, comm, k)
    return cin / w - resolution * float(np.square(tot / w).sum())
