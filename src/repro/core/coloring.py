"""Distributed distance-1 graph coloring (paper §VI future work).

The paper's conclusion proposes "the use of distance-1 coloring to
ensure that the set of vertices that are processed in parallel for
community assignments are mutually non-adjacent and hence independent.
This may lead to faster convergence."  This module implements it with
the Jones-Plassmann algorithm adapted to the simulated runtime:

* every vertex gets a random priority (a deterministic hash of its
  global id and the seed);
* in rounds, each uncoloured vertex whose priority beats every
  uncoloured neighbour picks the smallest colour unused by its already-
  coloured neighbours;
* each round exchanges the (colour, done) state of ghost vertices.

The colouring is *global*: two adjacent vertices never share a colour
even across rank boundaries, so processing one colour class at a time
gives the distributed sweep the sequential algorithm's freshness
guarantees (at the price of extra synchronisation per iteration — the
trade-off `benchmarks/test_ablation_coloring.py` measures).
"""

from __future__ import annotations

import numpy as np

from ..graph.distgraph import DistGraph, GhostPlan
from ..runtime.comm import Communicator

#: Colour value meaning "not coloured yet".
UNCOLORED = np.int64(-1)


def _priorities(ids: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic pseudo-random priority per global vertex id.

    SplitMix64-style mixing: uncorrelated with vertex order, identical
    on every rank, no communication needed.
    """
    offset = np.uint64((seed * 0x9E3779B97F4A7C15) % (1 << 64))
    x = (ids.astype(np.uint64) + offset) * np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def distributed_coloring(
    comm: Communicator,
    dg: DistGraph,
    plan: GhostPlan | None = None,
    seed: int = 0,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Colour the distributed graph; returns a colour per owned vertex.

    Colours are dense from 0.  Self loops are ignored (a vertex is not
    adjacent to itself for colouring purposes).  Deterministic given
    ``seed`` and the graph.
    """
    plan = plan or dg.build_ghost_plan(comm)
    nloc = dg.num_local
    colors = np.full(nloc, UNCOLORED, dtype=np.int64)
    ctargets = dg.compressed_targets(plan)
    rows = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(dg.index))
    row_gid = np.asarray(dg.from_local(rows))
    self_mask = dg.edges == row_gid

    my_prio = _priorities(dg.local_vertex_ids().astype(np.uint64), seed)
    ghost_prio = _priorities(plan.ghost_ids.astype(np.uint64), seed)
    all_prio = np.concatenate([my_prio, ghost_prio])

    for _ in range(max_rounds):
        # Refresh ghost colours (UNCOLORED propagates naturally).
        ghost_colors = dg.exchange_ghost_values(
            comm, plan, colors, category="other"
        )
        all_colors = np.concatenate([colors, ghost_colors])
        target_colors = all_colors[ctargets] if len(ctargets) else all_colors[:0]
        target_prio = all_prio[ctargets] if len(ctargets) else all_prio[:0]

        uncolored = colors == UNCOLORED
        # A vertex wins the round if every *uncoloured* neighbour has a
        # strictly lower priority (ties broken by global id, which the
        # hash makes vanishingly rare but still must be deterministic).
        contested = (
            ~self_mask
            & uncolored[rows]
            & (target_colors == UNCOLORED)
        )
        beaten = np.zeros(nloc, dtype=bool)
        if contested.any():
            cr = rows[contested]
            higher = (target_prio[contested] > my_prio[cr]) | (
                (target_prio[contested] == my_prio[cr])
                & (dg.edges[contested] > row_gid[contested])
            )
            np.logical_or.at(beaten, cr, higher)
        winners = uncolored & ~beaten
        comm.charge_compute(dg.num_local_entries, category="other")

        if winners.any():
            # Smallest colour unused by coloured neighbours, per winner.
            colored_entries = ~self_mask & (target_colors != UNCOLORED)
            for u in np.flatnonzero(winners):
                lo, hi = dg.index[u], dg.index[u + 1]
                used = set(
                    int(c)
                    for c in target_colors[lo:hi][colored_entries[lo:hi]]
                )
                c = 0
                while c in used:
                    c += 1
                colors[u] = c

        remaining = comm.allreduce(
            int((colors == UNCOLORED).sum()), category="other"
        )
        if remaining == 0:
            return colors
    raise RuntimeError(
        f"coloring failed to converge within {max_rounds} rounds"
    )


def verify_coloring(
    comm: Communicator,
    dg: DistGraph,
    colors: np.ndarray,
    plan: GhostPlan | None = None,
) -> bool:
    """SPMD check that no edge connects same-coloured endpoints."""
    plan = plan or dg.build_ghost_plan(comm)
    ghost_colors = dg.exchange_ghost_values(
        comm, plan, colors, category="other"
    )
    ctargets = dg.compressed_targets(plan)
    rows = np.repeat(
        np.arange(dg.num_local, dtype=np.int64), np.diff(dg.index)
    )
    self_mask = dg.edges == np.asarray(dg.from_local(rows))
    target_colors = (
        np.concatenate([colors, ghost_colors])[ctargets]
        if len(ctargets)
        else np.empty(0, dtype=np.int64)
    )
    local_ok = bool(
        np.all((colors[rows] != target_colors) | self_mask)
        and np.all(colors >= 0)
    )
    return bool(comm.allreduce(local_ok, op="land", category="other"))
