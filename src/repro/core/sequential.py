"""Serial Louvain method (paper Algorithm 1; Blondel et al. 2008).

This is the library's correctness reference: a faithful sequential
implementation where every vertex sees the *latest* community state (the
property §III-B points out distributed implementations must give up).
Multi-phase with coarsening; supports the same variant knobs as the
parallel paths so heuristic behaviour can be studied in isolation
(Table I of the paper does exactly that with a shared-memory code).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .coarsen import coarsen_csr
from .config import LouvainConfig
from .heuristics import EarlyTermination, ThresholdCycler, make_rank_rng
from .modularity import modularity
from .result import IterationStats, LouvainResult, PhaseStats, normalize_assignment
from .sweep import GAIN_EPS


def louvain(g: CSRGraph, config: LouvainConfig | None = None) -> LouvainResult:
    """Run the full multi-phase serial Louvain method on ``g``."""
    config = config or LouvainConfig()
    orig_assign = np.arange(g.num_vertices, dtype=np.int64)
    cur = g
    cycler = (
        ThresholdCycler(config)
        if config.variant.uses_threshold_cycling
        else None
    )
    prev_mod = -np.inf
    phases: list[PhaseStats] = []
    iterations: list[IterationStats] = []
    phase_assignments: list[np.ndarray] | None = (
        [] if config.track_assignments else None
    )
    final_assignment = orig_assign
    final_mod = 0.0

    for phase in range(config.max_phases):
        tau = cycler.tau_for_phase(phase) if cycler else config.tau
        assignment, mod, stats = louvain_phase(cur, tau, config, phase)
        iterations.extend(stats)
        phases.append(
            PhaseStats(
                phase=phase,
                tau=tau,
                num_iterations=len(stats),
                modularity=mod,
                num_vertices=cur.num_vertices,
                num_edges=cur.num_edges,
            )
        )
        meta, vertex_to_meta = coarsen_csr(cur, assignment)
        orig_assign = vertex_to_meta[orig_assign]
        final_assignment = orig_assign
        final_mod = mod
        if phase_assignments is not None:
            phase_assignments.append(orig_assign.copy())

        gain = mod - prev_mod
        no_merge = meta.num_vertices == cur.num_vertices
        if gain <= tau or no_merge:
            if cycler and not cycler.in_final_pass and tau > cycler.final_tau:
                # §V-C(a): force one more pass at the lowest threshold to
                # make sure no quality is left on the table.
                cycler.enter_final_pass()
                prev_mod = mod
                cur = meta
                continue
            break
        prev_mod = mod
        cur = meta

    return LouvainResult(
        modularity=final_mod,
        assignment=normalize_assignment(final_assignment),
        phases=phases,
        iterations=iterations,
        phase_assignments=phase_assignments,
    )


def louvain_phase(
    g: CSRGraph, tau: float, config: LouvainConfig, phase: int
) -> tuple[np.ndarray, float, list[IterationStats]]:
    """One phase of sequential Louvain iterations on graph ``g``.

    Returns ``(assignment, modularity, per-iteration stats)``; the
    assignment uses community ids drawn from the vertex id space, as the
    coarsening step expects.
    """
    n = g.num_vertices
    w = g.total_weight
    comm = np.arange(n, dtype=np.int64)
    k = g.degrees()
    tot = k.copy()
    et = (
        EarlyTermination(n, config, make_rank_rng(config.seed, 0, phase))
        if config.variant.uses_early_termination
        else None
    )
    stats: list[IterationStats] = []
    prev_q = -np.inf
    q = 0.0

    for it in range(config.max_iterations):
        active = et.draw_active() if et else np.ones(n, dtype=bool)
        moved = np.zeros(n, dtype=bool)
        moves = 0
        for u in range(n):
            if not active[u]:
                continue
            nbrs, wts = g.neighbors(u)
            if len(nbrs) == 0:
                continue
            src = comm[u]
            # d_{u,c}: edge weight from u into each neighbouring
            # community, self loop excluded.
            d: dict[int, float] = {int(src): 0.0}
            for v, wv in zip(nbrs, wts):
                if v == u:
                    continue
                c = int(comm[v])
                d[c] = d.get(c, 0.0) + float(wv)
            gamma = config.resolution
            tot_src_wo_u = tot[src] - k[u]
            best_c = int(src)
            best_score = d[int(src)] - gamma * k[u] * tot_src_wo_u / w
            src_score = best_score
            for c, duc in d.items():
                if c == src:
                    continue
                score = duc - gamma * k[u] * tot[c] / w
                if score > best_score + GAIN_EPS * (1 + abs(best_score)) or (
                    abs(score - best_score) <= GAIN_EPS * (1 + abs(best_score))
                    and c < best_c
                ):
                    best_c, best_score = c, score
            if best_c != src and best_score > src_score + GAIN_EPS * (
                1 + abs(src_score)
            ):
                tot[src] -= k[u]
                tot[best_c] += k[u]
                comm[u] = best_c
                moved[u] = True
                moves += 1

        if w > 0:
            q = modularity(g, comm, config.resolution)
        inactive_frac = 0.0
        if et is not None:
            et.update(moved)
            inactive_frac = et.inactive_fraction()
        stats.append(
            IterationStats(
                phase=phase,
                iteration=it,
                modularity=q,
                moves=moves,
                active_fraction=float(active.mean()) if n else 1.0,
                inactive_fraction=inactive_frac,
            )
        )
        if (
            config.variant.uses_inactive_exit
            and inactive_frac >= config.etc_exit_fraction
        ):
            break
        if q - prev_q <= tau:
            break
        prev_q = q

    return comm, q, stats
