"""Core algorithms: the paper's distributed Louvain and its comparators."""

from .coarsen import coarsen_csr, rebuild_distributed, remote_lookup
from .coloring import distributed_coloring, verify_coloring
from .commcache import (
    COMM_INFO_DTYPE,
    CommunityCache,
    aggregate_deltas,
    pack_info,
    unpack_info,
)
from .config import (
    DEFAULT_THRESHOLD_CYCLE,
    PAPER_VARIANTS,
    LouvainConfig,
    Variant,
)
from .distlouvain import distributed_louvain, louvain_phase_distributed, run_louvain
from .dynamic import (
    ChurnAccumulator,
    ChurnStats,
    EdgeChurn,
    apply_churn,
    churn_statistics,
    incremental_louvain,
    warm_start_assignment,
)
from .grappolo import grappolo_louvain, greedy_coloring, vertex_following_seed
from .heuristics import EarlyTermination, ThresholdCycler, make_rank_rng
from .modularity import (
    community_aggregates,
    modularity,
    modularity_bounds_ok,
    move_gain,
)
from .result import (
    IterationStats,
    LouvainResult,
    PhaseStats,
    normalize_assignment,
)
from .resultio import (
    RESULT_FORMAT_VERSION,
    load_result,
    read_communities_text,
    save_result,
    write_communities_text,
)
from .sequential import louvain, louvain_phase
from .sweep import SweepResult, propose_moves, sorted_lookup
from .validate import (
    AuditReport,
    audit_community_info,
    audit_ghost_coherence,
    audit_partition,
)

__all__ = [
    "COMM_INFO_DTYPE",
    "CommunityCache",
    "DEFAULT_THRESHOLD_CYCLE",
    "EarlyTermination",
    "IterationStats",
    "LouvainConfig",
    "LouvainResult",
    "PAPER_VARIANTS",
    "PhaseStats",
    "RESULT_FORMAT_VERSION",
    "SweepResult",
    "ThresholdCycler",
    "Variant",
    "AuditReport",
    "ChurnStats",
    "aggregate_deltas",
    "ChurnAccumulator",
    "EdgeChurn",
    "apply_churn",
    "audit_community_info",
    "audit_ghost_coherence",
    "audit_partition",
    "churn_statistics",
    "coarsen_csr",
    "community_aggregates",
    "distributed_coloring",
    "distributed_louvain",
    "grappolo_louvain",
    "incremental_louvain",
    "greedy_coloring",
    "load_result",
    "louvain",
    "louvain_phase",
    "louvain_phase_distributed",
    "make_rank_rng",
    "modularity",
    "modularity_bounds_ok",
    "move_gain",
    "normalize_assignment",
    "pack_info",
    "propose_moves",
    "read_communities_text",
    "rebuild_distributed",
    "remote_lookup",
    "run_louvain",
    "save_result",
    "sorted_lookup",
    "unpack_info",
    "verify_coloring",
    "vertex_following_seed",
    "warm_start_assignment",
    "write_communities_text",
]
