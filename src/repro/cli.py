"""Command-line interface: the paper's workflow as four subcommands.

::

    repro-louvain generate soc-friendster graph.bin --scale small
    repro-louvain convert  native.txt graph.bin
    repro-louvain info     graph.bin
    repro-louvain detect   graph.bin --ranks 8 --variant etc --alpha 0.25 \\
                           --out communities.txt --checkpoint-dir ckpts/
    repro-louvain submit   graph.bin --ranks 8 --variant etc \\
                           --cache-dir cache/
    repro-louvain serve    jobs.json --workers 4 --cache-dir cache/
    repro-louvain tune     graph.bin --db tuning.json --trials 8
    repro-louvain ckpt     validate ckpts/
    repro-louvain compare  communities.txt ground_truth.txt
    repro-louvain lint     src/repro --fail-on error

``generate`` produces the synthetic stand-ins from the dataset registry,
``convert`` runs the paper's native-format-to-binary step, ``detect``
does the distributed ingest + Louvain run (optionally writing resilience
checkpoints, or resuming from them with ``--resume``), ``submit`` runs
one job through the detection service (with a persistent result cache,
so a repeated submission is served without recomputing), ``serve``
drives a whole job file concurrently through the service engine, ``tune``
searches for the best (config, ranks) plan for a graph and stores it in
a persistent tuning database (see ``docs/TUNING.md``), ``ckpt``
inspects/validates a checkpoint directory, ``compare`` scores a result
against ground truth with the §V-D metrics, ``lint`` runs the spmdlint
SPMD correctness analysis (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Any, Callable, Sequence

import numpy as np


def _start_exporters(
    stack: contextlib.ExitStack,
    args: argparse.Namespace,
    collect: Callable[[], Any],
) -> None:
    """Wire ``--prometheus`` / ``--metrics-port`` onto a collect callback."""
    if getattr(args, "prometheus", None):
        from .obs import PeriodicExporter

        stack.enter_context(
            PeriodicExporter(collect, prometheus_path=args.prometheus)
        )
        print(f"metrics exported to {args.prometheus}")
    if getattr(args, "metrics_port", None) is not None:
        from .obs import MetricsServer

        server = stack.enter_context(
            MetricsServer(collect, port=args.metrics_port)
        )
        print(f"metrics served on http://127.0.0.1:{server.port}/metrics")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-louvain",
        description="Distributed Louvain community detection "
                    "(IPDPS 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="generate a named dataset stand-in as a binary file"
    )
    gen.add_argument("dataset", help="registry name, e.g. soc-friendster")
    gen.add_argument("output", help="binary edge-list file to write")
    gen.add_argument("--scale", default="small",
                     choices=("tiny", "small", "medium"))
    gen.add_argument("--seed", type=int, default=0)

    conv = sub.add_parser(
        "convert", help="convert a text graph (SNAP/METIS) to binary"
    )
    conv.add_argument("input", help=".txt/.tsv (SNAP) or .graph/.metis")
    conv.add_argument("output", help="binary edge-list file to write")

    info = sub.add_parser("info", help="describe a binary graph file")
    info.add_argument("input")

    # Config flags shared by every job-running subcommand — one
    # registration instead of the historical per-command duplicates.
    config_flags = argparse.ArgumentParser(add_help=False)
    config_flags.add_argument(
        "--variant",
        default="baseline",
        choices=("baseline", "threshold-cycling", "et", "etc", "et+tc"),
    )
    config_flags.add_argument("--alpha", type=float, default=0.25)
    config_flags.add_argument("--tau", type=float, default=1e-6)
    config_flags.add_argument("--resolution", type=float, default=1.0,
                              help="resolution parameter gamma (zoom "
                                   "level; >1 favours smaller communities)")
    config_flags.add_argument("--refine", default="none",
                              choices=("none", "leiden"),
                              help="post-phase refinement: 'leiden' splits "
                                   "internally disconnected communities")
    config_flags.add_argument("--vertex-following", action="store_true",
                              help="Grappolo heuristic: merge single-degree "
                                   "vertices before phase 1")
    config_flags.add_argument("--seed", type=int, default=0)

    det = sub.add_parser(
        "detect",
        help="run distributed Louvain on a binary graph file",
        parents=[config_flags],
    )
    det.add_argument("input")
    det.add_argument("--ranks", type=int, default=4)
    det.add_argument("--resolutions", metavar="G1,G2,...",
                     help="zoom-level sweep: run once per resolution and "
                          "emit one assignment per level (overrides "
                          "--resolution)")
    det.add_argument("--coloring", action="store_true",
                     help="distance-1 coloring (§VI future work)")
    det.add_argument("--community-push", action="store_true",
                     help="owner-push community-info exchange "
                          "(subscription caches; bit-identical)")
    det.add_argument("--repartition", default="none",
                     choices=("none", "community"),
                     help="phase-boundary layout: 'community' places "
                          "whole coarse communities per rank, shrinking "
                          "the ghost fraction (bit-identical results)")
    det.add_argument("--out", help="write 'vertex community' text file")
    det.add_argument("--save", help="write .npz result file")
    det.add_argument("--trace", action="store_true",
                     help="print the time breakdown")
    det.add_argument("--chrome-trace",
                     help="write a Perfetto/chrome://tracing JSON timeline")
    det.add_argument("--prometheus", metavar="FILE",
                     help="write the run's modelled-time/traffic breakdown "
                          "in Prometheus text exposition format")
    det.add_argument("--checkpoint-dir",
                     help="write resilience checkpoints under this directory")
    det.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="PHASES",
                     help="checkpoint every N phase boundaries (default 1)")
    det.add_argument("--checkpoint-every-iterations", type=int,
                     metavar="ITERS",
                     help="also checkpoint every K iterations inside a phase")
    det.add_argument("--resume", action="store_true",
                     help="resume from the latest valid checkpoint in "
                          "--checkpoint-dir instead of starting fresh")

    smt = sub.add_parser(
        "submit",
        help="run one job through the detection service",
        parents=[config_flags],
    )
    smt.add_argument("input", help="binary graph file")
    smt.add_argument("--ranks", type=int, default=4)
    smt.add_argument("--priority", type=int, default=0)
    smt.add_argument("--timeout", type=float,
                     help="job deadline in wall-clock seconds")
    smt.add_argument("--max-retries", type=int, default=1)
    smt.add_argument("--cache-dir",
                     help="persistent result cache directory (repeat "
                          "submissions are served from it)")
    smt.add_argument("--no-cache", action="store_true",
                     help="bypass the result cache for this job")
    smt.add_argument("--out", help="write 'vertex community' text file")
    smt.add_argument("--save", help="write .npz result file")
    smt.add_argument("--tune-db", metavar="FILE",
                     help="tuning database: plan (config, ranks) from it "
                          "instead of the flags above (tune=\"auto\")")
    smt.add_argument("--prometheus", metavar="FILE",
                     help="write the engine's metrics in Prometheus text "
                          "exposition format")
    smt.add_argument("--event-log", metavar="FILE",
                     help="append structured JSON-lines events "
                          "(submission, run, cache, drift) to FILE")

    srv = sub.add_parser(
        "serve", help="drive a JSON job file through the service engine"
    )
    srv.add_argument(
        "jobs",
        help="JSON job file: [{\"graph\": path, \"ranks\": n, "
             "\"config\": {...}, \"priority\": p, \"repeat\": k}, ...]",
    )
    srv.add_argument("--workers", type=int, default=4,
                     help="concurrent jobs (default 4); with --shards, "
                          "workers per shard")
    srv.add_argument("--queue-depth", type=int, default=64,
                     help="admission bound on pending jobs (default 64)")
    srv.add_argument("--shards", type=int, default=0,
                     help="route jobs across N engine worker processes "
                          "by graph fingerprint (0 = in-process engine, "
                          "the default)")
    srv.add_argument("--cache-dir",
                     help="persistent result cache directory")
    srv.add_argument("--metrics", metavar="FILE",
                     help="write the metrics snapshot as JSON")
    srv.add_argument("--prometheus", metavar="FILE",
                     help="write metrics in Prometheus text exposition "
                          "format, refreshed periodically and on exit")
    srv.add_argument("--metrics-port", type=int, metavar="PORT",
                     help="serve /metrics (Prometheus) and /metrics.json "
                          "on this port while jobs run (0 = ephemeral)")
    srv.add_argument("--event-log", metavar="FILE",
                     help="append structured JSON-lines events to FILE "
                          "(shards share the file, tagged by origin)")
    srv.add_argument("--trace", action="store_true",
                     help="print the aggregate modelled-time breakdown "
                          "(in-process mode only)")

    tnt = sub.add_parser(
        "tenant",
        help="drive a multi-tenant streaming workload through a "
             "sharded serving tier",
    )
    tnt.add_argument(
        "workload",
        help="JSON workload: {\"tenants\": [{\"name\", \"graph\"|"
             "\"generate\", \"ranks\", \"max_queued\", "
             "\"churn_absolute\", \"churn_fraction\", \"config\"}], "
             "\"events\": [{\"op\": \"detect\"|\"add\"|\"remove\"|"
             "\"flush\"|\"wait\"|\"kill-shard\"|\"health\", ...}]}",
    )
    tnt.add_argument("--shards", type=int, default=2,
                     help="engine worker processes (default 2)")
    tnt.add_argument("--workers", type=int, default=2,
                     help="concurrent jobs per shard (default 2)")
    tnt.add_argument("--queue-depth", type=int, default=64,
                     help="per-shard admission bound (default 64)")
    tnt.add_argument("--cache-dir",
                     help="shared persistent result cache directory")
    tnt.add_argument("--tune-db", metavar="FILE",
                     help="shared tuning database file")
    tnt.add_argument("--metrics", metavar="FILE",
                     help="write the fleet metrics snapshot as JSON")
    tnt.add_argument("--prometheus", metavar="FILE",
                     help="write the fleet metrics (per-shard registries "
                          "merged with a shard label, plus tier-level "
                          "series) in Prometheus text exposition format")
    tnt.add_argument("--event-log", metavar="FILE",
                     help="append structured JSON-lines events to FILE "
                          "(tier and shards share it, tagged by origin)")
    tnt.add_argument("--drift", action="store_true",
                     help="enable the measured-vs-predicted drift monitor "
                          "in every shard engine")
    tnt.add_argument("--drain", choices=("complete", "cancel"),
                     default="complete",
                     help="on exit, run queued jobs to completion or "
                          "cancel them (default complete)")

    tune = sub.add_parser(
        "tune",
        help="plan the best (config, ranks) for a graph and store it "
             "in a persistent tuning database",
    )
    tune.add_argument("input", help="binary graph file")
    tune.add_argument("--db", default="tuning.json", metavar="FILE",
                      help="tuning database file (default tuning.json); "
                           "a prior plan for the same graph is served "
                           "without re-running trials")
    tune.add_argument("--trials", type=int, default=8,
                      help="candidates admitted to measured trials after "
                           "cost-model screening (default 8)")
    tune.add_argument("--budget", type=float, metavar="SECONDS",
                      help="cap on cumulative modelled seconds spent in "
                           "measured trials")
    tune.add_argument("--max-ranks", type=int, default=8,
                      help="largest rank count in the search space "
                           "(default 8)")
    tune.add_argument("--tolerance", type=float, default=0.02,
                      help="quality guard: tuned modularity may fall at "
                           "most this far below the paper-default "
                           "baseline (default 0.02)")
    tune.add_argument("--seed", type=int, default=0,
                      help="search seed (the whole search is "
                           "deterministic given it)")
    tune.add_argument("--machine", default="cori-haswell",
                      help="machine model preset (default cori-haswell)")
    tune.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format on stdout (default text)")
    tune.add_argument("--report", metavar="FILE",
                      help="also write the full JSON report here")
    tune.add_argument("--force", action="store_true",
                      help="re-run the search even on a database hit")

    ckpt = sub.add_parser(
        "ckpt", help="inspect or validate a checkpoint directory"
    )
    ckpt.add_argument("action", choices=("list", "validate"))
    ckpt.add_argument("directory", help="checkpoint directory to inspect")

    cmp_ = sub.add_parser(
        "compare", help="score detected communities against ground truth"
    )
    cmp_.add_argument("detected", help="'vertex community' text file")
    cmp_.add_argument("truth", help="'vertex community' text file")

    lint = sub.add_parser(
        "lint", help="static SPMD correctness analysis (spmdlint)"
    )
    lint.add_argument(
        "paths", nargs="+", help="files or directories to analyse"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default text; github emits workflow "
             "annotation commands)",
    )
    lint.add_argument(
        "--exclude", metavar="GLOBS",
        help="comma-separated path globs to skip (matched against the "
             "posix path and the basename, e.g. 'tests/data/*')",
    )
    lint.add_argument(
        "--fail-on",
        choices=("info", "warning", "error", "never"),
        default="warning",
        help="exit nonzero if any finding is at least this severe "
             "(default warning)",
    )
    lint.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--dump-helpers", action="store_true",
        help="print the derived COLLECTIVE_HELPERS catalog (transitive "
             "contains-collective closure over the linted files) and exit",
    )
    lint.add_argument(
        "--schedule-report", metavar="FILE",
        help="write the config-variant schedule matrix for "
             "distributed_louvain (JSON) to FILE",
    )
    return parser


def _cmd_generate(args) -> int:
    from .generators import dataset
    from .graph import write_edgelist

    spec = dataset(args.dataset)
    el = spec.generate(scale=args.scale, seed=args.seed)
    nbytes = write_edgelist(args.output, el)
    print(
        f"wrote {args.output}: {el.num_vertices} vertices, "
        f"{el.num_edges} edges ({nbytes} bytes) — stand-in for "
        f"{spec.name} ({spec.paper_edges} edges in the paper)"
    )
    return 0


def _cmd_convert(args) -> int:
    from .graph.textio import convert_to_binary

    el = convert_to_binary(args.input, args.output)
    print(
        f"converted {args.input} -> {args.output}: "
        f"{el.num_vertices} vertices, {el.num_edges} edges"
    )
    return 0


def _cmd_info(args) -> int:
    from .graph import read_edgelist
    from .graph.metrics import graph_stats

    el = read_edgelist(args.input)
    stats = graph_stats(el.to_csr())
    print(f"{args.input}: {stats.format()}")
    return 0


def _cmd_detect(args) -> int:
    from .core import LouvainConfig, Variant, distributed_louvain
    from .core.resultio import save_result, write_communities_text
    from .graph import DistGraph
    from .runtime import run_spmd

    config = LouvainConfig(
        variant=Variant(args.variant),
        alpha=args.alpha,
        tau=args.tau,
        resolution=args.resolution,
        refine=args.refine,
        vertex_following=args.vertex_following,
        use_coloring=args.coloring,
        community_push_updates=args.community_push,
        repartition=args.repartition,
        seed=args.seed,
    )
    if args.resolutions:
        if args.resume or args.checkpoint_dir:
            print(
                "error: --resolutions runs batch jobs; it cannot be "
                "combined with --resume/--checkpoint-dir",
                file=sys.stderr,
            )
            return 1
        return _detect_resolutions(args, config)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 1
    if args.resume:
        from .resilience import latest_valid_manifest

        if latest_valid_manifest(
            args.checkpoint_dir, expect_size=args.ranks
        ) is None:
            print(
                f"error: no valid checkpoint for {args.ranks} rank(s) "
                f"under {args.checkpoint_dir!r}",
                file=sys.stderr,
            )
            return 1

    def main_spmd(comm):
        # A resumed run rebuilds its graph slice from the checkpoint,
        # so the (possibly long) distributed ingest is skipped entirely.
        dg = None if args.resume else DistGraph.load_binary(comm, args.input)
        return distributed_louvain(
            comm,
            dg,
            config,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_every_iterations=args.checkpoint_every_iterations,
            resume=args.resume,
        )

    spmd = run_spmd(
        args.ranks, main_spmd, trace_events=bool(args.chrome_trace)
    )
    result = spmd.value
    result.elapsed = spmd.elapsed
    result.trace = spmd.trace
    print(f"{config.label()} on {args.ranks} ranks: {result.summary()}")
    if args.trace:
        print(spmd.trace.format())
    if args.out:
        write_communities_text(args.out, result.assignment)
        print(f"communities written to {args.out}")
    if args.save:
        save_result(args.save, result)
        print(f"result saved to {args.save}")
    if args.chrome_trace:
        import json

        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(spmd.trace.to_chrome_trace(), fh)
        print(f"timeline written to {args.chrome_trace} "
              "(open in Perfetto / chrome://tracing)")
    if args.prometheus:
        from .obs import trace_to_registry, write_prometheus

        write_prometheus(args.prometheus, trace_to_registry(spmd.trace))
        print(f"metrics written to {args.prometheus}")
    return 0


def _leveled_path(path: str, resolution: float) -> str:
    """``communities.txt`` at resolution 0.5 -> ``communities.r0.5.txt``."""
    import os

    root, ext = os.path.splitext(path)
    return f"{root}.r{resolution:g}{ext}"


def _detect_resolutions(args, config) -> int:
    """Zoom-level sweep: one cached detection per resolution."""
    from .core.resultio import save_result, write_communities_text
    from .service import DetectionRequest, Engine

    try:
        levels = [float(tok) for tok in args.resolutions.split(",") if tok]
    except ValueError:
        print(f"error: bad --resolutions {args.resolutions!r}",
              file=sys.stderr)
        return 2
    if not levels:
        print("error: --resolutions needs at least one value",
              file=sys.stderr)
        return 2
    request = DetectionRequest(
        graph_path=args.input, config=config, nranks=args.ranks
    )
    with Engine(workers=1) as engine:
        responses = engine.detect_at_resolutions(request, levels)
    failed = 0
    for level, response in zip(levels, responses):
        print(f"resolution {level:g}: {response.summary()}")
        result = response.result
        if result is None:
            failed += 1
            continue
        if args.out:
            path = _leveled_path(args.out, level)
            write_communities_text(path, result.assignment)
            print(f"communities written to {path}")
        if args.save:
            path = _leveled_path(args.save, level)
            save_result(path, result)
            print(f"result saved to {path}")
    return 1 if failed else 0


def _config_from_args(args):
    from .core import LouvainConfig, Variant

    return LouvainConfig(
        variant=Variant(args.variant),
        alpha=args.alpha,
        tau=args.tau,
        resolution=args.resolution,
        refine=args.refine,
        vertex_following=args.vertex_following,
        seed=args.seed,
    )


def _cmd_submit(args) -> int:
    from .core.resultio import save_result, write_communities_text
    from .service import DetectionRequest, Engine, ResultStore

    request = DetectionRequest(
        graph_path=args.input,
        config=_config_from_args(args),
        nranks=args.ranks,
        priority=args.priority,
        timeout=args.timeout,
        max_retries=args.max_retries,
        use_cache=not args.no_cache,
        tune="auto" if args.tune_db else "off",
    )
    store = (
        ResultStore(directory=args.cache_dir)
        if args.cache_dir
        else None
    )
    tuning_db = None
    if args.tune_db:
        from .tune import TuningDB

        tuning_db = TuningDB(args.tune_db)
    event_log = None
    if args.event_log:
        from .obs import EventLog

        event_log = EventLog(args.event_log, origin="cli-submit")
    try:
        with Engine(
            workers=1, store=store, tuning_db=tuning_db, event_log=event_log
        ) as engine:
            response = engine.detect(request, timeout=args.timeout)
            if args.prometheus:
                from .obs import write_prometheus

                write_prometheus(args.prometheus, engine.metrics.registry)
                print(f"metrics written to {args.prometheus}")
    finally:
        if event_log is not None:
            event_log.close()
    print(response.summary())
    result = response.result
    if result is None:
        return 1
    if args.out:
        write_communities_text(args.out, result.assignment)
        print(f"communities written to {args.out}")
    if args.save:
        save_result(args.save, result)
        print(f"result saved to {args.save}")
    return 0


def _cmd_serve(args) -> int:
    import json

    from .core import LouvainConfig
    from .service import AdmissionError, DetectionRequest, Engine, ResultStore

    with open(args.jobs, "r", encoding="utf-8") as fh:
        specs = json.load(fh)
    if not isinstance(specs, list):
        print("error: job file must hold a JSON list", file=sys.stderr)
        return 2
    if args.shards > 0:
        return _serve_sharded(args, specs)

    store = (
        ResultStore(directory=args.cache_dir)
        if args.cache_dir
        else ResultStore()
    )
    failed = 0
    event_log = None
    if args.event_log:
        from .obs import EventLog

        event_log = EventLog(args.event_log, origin="cli-serve")
    with contextlib.ExitStack() as stack, Engine(
        workers=args.workers,
        queue_depth=args.queue_depth,
        store=store,
        event_log=event_log,
    ) as engine:
        if event_log is not None:
            stack.callback(event_log.close)
        _start_exporters(stack, args, lambda: engine.metrics.registry.snapshot())
        job_ids = []
        for i, spec in enumerate(specs):
            try:
                request = DetectionRequest(
                    graph_path=spec["graph"],
                    config=LouvainConfig.from_dict(spec.get("config", {})),
                    nranks=int(spec.get("ranks", 4)),
                    priority=int(spec.get("priority", 0)),
                    timeout=spec.get("timeout"),
                    max_retries=int(spec.get("max_retries", 1)),
                    tag=str(spec.get("tag", f"jobs[{i}]")),
                )
            except (KeyError, TypeError, ValueError) as exc:
                print(f"error: jobs[{i}]: {exc}", file=sys.stderr)
                return 2
            for _ in range(int(spec.get("repeat", 1))):
                try:
                    job_ids.append(engine.submit(request))
                except AdmissionError as exc:
                    # Backpressure: report the shed job and keep going.
                    print(f"rejected jobs[{i}]: {exc}")
                    failed += 1
        for job_id in job_ids:
            response = engine.wait(job_id)
            print(response.summary())
            if response.result is None:
                failed += 1
        print(engine.metrics.format())
        if args.trace:
            print(engine.trace_report().format())
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(engine.metrics.snapshot(), fh, indent=1)
            print(f"metrics written to {args.metrics}")
    return 1 if failed else 0


def _serve_sharded(args, specs) -> int:
    """``serve --shards N``: fan the job file across shard processes."""
    import json

    from .core import LouvainConfig
    from .service import AdmissionError, DetectionRequest
    from .serving import ShardConfig, ShardDeadError, ShardRouter

    router = ShardRouter(
        [
            ShardConfig(
                shard_id=i,
                workers=args.workers,
                queue_depth=args.queue_depth,
                cache_dir=args.cache_dir,
                event_log_path=args.event_log,
            )
            for i in range(args.shards)
        ]
    )

    def collect_fleet():
        from .obs import merge_snapshots

        snaps = {}
        for s in router.live_shards():
            try:
                snaps[str(s.shard_id)] = s.registry_snapshot()
            except ShardDeadError:
                continue
        return merge_snapshots(snaps, labelname="shard")

    failed = 0
    stack = contextlib.ExitStack()
    try:
        _start_exporters(stack, args, collect_fleet)
        submitted = []  # (shard, job_id)
        for i, spec in enumerate(specs):
            try:
                request = DetectionRequest(
                    graph_path=spec["graph"],
                    config=LouvainConfig.from_dict(spec.get("config", {})),
                    nranks=int(spec.get("ranks", 4)),
                    priority=int(spec.get("priority", 0)),
                    timeout=spec.get("timeout"),
                    max_retries=int(spec.get("max_retries", 1)),
                    tenant=str(spec.get("tenant", "")),
                    tag=str(spec.get("tag", f"jobs[{i}]")),
                )
            except (KeyError, TypeError, ValueError) as exc:
                print(f"error: jobs[{i}]: {exc}", file=sys.stderr)
                return 2
            key = request.resolved_graph().fingerprint()
            for _ in range(int(spec.get("repeat", 1))):
                shard = router.route(key)
                try:
                    submitted.append((shard, shard.submit(request)))
                except AdmissionError as exc:
                    print(f"rejected jobs[{i}]: {exc}")
                    failed += 1
        for shard, job_id in submitted:
            try:
                response = shard.wait(job_id)
            except ShardDeadError as exc:
                print(f"lost {job_id}: {exc}")
                failed += 1
                continue
            print(f"[shard {shard.shard_id}] {response.summary()}")
            if response.result is None:
                failed += 1
        if args.metrics:
            snapshot = {
                str(s.shard_id): s.metrics() for s in router.live_shards()
            }
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=1)
            print(f"metrics written to {args.metrics}")
    finally:
        stack.close()  # final exporter write while shards are still live
        router.shutdown()
    return 1 if failed else 0


def _cmd_tenant(args) -> int:
    """Drive a multi-tenant streaming workload through a serving tier."""
    import json

    from .core import LouvainConfig
    from .generators import make_graph
    from .graph.binio import read_edgelist
    from .service import AdmissionError
    from .serving import ChurnPolicy, ServingTier, TenantQuota

    with open(args.workload, "r", encoding="utf-8") as fh:
        workload = json.load(fh)
    if not isinstance(workload, dict) or "tenants" not in workload:
        print(
            "error: workload must be an object with a \"tenants\" list",
            file=sys.stderr,
        )
        return 2

    tier = ServingTier(
        shards=args.shards,
        workers_per_shard=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        tuning_db_path=args.tune_db,
        event_log_path=args.event_log,
        drift=args.drift,
    )
    failed = 0
    pending = []
    stack = contextlib.ExitStack()
    try:
        _start_exporters(stack, args, tier.registry_snapshot)
        for spec in workload["tenants"]:
            name = spec["name"]
            churn_kwargs = {}
            if "churn_absolute" in spec:
                churn_kwargs["absolute"] = int(spec["churn_absolute"])
            if "churn_fraction" in spec:
                churn_kwargs["fraction"] = float(spec["churn_fraction"])
            tier.create_tenant(
                name,
                quota=TenantQuota(
                    max_queued=int(spec.get("max_queued", 8)),
                    max_ranks=int(spec.get("max_ranks", 8)),
                    edge_budget=spec.get("edge_budget"),
                ),
                config=LouvainConfig.from_dict(spec.get("config", {})),
                nranks=int(spec.get("ranks", 4)),
                churn=ChurnPolicy(**churn_kwargs),
            )
            if "generate" in spec:
                gen = spec["generate"]
                graph = make_graph(
                    gen["name"],
                    scale=gen.get("scale", "tiny"),
                    seed=int(gen.get("seed", 0)),
                )
            else:
                graph = read_edgelist(spec["graph"]).to_csr()
            tier.load_graph(name, graph)
            print(tier.registry.get(name).describe())

        def wait_pending():
            nonlocal failed
            while pending:
                handle = pending.pop(0)
                response = tier.wait(handle)
                state = response.state.value
                print(
                    f"[{handle.tenant}] {handle.kind} job "
                    f"{handle.job_id} on shard {handle.shard_id}: {state}"
                )
                if response.result is None:
                    failed += 1

        for i, event in enumerate(workload.get("events", [])):
            op = event["op"]
            try:
                if op == "detect":
                    pending.append(tier.detect(event["tenant"]))
                elif op == "add":
                    handle = tier.add_edges(
                        event["tenant"],
                        event["u"],
                        event["v"],
                        event.get("w"),
                    )
                    if handle is not None:
                        print(
                            f"[{event['tenant']}] churn threshold "
                            f"crossed (net {handle.net_churn}); "
                            "incremental re-detection submitted"
                        )
                        pending.append(handle)
                elif op == "remove":
                    handle = tier.remove_edges(
                        event["tenant"], event["u"], event["v"]
                    )
                    if handle is not None:
                        pending.append(handle)
                elif op == "flush":
                    handle = tier.flush(event["tenant"])
                    if handle is not None:
                        pending.append(handle)
                elif op == "wait":
                    wait_pending()
                elif op == "kill-shard":
                    tier.kill_shard(int(event["shard"]))
                    print(f"shard {event['shard']} killed")
                elif op == "health":
                    print(f"health: {tier.health_check()}")
                else:
                    print(f"error: events[{i}]: unknown op {op!r}",
                          file=sys.stderr)
                    return 2
            except AdmissionError as exc:
                print(f"rejected events[{i}]: {exc}")
                failed += 1
        wait_pending()

        report = tier.drain(cancel_pending=args.drain == "cancel")
        for sid in sorted(report):
            states = [state for _, state in report[sid]]
            print(f"shard {sid} drained: {len(states)} job(s)")
        for name in tier.registry.names():
            print(tier.registry.get(name).describe())
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(tier.metrics(), fh, indent=1)
            print(f"metrics written to {args.metrics}")
    finally:
        stack.close()  # final exporter write while shards are still live
        tier.shutdown()
    return 1 if failed else 0


def _cmd_tune(args) -> int:
    import json

    from .graph import read_edgelist
    from .runtime.perfmodel import PRESETS
    from .tune import (
        TunerSettings,
        TuningDB,
        default_space,
        plan_for_graph,
    )

    machine = PRESETS.get(args.machine)
    if machine is None:
        print(
            f"error: unknown machine {args.machine!r}; "
            f"available: {sorted(PRESETS)}",
            file=sys.stderr,
        )
        return 2
    try:
        settings = TunerSettings(
            trials=args.trials,
            budget_seconds=args.budget,
            quality_tolerance=args.tolerance,
            seed=args.seed,
            machine=machine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    g = read_edgelist(args.input).to_csr()
    db = TuningDB(args.db)
    cached = db.get(g.fingerprint())
    if cached is not None and not args.force:
        record, report = cached, None
    else:
        space = default_space(max_ranks=args.max_ranks)
        full = plan_for_graph(g, space=space, settings=settings)
        db.put(full.record)
        record, report = full.record, full

    payload = {
        "input": args.input,
        "db": args.db,
        "cached": report is None,
        "record": record.to_dict(),
    }
    if report is not None:
        payload["candidates_total"] = report.candidates_total
        payload["candidates_screened"] = report.candidates_screened
        payload["notes"] = list(report.notes)
    if args.format == "json":
        print(json.dumps(payload, indent=1, sort_keys=True))
    elif report is None:
        print(
            f"database hit for {args.input} "
            f"(fingerprint {record.fingerprint[:12]}…) — no trials run"
        )
        print(record.summary())
        for pt in record.frontier:
            print(
                f"  frontier: {pt['elapsed']:.4f}s "
                f"Q={pt['modularity']:.4f}  {pt['describe']}"
            )
    else:
        print(report.format())
        print(f"plan stored in {args.db}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"report written to {args.report}")
    return 0


def _cmd_ckpt(args) -> int:
    from .resilience import scan_checkpoints, verify_manifest

    entries = scan_checkpoints(args.directory)
    if not entries:
        print(f"{args.directory}: no checkpoints found")
        return 1 if args.action == "validate" else 0
    bad = 0
    for name, manifest, err in entries:
        if manifest is None:
            print(f"{name}: INVALID ({err})")
            bad += 1
            continue
        problems = verify_manifest(manifest) if args.action == "validate" else []
        if problems:
            print(f"{name}: INVALID ({'; '.join(problems)})")
            bad += 1
        else:
            print(f"{name}: {manifest.describe()}")
    if args.action == "validate":
        good = len(entries) - bad
        print(f"{good}/{len(entries)} checkpoint(s) valid")
        return 1 if bad else 0
    return 0


def _cmd_compare(args) -> int:
    from .core.resultio import read_communities_text
    from .quality import best_match_scores, normalized_mutual_information

    detected = read_communities_text(args.detected)
    truth = read_communities_text(args.truth)
    if len(detected) != len(truth):
        print(
            f"error: {args.detected} covers {len(detected)} vertices, "
            f"{args.truth} covers {len(truth)}",
            file=sys.stderr,
        )
        return 1
    scores = best_match_scores(truth, detected)
    nmi = normalized_mutual_information(truth, detected)
    print(scores.format())
    print(f"NMI={nmi:.6f}")
    print(
        f"detected {len(np.unique(detected))} communities vs "
        f"{len(np.unique(truth))} in ground truth"
    )
    return 0


def _cmd_lint(args) -> int:
    from .analysis import RULES, SEVERITY_ORDER, lint_paths

    if args.list_rules:
        for r in RULES.values():
            print(f"{r.id}  [{r.severity:7s}]  {r.summary}")
        return 0
    def split(spec: str) -> list[str]:
        return [x.strip() for x in spec.split(",") if x.strip()]

    exclude = split(args.exclude) if args.exclude else []

    if args.dump_helpers:
        from .analysis.spmdlint import build_program

        try:
            program = build_program(args.paths, exclude=exclude)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for name in sorted(program.callgraph.derive_collective_helpers()):
            print(name)
        return 0

    try:
        result = lint_paths(
            args.paths,
            select=split(args.select) if args.select else None,
            ignore=split(args.ignore) if args.ignore else None,
            exclude=exclude,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(result.to_json())
    elif args.format == "github":
        print(result.format_github())
    else:
        print(result.format_text())

    if args.schedule_report:
        import json as _json
        from pathlib import Path

        from .analysis.spmdlint import build_program
        from .analysis.summaries import schedule_matrix

        program = build_program(args.paths, exclude=exclude)
        try:
            report = schedule_matrix(program.analysis)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        Path(args.schedule_report).write_text(
            _json.dumps(report, indent=2, sort_keys=True, default=str) + "\n"
        )
        rep = report["summary"]
        print(
            f"schedule matrix: {rep['variants']} variant(s), "
            f"{rep['distinct_schedules']} distinct schedule(s), "
            f"divergence_free={rep['divergence_free']} "
            f"-> {args.schedule_report}"
        )

    if result.parse_errors:
        return 2
    if args.fail_on == "never":
        return 0
    threshold = SEVERITY_ORDER[args.fail_on]
    gating = sum(
        1
        for f in result.findings
        if SEVERITY_ORDER[f.severity] >= threshold
    )
    return 1 if gating else 0


_COMMANDS = {
    "generate": _cmd_generate,
    "convert": _cmd_convert,
    "info": _cmd_info,
    "detect": _cmd_detect,
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "tenant": _cmd_tenant,
    "tune": _cmd_tune,
    "ckpt": _cmd_ckpt,
    "compare": _cmd_compare,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
