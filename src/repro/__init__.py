"""repro — distributed Louvain community detection (IPDPS 2018 reproduction).

Reproduction of Ghosh et al., "Distributed Louvain Algorithm for Graph
Community Detection", IPDPS 2018, on a simulated SPMD/MPI runtime.

Quickstart::

    from repro import DetectionRequest, Engine, LouvainConfig, Variant, make_graph

    g = make_graph("soc-friendster", scale="small")
    with Engine(workers=4) as engine:
        job = engine.submit(DetectionRequest(
            graph=g, nranks=8,
            config=LouvainConfig(variant=Variant.ETC, alpha=0.25)))
        print(engine.wait(job).summary())

One-shot, without a worker pool::

    from repro import DetectionRequest, detect

    result = detect(DetectionRequest(graph=g, nranks=8)).result

The pre-service entry points (``run_louvain``, ``distributed_louvain``,
``incremental_louvain``) still work but are deprecated wrappers over
the request API and emit :class:`DeprecationWarning`.

Subpackages
-----------
``repro.runtime``
    Simulated MPI substrate: SPMD executor, communicator, LogGP-style
    performance model, tracing.
``repro.graph``
    CSR graphs, binary edge-list I/O, 1-D partitioning, the distributed
    ghost-aware graph.
``repro.generators``
    Synthetic workloads standing in for the paper's inputs (R-MAT, LFR,
    SSCA#2, meshes, web crawls, small worlds) plus the dataset registry.
``repro.core``
    The algorithms: serial Louvain, Grappolo-style shared-memory Louvain,
    and the paper's distributed Louvain with its heuristics.
``repro.quality``
    Ground-truth metrics (precision/recall/F-score, NMI).
``repro.service``
    The serving tier: async detection engine, scheduler, result cache,
    service metrics, and the unified typed request API.
``repro.bench``
    Experiment harness used by the ``benchmarks/`` directory.
"""

from .core import (
    LouvainConfig,
    LouvainResult,
    Variant,
    grappolo_louvain,
    louvain,
    modularity,
)
from .generators import make_graph
from .graph import CSRGraph, DistGraph, EdgeList
from .quality import best_match_scores, normalized_mutual_information
from .runtime import CORI_HASWELL, MachineModel, run_spmd
from .service import (
    AdmissionError,
    DetectionRequest,
    DetectionResponse,
    Engine,
    JobState,
    ResultStore,
    detect,
)
from .service.facade import (
    distributed_louvain,
    incremental_louvain,
    run_louvain,
)

__version__ = "1.1.0"

__all__ = [
    "AdmissionError",
    "CORI_HASWELL",
    "CSRGraph",
    "DetectionRequest",
    "DetectionResponse",
    "DistGraph",
    "EdgeList",
    "Engine",
    "JobState",
    "LouvainConfig",
    "LouvainResult",
    "MachineModel",
    "ResultStore",
    "Variant",
    "__version__",
    "best_match_scores",
    "detect",
    "distributed_louvain",
    "grappolo_louvain",
    "incremental_louvain",
    "louvain",
    "make_graph",
    "modularity",
    "normalized_mutual_information",
    "run_louvain",
    "run_spmd",
]
