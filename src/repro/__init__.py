"""repro — distributed Louvain community detection (IPDPS 2018 reproduction).

Reproduction of Ghosh et al., "Distributed Louvain Algorithm for Graph
Community Detection", IPDPS 2018, on a simulated SPMD/MPI runtime.

Quickstart::

    from repro import make_graph, run_louvain, LouvainConfig, Variant

    g = make_graph("soc-friendster", scale="small")
    result = run_louvain(g, nranks=8, config=LouvainConfig(
        variant=Variant.ETC, alpha=0.25))
    print(result.summary())

Subpackages
-----------
``repro.runtime``
    Simulated MPI substrate: SPMD executor, communicator, LogGP-style
    performance model, tracing.
``repro.graph``
    CSR graphs, binary edge-list I/O, 1-D partitioning, the distributed
    ghost-aware graph.
``repro.generators``
    Synthetic workloads standing in for the paper's inputs (R-MAT, LFR,
    SSCA#2, meshes, web crawls, small worlds) plus the dataset registry.
``repro.core``
    The algorithms: serial Louvain, Grappolo-style shared-memory Louvain,
    and the paper's distributed Louvain with its heuristics.
``repro.quality``
    Ground-truth metrics (precision/recall/F-score, NMI).
``repro.bench``
    Experiment harness used by the ``benchmarks/`` directory.
"""

from .core import (
    LouvainConfig,
    LouvainResult,
    Variant,
    distributed_louvain,
    grappolo_louvain,
    louvain,
    modularity,
    run_louvain,
)
from .generators import make_graph
from .graph import CSRGraph, DistGraph, EdgeList
from .quality import best_match_scores, normalized_mutual_information
from .runtime import CORI_HASWELL, MachineModel, run_spmd

__version__ = "1.0.0"

__all__ = [
    "CORI_HASWELL",
    "CSRGraph",
    "DistGraph",
    "EdgeList",
    "LouvainConfig",
    "LouvainResult",
    "MachineModel",
    "Variant",
    "__version__",
    "best_match_scores",
    "distributed_louvain",
    "grappolo_louvain",
    "louvain",
    "make_graph",
    "modularity",
    "normalized_mutual_information",
    "run_louvain",
    "run_spmd",
]
