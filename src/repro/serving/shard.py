"""Shard processes: one detection engine per OS process.

Multi-process scale-out for the serving tier: each **shard** is a real
``multiprocessing`` process running its own
:class:`~repro.service.Engine` (worker pool, fair-share scheduler,
result cache), driven over a duplex pipe by a simple framed RPC.  The
shards share nothing in memory — only the disk tiers of the
:class:`~repro.service.store.ResultStore` and the
:class:`~repro.tune.db.TuningDB`, both of which already write with the
temp-file + atomic-rename discipline, so concurrent shards never
corrupt them and a result computed on one shard is a disk cache hit on
every other.

Protocol (parent -> child ``(cmd, payload)``, child -> parent
``(status, value)``):

==================  =====================================================
``ping``            liveness probe -> ``"pong"``
``register_tenant`` install a per-tenant admission quota on the shard
``submit``          admit a :class:`DetectionRequest` -> job id
``poll``            cheap job status -> ``(state, terminal)``
``fetch``           full :class:`DetectionResponse` for a job id
``cancel``          cancel a job -> bool
``metrics``         engine metrics snapshot (JSON-able dict)
``registry``        engine metrics-registry snapshot (Prometheus input)
``store_stats``     result-store stats (or None)
``drain``           stop admitting, settle queued jobs -> job summary
``shutdown``        drain + exit the process
==================  =====================================================

Long-running states never hold the pipe: ``poll`` is constant-time, so
the parent waits on jobs by polling, and one slow detection never
blocks health checks of the same shard.  A shard that dies (crash,
``kill()``, machine fault) surfaces as :class:`ShardDeadError` on the
next call; the router then reroutes its keys to the surviving shards.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..service.engine import Engine
from ..service.request import DetectionRequest, DetectionResponse
from ..service.scheduler import AdmissionError
from ..service.store import ResultStore
from .fairshare import DeficitRoundRobinScheduler

__all__ = [
    "ShardConfig",
    "ShardDeadError",
    "ShardProcess",
]

#: Default per-RPC reply timeout, seconds.  Generous: a busy shard
#: answers control commands between engine callbacks, not detections.
DEFAULT_RPC_TIMEOUT = 60.0


class ShardDeadError(RuntimeError):
    """The shard process is gone (exited, killed, or unresponsive)."""

    def __init__(self, shard_id: int, detail: str):
        super().__init__(f"shard {shard_id}: {detail}")
        self.shard_id = shard_id


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard process needs to build its engine (picklable)."""

    shard_id: int
    workers: int = 2
    queue_depth: int = 64
    #: Shared disk result-cache directory (``None`` = memory-only).
    cache_dir: str | None = None
    #: Shared tuning-database file (``None`` = no tuning DB).
    tuning_db_path: str | None = None
    #: Fair-share quantum for the shard's DRR scheduler.
    quantum: float = 1.0
    #: Quota for tenants never registered explicitly.
    default_max_queued: int | None = None
    checkpoint_every_iterations: int = 4
    #: Shared JSON-lines event log (``None`` = no events).  Shards
    #: append with ``origin="shard-<id>"``; single-line appends from
    #: multiple processes interleave without tearing, so one file can
    #: carry the whole fleet's correlated records.
    event_log_path: str | None = None
    #: Enable the measured-vs-predicted drift monitor on this shard's
    #: engine (fires forced background re-tunes through the shared
    #: tuning DB when a config family drifts).
    drift: bool = False


def _build_engine(config: ShardConfig) -> Engine:
    store = (
        ResultStore(directory=config.cache_dir)
        if config.cache_dir is not None
        else None
    )
    tuning_db = None
    if config.tuning_db_path is not None:
        from ..tune.db import TuningDB

        tuning_db = TuningDB(config.tuning_db_path)
    scheduler = DeficitRoundRobinScheduler(
        max_pending=config.queue_depth,
        quantum=config.quantum,
        default_max_queued=config.default_max_queued,
    )
    event_log = None
    if config.event_log_path is not None:
        from ..obs.events import EventLog

        event_log = EventLog(
            config.event_log_path, origin=f"shard-{config.shard_id}"
        )
    drift = None
    if config.drift:
        from ..obs.drift import DriftMonitor

        drift = DriftMonitor()
    return Engine(
        workers=config.workers,
        scheduler=scheduler,
        store=store,
        tuning_db=tuning_db,
        checkpoint_every_iterations=config.checkpoint_every_iterations,
        event_log=event_log,
        drift=drift,
    )


def _shard_main(conn: Any, config: ShardConfig) -> None:
    """Child-process entry: serve RPCs until ``shutdown`` or EOF."""
    engine = _build_engine(config)
    scheduler = engine.scheduler
    assert isinstance(scheduler, DeficitRoundRobinScheduler)
    drained = False
    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; die quietly
            try:
                if cmd == "ping":
                    conn.send(("ok", "pong"))
                elif cmd == "register_tenant":
                    name, max_queued = payload
                    scheduler.set_quota(name, max_queued)
                    conn.send(("ok", None))
                elif cmd == "submit":
                    try:
                        conn.send(("ok", engine.submit(payload)))
                    except AdmissionError as exc:
                        conn.send(("admission", (exc.reason, str(exc))))
                elif cmd == "poll":
                    state = engine.status(payload)
                    conn.send(("ok", (state.value, state.terminal)))
                elif cmd == "fetch":
                    conn.send(("ok", engine.response(payload)))
                elif cmd == "cancel":
                    conn.send(("ok", engine.cancel(payload)))
                elif cmd == "metrics":
                    conn.send(("ok", engine.metrics.snapshot()))
                elif cmd == "registry":
                    conn.send(("ok", engine.metrics.registry.snapshot()))
                elif cmd == "store_stats":
                    conn.send(
                        (
                            "ok",
                            engine.store.stats()
                            if engine.store is not None
                            else None,
                        )
                    )
                elif cmd == "drain":
                    if not drained:
                        engine.shutdown(wait=True, cancel_pending=bool(payload))
                        drained = True
                    conn.send(
                        (
                            "ok",
                            [
                                (r.job_id, r.state.value)
                                for r in engine.jobs()
                            ],
                        )
                    )
                elif cmd == "shutdown":
                    if not drained:
                        engine.shutdown(wait=True, cancel_pending=bool(payload))
                        drained = True
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(("error", f"unknown command {cmd!r}"))
            except Exception as exc:  # keep the protocol alive
                try:
                    conn.send(("error", repr(exc)))
                except (BrokenPipeError, OSError):
                    break
    finally:
        if not drained:
            engine.shutdown(wait=False, cancel_pending=True)
        if engine.event_log is not None:
            engine.event_log.close()
        try:
            conn.close()
        except OSError:
            pass


class ShardProcess:
    """Parent-side handle on one shard process.

    All calls serialise on an internal lock (the pipe carries one
    request/reply pair at a time).  Any transport failure — broken
    pipe, reply timeout, dead process — marks the shard dead
    permanently and raises :class:`ShardDeadError`; a dead shard never
    recovers, it is replaced by rerouting.
    """

    def __init__(self, config: ShardConfig, *, start_method: str = "spawn"):
        self.config = config
        self.shard_id = config.shard_id
        ctx = multiprocessing.get_context(start_method)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_shard_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.shard_id}",
            daemon=True,
        )
        self._lock = threading.Lock()
        self._dead_reason: str | None = None
        self._proc.start()
        child_conn.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _mark_dead(self, detail: str) -> ShardDeadError:
        self._dead_reason = detail
        return ShardDeadError(self.shard_id, detail)

    def call(
        self,
        cmd: str,
        payload: Any = None,
        *,
        timeout: float = DEFAULT_RPC_TIMEOUT,
    ) -> Any:
        with self._lock:
            if self._dead_reason is not None:
                raise ShardDeadError(self.shard_id, self._dead_reason)
            try:
                self._conn.send((cmd, payload))
                if not self._conn.poll(timeout):
                    raise self._mark_dead(
                        f"no reply to {cmd!r} within {timeout}s"
                    )
                status, value = self._conn.recv()
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
                raise self._mark_dead(
                    f"pipe broken during {cmd!r} "
                    f"(process alive={self._proc.is_alive()})"
                ) from None
        if status == "ok":
            return value
        if status == "admission":
            reason, detail = value
            raise AdmissionError(reason, detail)
        raise RuntimeError(f"shard {self.shard_id}: {cmd!r} failed: {value}")

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Best local knowledge — no RPC (use :meth:`ping` to probe)."""
        return self._dead_reason is None and self._proc.is_alive()

    def ping(self, timeout: float = 5.0) -> bool:
        """Active health check; a failed probe marks the shard dead."""
        if self._dead_reason is not None or not self._proc.is_alive():
            if self._dead_reason is None:
                self._mark_dead(
                    f"process exited with code {self._proc.exitcode}"
                )
            return False
        try:
            return self.call("ping", timeout=timeout) == "pong"
        except ShardDeadError:
            return False

    def kill(self) -> None:
        """Hard-kill the shard (fault drills: models a machine death)."""
        self._proc.kill()
        self._proc.join(timeout=10.0)
        self._mark_dead("killed")

    # ------------------------------------------------------------------
    # Engine surface
    # ------------------------------------------------------------------
    def register_tenant(self, name: str, max_queued: int | None) -> None:
        self.call("register_tenant", (name, max_queued))

    def submit(self, request: DetectionRequest) -> str:
        return str(self.call("submit", request))

    def poll(self, job_id: str) -> tuple[str, bool]:
        value = self.call("poll", job_id)
        return str(value[0]), bool(value[1])

    def fetch(self, job_id: str) -> DetectionResponse:
        response = self.call("fetch", job_id)
        assert isinstance(response, DetectionResponse)
        return response

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_interval: float = 0.02,
    ) -> DetectionResponse:
        """Poll until the job is terminal, then fetch the full response."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            _, terminal = self.poll(job_id)
            if terminal:
                return self.fetch(job_id)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"shard {self.shard_id}: job {job_id} still running "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)

    def cancel(self, job_id: str) -> bool:
        return bool(self.call("cancel", job_id))

    def metrics(self) -> dict:
        value = self.call("metrics")
        assert isinstance(value, dict)
        return value

    def registry_snapshot(self) -> dict:
        """Metrics-registry snapshot (input for the Prometheus exporter)."""
        value = self.call("registry")
        assert isinstance(value, dict)
        return value

    def store_stats(self) -> dict | None:
        value = self.call("store_stats")
        return value if value is None else dict(value)

    def drain(
        self, *, cancel_pending: bool = False, timeout: float = 600.0
    ) -> list[tuple[str, str]]:
        """Stop the shard admitting and settle its queue.

        ``cancel_pending=False`` runs every queued job to completion
        before returning; ``True`` cancels what is still queued.
        Returns ``(job_id, terminal state)`` for every job the shard
        ever held.  The shard stays queryable afterwards (``fetch``,
        ``metrics``) but rejects new submissions.
        """
        value = self.call("drain", cancel_pending, timeout=timeout)
        return [(str(j), str(s)) for j, s in value]

    def shutdown(self, *, cancel_pending: bool = True, timeout: float = 60.0) -> None:
        """Graceful stop: drain, then let the process exit."""
        if self._dead_reason is None:
            try:
                self.call("shutdown", cancel_pending, timeout=timeout)
            except (ShardDeadError, RuntimeError):
                pass
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=10.0)
        if self._dead_reason is None:
            self._dead_reason = "shut down"
        try:
            self._conn.close()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else f"dead ({self._dead_reason})"
        return f"ShardProcess(id={self.shard_id}, {state})"
