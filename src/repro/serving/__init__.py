"""Multi-tenant sharded serving tier with streaming graph updates.

Layers on the detection service (:mod:`repro.service`): named tenants
own long-lived graphs under quotas, stream edge insertions/deletions
into net-churn windows that trigger incremental re-detection
(:mod:`repro.core.dynamic`), and share a fleet of engine worker
*processes* — fair-share scheduled per shard, rendezvous-routed by
graph fingerprint, draining/rerouting on shard death.

Entry point: :class:`ServingTier`.  See ``docs/SERVING.md``.
"""

from .fairshare import DEFAULT_TENANT, DeficitRoundRobinScheduler, tenant_of
from .router import NoLiveShards, ShardRouter
from .service import JobHandle, ServingTier
from .shard import ShardConfig, ShardDeadError, ShardProcess
from .tenants import (
    ChurnPolicy,
    QuotaExceeded,
    Tenant,
    TenantError,
    TenantQuota,
    TenantRegistry,
    UnknownTenant,
)

__all__ = [
    "DEFAULT_TENANT",
    "ChurnPolicy",
    "DeficitRoundRobinScheduler",
    "JobHandle",
    "NoLiveShards",
    "QuotaExceeded",
    "ServingTier",
    "ShardConfig",
    "ShardDeadError",
    "ShardProcess",
    "ShardRouter",
    "Tenant",
    "TenantError",
    "TenantQuota",
    "TenantRegistry",
    "UnknownTenant",
    "tenant_of",
]
