"""Routing graph fingerprints onto shards: rendezvous hashing.

The serving tier spreads tenants over N :class:`ShardProcess` workers.
Placement must be (a) deterministic — every submission of the same
tenant graph lands on the same shard so its warm engine-level state
(memory cache tier, running jobs) is reused — and (b) stable under
failure: when a shard dies, only the keys it owned should move.

**Rendezvous (highest-random-weight) hashing** gives both: each key
scores every live shard as ``sha256(key "|" shard_id)`` and routes to
the maximum.  Removing a shard re-routes exactly that shard's keys
(each to its second-highest scorer) and perturbs nothing else — the
property consistent placement needs, without maintaining a ring.

The router also owns the health-check/drain/shutdown sweep over the
fleet, so the tier above deals in tenants and the router deals in
processes.
"""

from __future__ import annotations

import hashlib

from .shard import ShardConfig, ShardDeadError, ShardProcess

__all__ = ["NoLiveShards", "ShardRouter"]


class NoLiveShards(RuntimeError):
    """Every shard in the fleet is dead; nothing can be routed."""


def _score(key: str, shard_id: int) -> int:
    digest = hashlib.sha256(f"{key}|{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRouter:
    """Own a fleet of shard processes and route keys onto the live ones.

    ``key`` is any stable string — the serving tier uses the tenant's
    graph fingerprint, so a tenant follows its graph, and replacing the
    graph (new fingerprint) may legitimately move the tenant.
    """

    def __init__(self, configs: list[ShardConfig], *, start_method: str = "spawn"):
        if not configs:
            raise ValueError("need at least one shard config")
        ids = [c.shard_id for c in configs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        self.shards: dict[int, ShardProcess] = {
            c.shard_id: ShardProcess(c, start_method=start_method)
            for c in configs
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def live_shards(self) -> list[ShardProcess]:
        """Shards believed alive (no RPC; see :meth:`health_check`)."""
        return [s for s in self.shards.values() if s.alive]

    def route(self, key: str) -> ShardProcess:
        """The live shard that owns ``key`` under rendezvous hashing."""
        live = self.live_shards()
        if not live:
            raise NoLiveShards("all shards are dead")
        return max(live, key=lambda s: (_score(key, s.shard_id), s.shard_id))

    def placement(self, keys: list[str]) -> dict[str, int]:
        """Shard id each key routes to right now (for introspection)."""
        return {k: self.route(k).shard_id for k in keys}

    # ------------------------------------------------------------------
    # Fleet health
    # ------------------------------------------------------------------
    def health_check(self, timeout: float = 5.0) -> dict[int, bool]:
        """Actively ping every non-dead shard; returns id -> healthy.

        A shard that fails its ping is marked dead, so subsequent
        :meth:`route` calls skip it — this is the rebalancing step:
        after a shard death, one health check re-homes its keys onto
        the survivors.
        """
        return {
            sid: shard.ping(timeout=timeout)
            for sid, shard in sorted(self.shards.items())
        }

    def broadcast_tenant(self, name: str, max_queued: int | None) -> None:
        """Register a tenant quota on every live shard (keys can move
        to any shard after a death, so all of them must know it)."""
        for shard in self.live_shards():
            try:
                shard.register_tenant(name, max_queued)
            except ShardDeadError:
                continue  # died mid-broadcast; route() will skip it

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(
        self, *, cancel_pending: bool = False, timeout: float = 600.0
    ) -> dict[int, list[tuple[str, str]]]:
        """Drain every live shard; id -> its ``(job_id, state)`` report."""
        report: dict[int, list[tuple[str, str]]] = {}
        for sid, shard in sorted(self.shards.items()):
            if not shard.alive:
                continue
            try:
                report[sid] = shard.drain(
                    cancel_pending=cancel_pending, timeout=timeout
                )
            except ShardDeadError:
                continue
        return report

    def shutdown(self, *, cancel_pending: bool = True) -> None:
        for shard in self.shards.values():
            shard.shutdown(cancel_pending=cancel_pending)

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for s in self.shards.values() if s.alive)
        return f"ShardRouter({live}/{len(self.shards)} shards live)"
