"""Fair-share admission: deficit round robin (DRR) across tenants.

The engine's :class:`~repro.service.scheduler.PriorityScheduler` orders
jobs by (priority, FIFO) globally — correct for one client, but in a
multi-tenant tier a heavy tenant that dumps a hundred jobs ahead of a
light tenant's one starves the light tenant for the whole backlog.
:class:`DeficitRoundRobinScheduler` replaces the single heap with one
heap *per tenant* and serves tenants deficit-round-robin:

* each active tenant holds a **deficit counter**; every time the
  round-robin pointer visits it, the counter grows by ``quantum``;
* the tenant at the front dispatches jobs while its deficit covers the
  next job's **cost** (default 1.0 — plain per-job fairness; the
  serving tier passes an edge-count-based cost so tenants submitting
  huge graphs get proportionally fewer slots);
* a tenant that cannot afford its next job rotates to the back.

With unit costs this degenerates to round robin — every tenant with
pending work gets every ``k``-th dispatch slot among ``k`` active
tenants, so a starved tenant's queue wait is bounded by its *own*
backlog, not the heavy tenant's.  Within one tenant, jobs keep the
engine's (priority desc, FIFO) order.

Admission is two-level: the global ``max_pending`` bound (reason
``"queue-full"``) plus a per-tenant ``max_queued`` quota (reason
``"tenant-queue-full"``) registered via :meth:`set_quota` — a
zero-quota tenant is rejected outright.  The class is a drop-in
``scheduler=`` for :class:`repro.service.Engine`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from ..service.scheduler import AdmissionError, PriorityScheduler

__all__ = ["DEFAULT_TENANT", "DeficitRoundRobinScheduler", "tenant_of"]

#: Flow name for items that carry no tenant (engine-internal jobs,
#: plain non-tenant submissions).  Participates in the round robin like
#: any other tenant, so background work cannot starve real tenants.
DEFAULT_TENANT = "_default"


def tenant_of(item: Any) -> str:
    """Tenant name of a scheduled item (engine ``Job`` or bare request).

    Reads ``item.request.tenant`` (engine jobs) falling back to
    ``item.tenant`` (bare requests); empty/missing maps to
    :data:`DEFAULT_TENANT`.
    """
    request = getattr(item, "request", item)
    return str(getattr(request, "tenant", "") or DEFAULT_TENANT)


class DeficitRoundRobinScheduler(PriorityScheduler):
    """Per-tenant fair-share variant of :class:`PriorityScheduler`.

    Parameters
    ----------
    max_pending:
        Global admission bound across all tenants.
    quantum:
        Deficit added per round-robin visit.  The ratio
        ``cost / quantum`` is how many visits a job "costs"; with the
        default unit cost a quantum of 1.0 dispatches one job per
        tenant per round.
    cost_of:
        Job -> cost in quantum units (default: 1.0 for every job).
    key_of:
        Job -> tenant name (default: :func:`tenant_of`).
    default_max_queued:
        Per-tenant quota for tenants never registered via
        :meth:`set_quota` (``None`` = unbounded up to ``max_pending``).
    """

    def __init__(
        self,
        max_pending: int = 256,
        *,
        quantum: float = 1.0,
        cost_of: Callable[[Any], float] | None = None,
        key_of: Callable[[Any], str] | None = None,
        default_max_queued: int | None = None,
    ):
        super().__init__(max_pending=max_pending)
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.quantum = float(quantum)
        self._cost_of = cost_of if cost_of is not None else (lambda item: 1.0)
        self._key_of = key_of if key_of is not None else tenant_of
        self.default_max_queued = default_max_queued
        #: tenant -> min-heap of (-priority, ticket, item).
        self._queues: dict[str, list[tuple[int, int, Any]]] = {}
        #: Round-robin order over tenants with pending work.
        self._active: deque[str] = deque()
        self._deficit: dict[str, float] = {}
        #: tenant -> live (admitted, not popped, not cancelled) count.
        self._live: dict[str, int] = {}
        self._quota: dict[str, int | None] = {}
        self._ticket_tenant: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, max_queued: int | None) -> None:
        """Cap ``tenant``'s pending jobs (``None`` = unbounded, ``0`` =
        admit nothing).  Already-queued jobs are never revoked."""
        if max_queued is not None and max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued}")
        with self._lock:
            self._quota[tenant] = max_queued

    def quota(self, tenant: str) -> int | None:
        with self._lock:
            return self._quota.get(tenant, self.default_max_queued)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, item: Any, priority: int = 0) -> int:
        with self._lock:
            if self._closed:
                raise AdmissionError(
                    "closed", "scheduler is shut down; no new jobs accepted"
                )
            tenant = self._key_of(item)
            cap = self._quota.get(tenant, self.default_max_queued)
            if cap is not None and self._live.get(tenant, 0) >= cap:
                raise AdmissionError(
                    "tenant-queue-full",
                    f"tenant {tenant!r} is at its queued-job quota "
                    f"({cap}); retry later or raise the quota",
                )
            if self._live_depth() >= self.max_pending:
                raise AdmissionError(
                    "queue-full",
                    f"admission queue is full ({self.max_pending} pending); "
                    "retry later or raise max_pending",
                )
            ticket = next(self._seq)
            queue = self._queues.setdefault(tenant, [])
            heapq.heappush(queue, (-priority, ticket, item))
            self._ticket_tenant[ticket] = tenant
            self._live[tenant] = self._live.get(tenant, 0) + 1
            if tenant not in self._active:
                self._active.append(tenant)
                self._deficit.setdefault(tenant, 0.0)
            self._available.notify()
            return ticket

    def cancel(self, ticket: int) -> bool:
        with self._lock:
            tenant = self._ticket_tenant.get(ticket)
            if tenant is None or ticket in self._cancelled:
                return False
            self._cancelled.add(ticket)
            self._live[tenant] -= 1
            return True

    # ------------------------------------------------------------------
    # Consumer side (called under the base class's lock)
    # ------------------------------------------------------------------
    def _pop_live_locked(self) -> Any | None:
        while self._active:
            tenant = self._active[0]
            queue = self._queues.get(tenant, [])
            # Shed lazily-cancelled heads before costing the next job.
            while queue and queue[0][1] in self._cancelled:
                _, ticket, _ = heapq.heappop(queue)
                self._cancelled.discard(ticket)
                self._ticket_tenant.pop(ticket, None)
            if not queue:
                self._active.popleft()
                self._deficit.pop(tenant, None)
                continue
            cost = max(float(self._cost_of(queue[0][2])), 0.0)
            if self._deficit[tenant] < cost:
                # Cannot afford the head job: recharge and rotate.
                self._deficit[tenant] += self.quantum
                self._active.rotate(-1)
                continue
            _, ticket, item = heapq.heappop(queue)
            self._deficit[tenant] -= cost
            self._ticket_tenant.pop(ticket, None)
            self._live[tenant] -= 1
            return item
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _live_depth(self) -> int:
        return sum(self._live.values())

    def tenant_depth(self, tenant: str) -> int:
        """Pending jobs of one tenant."""
        with self._lock:
            return self._live.get(tenant, 0)

    def tenants(self) -> list[str]:
        """Tenants with pending work, in current round-robin order."""
        with self._lock:
            return [t for t in self._active if self._live.get(t, 0) > 0]
