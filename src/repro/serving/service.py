"""ServingTier: tenants x shards x streaming churn, composed.

The façade of ``repro.serving``.  It owns a :class:`TenantRegistry`
(who exists, what they may consume, their graphs and churn windows) and
a :class:`ShardRouter` over N engine worker processes, and wires the
two together:

* **Placement** — a tenant's jobs route by its graph fingerprint
  (rendezvous hashing), so repeated detections of the same graph reuse
  one shard's warm memory-cache tier while the shared disk tiers make
  results visible fleet-wide.
* **Streaming updates** — :meth:`add_edges` / :meth:`remove_edges`
  accumulate into the tenant's net-churn window; when the tenant's
  :class:`~repro.serving.tenants.ChurnPolicy` threshold is crossed, the
  tier closes the window automatically: applies the churn, submits an
  *incremental* re-detection warm-started from the last assignment with
  the churn's touched vertices reset, and annotates the tuning database
  with the observed churn profile (the churn feature axes added to
  :class:`~repro.tune.features.GraphFeatures`).
* **Failure handling** — a submission that lands on a dead shard
  triggers a health sweep (marking the corpse) and one reroute to the
  surviving shards; :meth:`drain` settles every queue for shutdown.

Everything stays deterministic end to end: detection results are
bit-identical to a single-process :func:`repro.service.execute_request`
of the same request, which the serving tests assert.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from ..core.config import LouvainConfig
from ..obs.events import EventLog
from ..obs.export import merge_snapshots
from ..obs.registry import MetricsRegistry
from ..runtime.tracing import RankTrace
from ..service.request import DetectionRequest, DetectionResponse
from .router import NoLiveShards, ShardRouter
from .shard import ShardConfig, ShardDeadError
from .tenants import ChurnPolicy, Tenant, TenantQuota, TenantRegistry

__all__ = ["JobHandle", "ServingTier"]


@dataclass(frozen=True)
class JobHandle:
    """A submitted job, addressed by (shard, job id) — pass to
    :meth:`ServingTier.wait` / :meth:`ServingTier.poll`."""

    tenant: str
    job_id: str
    shard_id: int
    #: ``"batch"``, ``"incremental"``, or ``"churn"`` (threshold-fired).
    kind: str
    #: Net churn applied when this job closed a streaming window.
    net_churn: int = 0


class ServingTier:
    """Multi-tenant serving over a sharded engine fleet.

    Parameters
    ----------
    shards:
        Number of engine worker processes.
    workers_per_shard:
        Concurrent jobs per shard's engine.
    queue_depth:
        Per-shard global admission bound.
    cache_dir:
        Shared disk result-cache directory (``None`` = per-shard memory
        caches only; cross-shard hits need the disk tier).
    tuning_db_path:
        Shared tuning database; shards consult it for ``tune="auto"``
        requests, and the tier feeds churn features into it.
    quantum:
        Fair-share quantum of each shard's deficit-round-robin
        scheduler.
    default_max_queued:
        Per-tenant queue quota for tenants with no explicit quota.
    event_log_path:
        Shared JSON-lines event log: the tier appends with
        ``origin="serving"`` and every shard process appends with
        ``origin="shard-<id>"``, so one file traces a detection from
        tenant churn through shard admission to the cache write.
        ``None`` (the default) disables events everywhere.
    drift:
        Enable the measured-vs-predicted drift monitor on every shard
        engine (see :class:`repro.obs.DriftMonitor`).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        workers_per_shard: int = 2,
        queue_depth: int = 64,
        cache_dir: str | None = None,
        tuning_db_path: str | None = None,
        quantum: float = 1.0,
        default_max_queued: int | None = None,
        start_method: str = "spawn",
        event_log_path: str | None = None,
        drift: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.registry = TenantRegistry()
        self.event_log = (
            EventLog(event_log_path, origin="serving")
            if event_log_path is not None
            else None
        )
        self.router = ShardRouter(
            [
                ShardConfig(
                    shard_id=i,
                    workers=workers_per_shard,
                    queue_depth=queue_depth,
                    cache_dir=cache_dir,
                    tuning_db_path=tuning_db_path,
                    quantum=quantum,
                    default_max_queued=default_max_queued,
                    event_log_path=event_log_path,
                    drift=drift,
                )
                for i in range(shards)
            ],
            start_method=start_method,
        )
        self.tuning_db_path = tuning_db_path
        #: Tier-side accounting: wall seconds of routing and churn
        #: application under the ``"serving"`` trace category.
        self.trace = RankTrace(rank=0)
        self._closed = False

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        *,
        quota: TenantQuota | None = None,
        config: LouvainConfig | None = None,
        nranks: int = 4,
        churn: ChurnPolicy | None = None,
    ) -> Tenant:
        """Create a tenant and install its queue quota on every shard."""
        tenant = self.registry.create(
            name, quota=quota, config=config, nranks=nranks, churn=churn
        )
        self.router.broadcast_tenant(name, tenant.quota.max_queued)
        self._emit(
            "tenant_created", tenant=name, max_queued=tenant.quota.max_queued
        )
        return tenant

    def _emit(self, event: str, **fields) -> None:
        if self.event_log is not None:
            self.event_log.emit(event, **fields)

    def load_graph(self, name: str, graph) -> None:
        tenant = self.registry.get(name)
        with tenant.lock:
            tenant.load_graph(graph)

    # ------------------------------------------------------------------
    # Streaming mutations
    # ------------------------------------------------------------------
    def add_edges(self, name: str, u, v, w=None) -> JobHandle | None:
        """Stream an insertion batch into ``name``'s churn window.

        Returns the re-detection job handle when this batch pushed net
        churn over the tenant's threshold, else ``None``.
        """
        tenant = self.registry.get(name)
        with tenant.lock:
            triggered = tenant.record_add_edges(u, v, w)
            if not triggered:
                return None
            tenant.counters["churn_triggers"] += 1
            return self._close_window_locked(tenant)

    def remove_edges(self, name: str, u, v) -> JobHandle | None:
        """Stream a deletion batch; same trigger contract as
        :meth:`add_edges`."""
        tenant = self.registry.get(name)
        with tenant.lock:
            triggered = tenant.record_remove_edges(u, v)
            if not triggered:
                return None
            tenant.counters["churn_triggers"] += 1
            return self._close_window_locked(tenant)

    def flush(self, name: str, *, priority: int = 0) -> JobHandle | None:
        """Force-close ``name``'s churn window below threshold.

        Applies whatever churn is pending and submits the re-detection;
        returns ``None`` when the window is empty (nothing to do).
        """
        tenant = self.registry.get(name)
        with tenant.lock:
            if not tenant.accumulator:
                return None
            return self._close_window_locked(tenant, priority=priority)

    def _close_window_locked(
        self, tenant: Tenant, *, priority: int = 0
    ) -> JobHandle:
        """Apply the pending churn and submit the re-detection.

        Caller holds ``tenant.lock``.  Warm-starts from the previous
        assignment when one exists (resetting exactly the churn's
        touched vertices to singletons); falls back to a batch job for
        a tenant that was never detected.
        """
        t0 = time.monotonic()
        net = tenant.accumulator.net_size
        pre_fingerprint = (
            tenant.graph.fingerprint() if tenant.graph is not None else None
        )
        churn = tenant.take_churn()
        self._feed_churn_features(tenant, churn, net, pre_fingerprint)
        warm = tenant.assignment is not None
        touched = churn.touched_vertices() if warm else None
        request = tenant.build_request(
            priority=priority, reset_touched=touched, incremental=warm
        )
        self.trace.charge("serving", time.monotonic() - t0)
        self._emit(
            "churn_window_closed",
            tenant=tenant.name,
            net_churn=net,
            warm_start=warm,
            touched=len(touched) if touched is not None else 0,
        )
        return self._submit(tenant, request, kind="churn", net_churn=net)

    def _feed_churn_features(
        self,
        tenant: Tenant,
        churn,
        net: int,
        pre_fingerprint: str | None,
    ) -> None:
        """Annotate the tuning DB with the observed churn profile.

        The pre-churn graph is the one that may have been tuned; its
        record's features gain the churn axes so nearest-neighbour
        planning can tell a static graph from one that churns hard.
        """
        if self.tuning_db_path is None or pre_fingerprint is None:
            return
        g = tenant.graph
        if g is None:
            return
        from ..tune.db import TuningDB

        db = TuningDB(self.tuning_db_path)
        record = db.get(pre_fingerprint)
        if record is None:
            return
        touched = churn.touched_vertices()
        features = record.features.with_churn(
            edge_fraction=net / max(g.num_edges, 1),
            touched_fraction=len(touched) / max(g.num_vertices, 1),
        )
        db.put(dataclasses.replace(record, features=features))
        tenant.counters["tuning_churn_feedback"] += 1

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(
        self,
        name: str,
        *,
        priority: int = 0,
        incremental: bool | None = None,
    ) -> JobHandle:
        """Submit a detection of ``name``'s current graph (no churn is
        applied; pending churn stays in the window)."""
        tenant = self.registry.get(name)
        with tenant.lock:
            request = tenant.build_request(
                priority=priority, incremental=incremental
            )
        kind = "incremental" if request.mode == "incremental" else "batch"
        return self._submit(tenant, request, kind=kind)

    def detect_at_resolutions(
        self,
        name: str,
        resolutions: list[float],
        *,
        priority: int = 0,
    ) -> list[JobHandle]:
        """Zoom-level API: detect ``name``'s graph at every resolution.

        One batch job per resolution, all sharing the tenant graph's
        fingerprint — so they route to the same shard and each level
        lands as its own cached result-store entry.  Handles come back
        in the order of ``resolutions``.
        """
        if not resolutions:
            raise ValueError("resolutions must be non-empty")
        tenant = self.registry.get(name)
        with tenant.lock:
            base = tenant.build_request(priority=priority, incremental=False)
        return [
            self._submit(
                tenant,
                dataclasses.replace(base, resolution=float(r)),
                kind="batch",
            )
            for r in resolutions
        ]

    def _submit(
        self,
        tenant: Tenant,
        request: DetectionRequest,
        *,
        kind: str,
        net_churn: int = 0,
    ) -> JobHandle:
        """Route and submit, rerouting once over a shard death."""
        if self._closed:
            raise RuntimeError("serving tier is shut down")
        key = request.resolved_graph().fingerprint()
        for attempt in range(2):
            t0 = time.monotonic()
            shard = self.router.route(key)
            self.trace.charge("serving", time.monotonic() - t0)
            try:
                job_id = shard.submit(request)
            except ShardDeadError:
                # Mark the corpse fleet-wide, then retry on survivors.
                tenant.counters["shard_failovers"] += 1
                self._emit(
                    "shard_failover",
                    tenant=tenant.name,
                    shard=shard.shard_id,
                )
                self.router.health_check()
                if attempt == 0:
                    continue
                raise
            tenant.counters["jobs_submitted"] += 1
            self._emit(
                "tier_submit",
                tenant=tenant.name,
                shard=shard.shard_id,
                job_id=job_id,
                kind=kind,
                net_churn=net_churn,
            )
            return JobHandle(
                tenant=tenant.name,
                job_id=job_id,
                shard_id=shard.shard_id,
                kind=kind,
                net_churn=net_churn,
            )
        raise NoLiveShards("all shards are dead")  # pragma: no cover

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def poll(self, handle: JobHandle) -> tuple[str, bool]:
        """Cheap ``(state, terminal)`` status of a submitted job."""
        return self.router.shards[handle.shard_id].poll(handle.job_id)

    def wait(
        self, handle: JobHandle, timeout: float | None = None
    ) -> DetectionResponse:
        """Block until the job is terminal; absorb a DONE result as the
        tenant's current solution (the next warm-start seed).

        Raises :class:`ShardDeadError` if the owning shard dies while
        the job runs — the job's window is lost with the shard;
        resubmit via :meth:`detect` to recompute on a survivor.
        """
        shard = self.router.shards[handle.shard_id]
        response = shard.wait(handle.job_id, timeout=timeout)
        if response.result is not None:
            tenant = self.registry.get(handle.tenant)
            with tenant.lock:
                tenant.absorb(
                    response.result.assignment, response.result.modularity
                )
            if response.cache_hit:
                tenant.counters["cache_hits"] += 1
        return response

    def cancel(self, handle: JobHandle) -> bool:
        return self.router.shards[handle.shard_id].cancel(handle.job_id)

    # ------------------------------------------------------------------
    # Fleet operations
    # ------------------------------------------------------------------
    def health_check(self) -> dict[int, bool]:
        return self.router.health_check()

    def kill_shard(self, shard_id: int) -> None:
        """Fault drill: hard-kill one shard (its queued jobs are lost;
        routing re-homes its keys on the next health check/submission)."""
        self.router.shards[shard_id].kill()
        self._emit("shard_killed", shard=shard_id)

    def metrics(self) -> dict:
        """JSON-able fleet snapshot: per-shard engine metrics and cache
        stats, per-tenant counters, tier-side trace seconds."""
        shards = {}
        for sid, shard in sorted(self.router.shards.items()):
            if not shard.alive:
                shards[str(sid)] = {"alive": False}
                continue
            try:
                shards[str(sid)] = {
                    "alive": True,
                    "engine": shard.metrics(),
                    "store": shard.store_stats(),
                }
            except ShardDeadError:
                shards[str(sid)] = {"alive": False}
        tenants = {}
        for tenant in self.registry:
            with tenant.lock:
                tenants[tenant.name] = {
                    "counters": dict(tenant.counters),
                    "pending_churn": tenant.accumulator.net_size,
                    "modularity": tenant.modularity,
                    "edges": (
                        tenant.graph.num_edges
                        if tenant.graph is not None
                        else None
                    ),
                }
        return {
            "shards": shards,
            "tenants": tenants,
            "serving_seconds": float(self.trace.seconds.get("serving", 0.0)),
        }

    def registry_snapshot(self) -> dict:
        """Fleet-wide metrics-registry snapshot (Prometheus input).

        Every live shard's registry merges in with a ``shard`` label;
        tier-side state (serving seconds, per-tenant counters, pending
        churn) is rendered as its own families.  The result feeds
        :func:`repro.obs.export.to_prometheus` directly.
        """
        per_shard: dict[str, dict] = {}
        for sid, shard in sorted(self.router.shards.items()):
            if not shard.alive:
                continue
            try:
                per_shard[str(sid)] = shard.registry_snapshot()
            except ShardDeadError:
                continue
        tier = MetricsRegistry()
        tier.counter(
            "repro_serving_seconds_total",
            "Tier-side wall seconds of routing and churn application.",
        ).inc(float(self.trace.seconds.get("serving", 0.0)))
        tenant_events = tier.counter(
            "repro_tenant_events_total",
            "Per-tenant serving counters (submissions, churn, failovers).",
            labelnames=("tenant", "event"),
        )
        pending = tier.gauge(
            "repro_tenant_pending_churn",
            "Net churn currently buffered in each tenant's window.",
            labelnames=("tenant",),
        )
        modularity = tier.gauge(
            "repro_tenant_modularity",
            "Modularity of each tenant's last absorbed solution.",
            labelnames=("tenant",),
        )
        for tenant in self.registry:
            with tenant.lock:
                for event, count in sorted(tenant.counters.items()):
                    tenant_events.labels(
                        tenant=tenant.name, event=event
                    ).inc(count)
                pending.labels(tenant=tenant.name).set(
                    tenant.accumulator.net_size
                )
                if tenant.modularity is not None:
                    modularity.labels(tenant=tenant.name).set(
                        tenant.modularity
                    )
        merged = merge_snapshots(per_shard, labelname="shard")
        combined = merged["metrics"] + tier.snapshot()["metrics"]
        return {"metrics": sorted(combined, key=lambda m: m["name"])}

    def drain(
        self, *, cancel_pending: bool = False
    ) -> dict[int, list[tuple[str, str]]]:
        """Settle every live shard's queue; id -> (job, state) report."""
        return self.router.drain(cancel_pending=cancel_pending)

    def shutdown(self, *, cancel_pending: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self.router.shutdown(cancel_pending=cancel_pending)
        if self.event_log is not None:
            self.event_log.close()

    def __enter__(self) -> "ServingTier":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
