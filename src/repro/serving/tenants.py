"""Tenants: named owners of long-lived graphs with quotas and churn.

A **tenant** is the unit of isolation in the serving tier: it owns one
long-lived graph, a detection configuration, the latest community
assignment, and a streaming-churn accumulation window.  Per-tenant
:class:`TenantQuota` bounds what the tenant may consume (queued jobs,
rank count, edge budget), and a :class:`ChurnPolicy` decides when
accumulated *net* churn is disruptive enough to warrant incremental
re-detection (the locality argument: only vertices near changed edges
need re-sweeping, so small windows warm-start cheaply and large ones
amortise over one batched re-detection).

Everything here is pure in-process state — no processes, no engine —
so quota and trigger semantics are unit-testable in isolation; the
:class:`~repro.serving.service.ServingTier` composes these with the
shard fleet.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core.config import LouvainConfig
from ..core.dynamic import ChurnAccumulator, EdgeChurn, apply_churn
from ..graph.csr import CSRGraph
from ..service.request import DetectionRequest

__all__ = [
    "ChurnPolicy",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TenantError",
    "QuotaExceeded",
    "UnknownTenant",
]


class TenantError(RuntimeError):
    """Base class for tenant-level failures."""


class QuotaExceeded(TenantError):
    """An operation would exceed the tenant's quota.

    ``limit`` names the quota field that fired (``"edge_budget"``,
    ``"max_ranks"``, ...).
    """

    def __init__(self, limit: str, detail: str):
        super().__init__(detail)
        self.limit = limit


class UnknownTenant(KeyError):
    """Lookup of a tenant name that was never created (or was removed)."""


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may consume.

    ``max_queued`` feeds the fair-share scheduler's per-tenant admission
    cap (0 = admit nothing); ``max_ranks`` clamps the world size of any
    job the tenant submits; ``edge_budget`` bounds the owned graph's
    undirected edge count (``None`` = unbounded) — enforced on load and
    on every streamed insertion, so a runaway stream cannot blow up one
    shard's memory.
    """

    max_queued: int = 8
    max_ranks: int = 8
    edge_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be >= 0, got {self.max_queued}"
            )
        if self.max_ranks < 1:
            raise ValueError(f"max_ranks must be >= 1, got {self.max_ranks}")
        if self.edge_budget is not None and self.edge_budget < 0:
            raise ValueError(
                f"edge_budget must be >= 0, got {self.edge_budget}"
            )


@dataclass(frozen=True)
class ChurnPolicy:
    """When does accumulated net churn trigger re-detection?

    Either (or both) of an **absolute** net-edge count and a
    **fraction** of the current graph's edge count ``m``; the threshold
    fires as soon as any configured bound is reached.  With neither
    set, streaming only accumulates — re-detection happens on explicit
    :meth:`~repro.serving.service.ServingTier.flush`.
    """

    absolute: int | None = None
    fraction: float | None = None

    def __post_init__(self) -> None:
        if self.absolute is not None and self.absolute < 1:
            raise ValueError(f"absolute must be >= 1, got {self.absolute}")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )

    def should_trigger(self, net_churn: int, num_edges: int) -> bool:
        """Has ``net_churn`` (distinct net-changed edges) crossed any
        configured threshold for a graph of ``num_edges`` edges?"""
        if net_churn <= 0:
            return False
        if self.absolute is not None and net_churn >= self.absolute:
            return True
        if (
            self.fraction is not None
            and net_churn >= self.fraction * max(num_edges, 1)
        ):
            return True
        return False


class Tenant:
    """One named tenant: graph, quota, churn window, latest solution.

    Not thread-safe on its own; the registry hands out per-tenant locks
    and the serving tier serialises mutations per tenant.
    """

    def __init__(
        self,
        name: str,
        *,
        quota: TenantQuota | None = None,
        config: LouvainConfig | None = None,
        nranks: int = 4,
        churn: ChurnPolicy | None = None,
    ):
        if not name or "/" in name:
            raise ValueError(f"invalid tenant name {name!r}")
        self.name = name
        self.quota = quota if quota is not None else TenantQuota()
        self.config = config if config is not None else LouvainConfig()
        self.nranks = nranks
        self.churn = churn if churn is not None else ChurnPolicy()
        self.graph: CSRGraph | None = None
        self.assignment: np.ndarray | None = None
        self.modularity: float | None = None
        self.accumulator = ChurnAccumulator()
        #: Per-tenant serving counters (jobs, edges, triggers, ...).
        self.counters: Counter[str] = Counter()
        self.lock = threading.Lock()

    # ------------------------------------------------------------------
    # Graph ownership
    # ------------------------------------------------------------------
    def load_graph(self, graph: CSRGraph) -> None:
        """Install (or replace) the owned graph; resets solution state."""
        budget = self.quota.edge_budget
        if budget is not None and graph.num_edges > budget:
            raise QuotaExceeded(
                "edge_budget",
                f"tenant {self.name!r}: graph has {graph.num_edges} edges, "
                f"budget is {budget}",
            )
        self.graph = graph
        self.assignment = None
        self.modularity = None
        self.accumulator.clear()
        self.counters["graphs_loaded"] += 1

    def _require_graph(self) -> CSRGraph:
        if self.graph is None:
            raise TenantError(
                f"tenant {self.name!r} owns no graph yet; load one first"
            )
        return self.graph

    # ------------------------------------------------------------------
    # Streaming mutations
    # ------------------------------------------------------------------
    def record_add_edges(self, u, v, w=None) -> bool:
        """Accumulate an insertion batch; True if the churn threshold
        is now crossed (caller should re-detect)."""
        g = self._require_graph()
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if len(u) and (u.min() < 0 or v.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        budget = self.quota.edge_budget
        if budget is not None:
            # Worst case every pending insert is a brand-new edge.
            projected = (
                g.num_edges + self.accumulator.net_size + len(u)
            )
            if projected > budget:
                raise QuotaExceeded(
                    "edge_budget",
                    f"tenant {self.name!r}: insertion batch could reach "
                    f"{projected} edges, budget is {budget}",
                )
        self.accumulator.add_edges(u, v, w)
        self.counters["edges_added"] += len(u)
        return self._threshold_crossed()

    def record_remove_edges(self, u, v) -> bool:
        """Accumulate a deletion batch; True if the churn threshold is
        now crossed."""
        self._require_graph()
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        self.accumulator.remove_edges(u, v)
        self.counters["edges_removed"] += len(u)
        return self._threshold_crossed()

    def _threshold_crossed(self) -> bool:
        g = self._require_graph()
        return self.churn.should_trigger(
            self.accumulator.net_size, g.num_edges
        )

    def take_churn(self) -> EdgeChurn:
        """Close the accumulation window: apply the pending net churn to
        the owned graph and return the batch that was applied."""
        g = self._require_graph()
        churn = self.accumulator.take()
        self.graph = apply_churn(g, churn)
        self.counters["churn_batches_applied"] += 1
        return churn

    # ------------------------------------------------------------------
    # Detection requests
    # ------------------------------------------------------------------
    def build_request(
        self,
        *,
        priority: int = 0,
        reset_touched: np.ndarray | None = None,
        incremental: bool | None = None,
    ) -> DetectionRequest:
        """A detection request for the current graph, quota-clamped.

        ``incremental`` defaults to "whenever a previous assignment
        exists"; an incremental request warm-starts from it and resets
        ``reset_touched`` (typically the applied churn's touched
        vertices) to singletons.
        """
        g = self._require_graph()
        ranks = min(self.nranks, self.quota.max_ranks)
        warm = (
            self.assignment is not None
            if incremental is None
            else incremental
        )
        if warm and self.assignment is None:
            raise TenantError(
                f"tenant {self.name!r} has no previous assignment to "
                "warm-start from"
            )
        if warm:
            return DetectionRequest(
                graph=g,
                config=self.config,
                nranks=ranks,
                mode="incremental",
                previous_assignment=self.assignment,
                reset_touched=reset_touched,
                priority=priority,
                tenant=self.name,
                tag=f"{self.name}/incremental",
            )
        return DetectionRequest(
            graph=g,
            config=self.config,
            nranks=ranks,
            priority=priority,
            tenant=self.name,
            tag=f"{self.name}/batch",
        )

    def absorb(self, assignment: np.ndarray, modularity: float) -> None:
        """Record a completed detection's solution as the tenant's
        current one (the warm-start seed for the next window)."""
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.modularity = float(modularity)
        self.counters["detections_absorbed"] += 1

    def describe(self) -> str:
        g = self.graph
        shape = (
            f"{g.num_vertices}v/{g.num_edges}e" if g is not None else "no graph"
        )
        return (
            f"tenant {self.name}: {shape}, pending churn "
            f"{self.accumulator.net_size}, "
            f"Q={'-' if self.modularity is None else f'{self.modularity:.4f}'}"
        )


class TenantRegistry:
    """Thread-safe name -> :class:`Tenant` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}

    def create(
        self,
        name: str,
        *,
        quota: TenantQuota | None = None,
        config: LouvainConfig | None = None,
        nranks: int = 4,
        churn: ChurnPolicy | None = None,
    ) -> Tenant:
        tenant = Tenant(
            name, quota=quota, config=config, nranks=nranks, churn=churn
        )
        with self._lock:
            if name in self._tenants:
                raise TenantError(f"tenant {name!r} already exists")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise UnknownTenant(name) from None

    def remove(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants.pop(name)
            except KeyError:
                raise UnknownTenant(name) from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __iter__(self):
        with self._lock:
            return iter(list(self._tenants.values()))
