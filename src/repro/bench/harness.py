"""Experiment harness: variant sweeps, process sweeps, speedup tables.

Each benchmark in ``benchmarks/`` composes these helpers to regenerate
one table or figure of the paper; the harness owns the mechanics
(running configurations, collecting modelled times, computing speedups)
so benches stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.config import LouvainConfig
from ..core.distlouvain import run_louvain
from ..core.result import LouvainResult
from ..graph.csr import CSRGraph
from ..runtime.perfmodel import CORI_HASWELL, MachineModel


@dataclass
class SweepResultSet:
    """Results of a (variant x process-count) sweep on one input graph."""

    graph_name: str
    #: results[variant_label][nranks] -> LouvainResult
    results: dict[str, dict[int, LouvainResult]] = field(default_factory=dict)

    def add(self, label: str, nranks: int, result: LouvainResult) -> None:
        self.results.setdefault(label, {})[nranks] = result

    def labels(self) -> list[str]:
        return list(self.results)

    def process_counts(self, label: str) -> list[int]:
        return sorted(self.results[label])

    def elapsed_series(self, label: str) -> list[tuple[int, float]]:
        """(nranks, modelled seconds) curve — one line of Fig. 3."""
        return [
            (p, self.results[label][p].elapsed)
            for p in self.process_counts(label)
        ]

    def best_speedup_over_baseline(
        self, baseline_label: str = "Baseline"
    ) -> tuple[float, str, int]:
        """Table IV metric: Baseline time on the smallest process count
        divided by the fastest (variant, p) observed; returns
        ``(speedup, winning label, winning p)``."""
        base = self.results.get(baseline_label)
        if not base:
            raise KeyError(f"no {baseline_label!r} results recorded")
        base_time = base[min(base)].elapsed
        best = (0.0, baseline_label, min(base))
        for label, by_p in self.results.items():
            for p, res in by_p.items():
                if res.elapsed <= 0:
                    continue
                speedup = base_time / res.elapsed
                if speedup > best[0]:
                    best = (speedup, label, p)
        return best

    def modularity_spread(self) -> tuple[float, float]:
        """(min, max) final modularity across every configuration."""
        mods = [
            r.modularity
            for by_p in self.results.values()
            for r in by_p.values()
        ]
        return min(mods), max(mods)


def run_variant_sweep(
    g: CSRGraph,
    graph_name: str,
    configs: list[LouvainConfig],
    process_counts: list[int],
    machine: MachineModel = CORI_HASWELL,
    partition: str = "even_edge",
) -> SweepResultSet:
    """Run every (config, nranks) combination on ``g``."""
    out = SweepResultSet(graph_name=graph_name)
    for config in configs:
        for p in process_counts:
            res = run_louvain(
                g, p, config, machine=machine, partition=partition
            )
            out.add(config.label(), p, res)
    return out


def strong_scaling_curve(
    g: CSRGraph,
    config: LouvainConfig,
    process_counts: list[int],
    machine: MachineModel = CORI_HASWELL,
) -> list[tuple[int, float]]:
    """(p, modelled seconds) for one variant — one curve of Fig. 3."""
    return [
        (p, run_louvain(g, p, config, machine=machine).elapsed)
        for p in process_counts
    ]


def run_trial(
    g: CSRGraph,
    config: LouvainConfig,
    nranks: int,
    *,
    machine: MachineModel = CORI_HASWELL,
    partition: str = "even_edge",
    max_phases: int | None = None,
    verify_schedule: bool | None = None,
) -> LouvainResult:
    """One autotuner trial: a (possibly phase-capped) measured run.

    ``max_phases`` overrides the config's phase cap — the successive-
    halving rungs of :mod:`repro.tune.search` run cheap low-fidelity
    trials (one or two phases) before committing to full runs.
    ``verify_schedule`` turns on the debug collective-schedule verifier
    so a tuning sweep doubles as a collective-safety sweep over the
    whole candidate space.
    """
    if max_phases is not None:
        config = replace(config, max_phases=max_phases)
    return run_louvain(
        g,
        nranks,
        config,
        machine=machine,
        partition=partition,
        verify_schedule=verify_schedule,
    )


def speedup_table(
    curve: list[tuple[int, float]]
) -> list[tuple[int, float, float]]:
    """(p, time, speedup vs the smallest p) rows for a scaling curve."""
    if not curve:
        return []
    base_p, base_t = curve[0]
    del base_p
    return [(p, t, (base_t / t) if t > 0 else float("inf")) for p, t in curve]


@dataclass
class CheckpointOverhead:
    """Modelled cost of checkpointing one configuration.

    The interesting number for a long production run is
    ``overhead_fraction``: how much of the run's modelled time goes to
    cutting checkpoints (shard I/O + digest gather + barrier, all
    charged to the ``checkpoint`` trace category).
    """

    plain: LouvainResult
    checkpointed: LouvainResult
    num_checkpoints: int

    @property
    def checkpoint_seconds(self) -> float:
        trace = self.checkpointed.trace
        if trace is None:
            return 0.0
        return trace.seconds_by_category().get("checkpoint", 0.0)

    @property
    def overhead_fraction(self) -> float:
        trace = self.checkpointed.trace
        if trace is None:
            return 0.0
        return trace.fraction_by_category().get("checkpoint", 0.0)

    def format(self) -> str:
        return (
            f"{self.num_checkpoints} checkpoint(s): "
            f"{self.checkpoint_seconds:.6f}s modelled "
            f"({100.0 * self.overhead_fraction:.2f}% of run), "
            f"elapsed {self.plain.elapsed:.6f}s -> "
            f"{self.checkpointed.elapsed:.6f}s"
        )


def measure_checkpoint_overhead(
    g: CSRGraph,
    nranks: int,
    config: LouvainConfig,
    checkpoint_dir: str,
    *,
    checkpoint_every: int = 1,
    checkpoint_every_iterations: int | None = None,
    machine: MachineModel = CORI_HASWELL,
    partition: str = "even_edge",
) -> CheckpointOverhead:
    """Run ``g`` plain and with checkpointing; report the modelled cost.

    Both runs use the same seed and machine model, so the checkpointed
    run's extra elapsed time is exactly the checkpoint overhead (the
    results themselves are verified identical — checkpoint writes never
    perturb the algorithm).
    """
    import os

    plain = run_louvain(
        g, nranks, config, machine=machine, partition=partition
    )
    checkpointed = run_louvain(
        g,
        nranks,
        config,
        machine=machine,
        partition=partition,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        checkpoint_every_iterations=checkpoint_every_iterations,
    )
    if checkpointed.modularity != plain.modularity:
        raise RuntimeError(
            "checkpointed run diverged from plain run "
            f"(Q={checkpointed.modularity} vs {plain.modularity})"
        )
    # Sequence numbers are monotonic, so the newest surviving step dir
    # reveals how many checkpoints were cut even after pruning.
    seqs = [
        int(name.split("-", 1)[1])
        for name in os.listdir(checkpoint_dir)
        if name.startswith("step-")
    ]
    num = max(seqs) + 1 if seqs else 0
    return CheckpointOverhead(
        plain=plain, checkpointed=checkpointed, num_checkpoints=num
    )
