"""Benchmark harness utilities (sweeps, speedups, table formatting)."""

from .ascii_plot import ascii_plot, sparkline
from .extrapolate import RunObservables, ScalingModel, calibrate, observe_run
from .harness import (
    SweepResultSet,
    run_variant_sweep,
    speedup_table,
    strong_scaling_curve,
)
from .tables import format_series, format_table

__all__ = [
    "RunObservables",
    "ascii_plot",
    "sparkline",
    "ScalingModel",
    "SweepResultSet",
    "calibrate",
    "observe_run",
    "format_series",
    "format_table",
    "run_variant_sweep",
    "speedup_table",
    "strong_scaling_curve",
]
