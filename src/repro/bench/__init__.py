"""Benchmark harness utilities (sweeps, speedups, table formatting)."""

from .ascii_plot import ascii_plot, sparkline
from .extrapolate import RunObservables, ScalingModel, calibrate, observe_run
from .harness import (
    SweepResultSet,
    run_trial,
    run_variant_sweep,
    speedup_table,
    strong_scaling_curve,
)
from .record import (
    BENCH_FORMAT_VERSION,
    append_bench_record,
    find_repo_root,
    read_bench_records,
)
from .tables import format_series, format_table

__all__ = [
    "BENCH_FORMAT_VERSION",
    "RunObservables",
    "ascii_plot",
    "sparkline",
    "ScalingModel",
    "SweepResultSet",
    "append_bench_record",
    "calibrate",
    "find_repo_root",
    "observe_run",
    "format_series",
    "format_table",
    "read_bench_records",
    "run_trial",
    "run_variant_sweep",
    "speedup_table",
    "strong_scaling_curve",
]
