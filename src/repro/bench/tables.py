"""Plain-text table / series formatting for the benchmark harness.

Benchmarks print the same rows the paper's tables report; this module
keeps the formatting in one place so every bench output looks alike.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[Any, Any]], unit: str = ""
) -> str:
    """Render an (x, y) series, one point per line — the textual stand-in
    for one curve of a paper figure."""
    lines = [f"series: {name}" + (f" [{unit}]" if unit else "")]
    for x, y in points:
        lines.append(f"  {_cell(x):>12} -> {_cell(y)}")
    return "\n".join(lines)


def _cell(v: Any) -> str:
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)
