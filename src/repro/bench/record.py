"""Machine-readable benchmark records: append-only ``BENCH_*.json``.

The text blocks under ``benchmarks/results/`` are for humans; CI trend
tracking wants structured data.  :func:`append_bench_record` appends one
JSON-able dict to ``BENCH_<name>.json`` at the repository root (found by
walking up to ``pyproject.toml``/``.git``), creating the file on first
use.  Writes are atomic (temp file + ``os.replace``), following the
:mod:`repro.core.resultio` idiom, so a crashed benchmark run never
leaves a half-written file behind.

File shape::

    {"version": 1, "records": [ {...}, {...}, ... ]}
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

#: Format version stamped into every ``BENCH_*.json`` document.
BENCH_FORMAT_VERSION = 1

#: Files whose presence marks the repository root.
_ROOT_MARKERS = ("pyproject.toml", ".git")


def find_repo_root(start: str | os.PathLike[str] | None = None) -> Path:
    """Walk up from ``start`` (default: this file) to the repo root.

    The root is the first ancestor holding a marker file
    (``pyproject.toml`` or ``.git``).  Raises :class:`FileNotFoundError`
    when no ancestor qualifies — better than silently writing records
    into an arbitrary directory.
    """
    here = Path(start) if start is not None else Path(__file__)
    here = here.resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    raise FileNotFoundError(
        f"no repository root (marked by {_ROOT_MARKERS}) above {here}"
    )


def read_bench_records(
    name: str, root: str | os.PathLike[str] | None = None
) -> list[dict[str, Any]]:
    """All records of ``BENCH_<name>.json`` (empty list if absent)."""
    path = _bench_path(name, root)
    if not path.exists():
        return []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    _validate(doc, path)
    return list(doc["records"])


def append_bench_record(
    name: str,
    record: Mapping[str, Any],
    root: str | os.PathLike[str] | None = None,
) -> Path:
    """Append one record to ``BENCH_<name>.json``; returns the path.

    ``record`` must be JSON-serialisable.  The whole document is
    rewritten atomically so concurrent readers never observe a torn
    file.
    """
    path = _bench_path(name, root)
    records = read_bench_records(name, root)
    records.append(dict(record))
    doc = {"version": BENCH_FORMAT_VERSION, "records": records}
    payload = json.dumps(doc, indent=1, sort_keys=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def _bench_path(
    name: str, root: str | os.PathLike[str] | None = None
) -> Path:
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"invalid bench name {name!r}")
    base = Path(root) if root is not None else find_repo_root()
    return base / f"BENCH_{name}.json"


def _validate(doc: Any, path: Path) -> None:
    if (
        not isinstance(doc, dict)
        or doc.get("version") != BENCH_FORMAT_VERSION
        or not isinstance(doc.get("records"), list)
    ):
        raise ValueError(
            f"{path} is not a version-{BENCH_FORMAT_VERSION} bench file"
        )
