"""Analytic strong-scaling extrapolation to the paper's process range.

The simulator runs tens of ranks; the paper runs 16-4096.  This module
bridges the gap: calibrate a closed-form cost model from two simulated
runs at small ``p``, then evaluate it at any process count.

Model (per full run, all iterations folded together):

``T(p) = C / (p * R)                                  -- local compute
       + A_a2a * (p - 1) * alpha + V(p) * beta / p    -- alltoall rounds
       + A_ar  * 2 * ceil(log2 p) * (alpha + beta*b)  -- allreduces
       + T_fixed``

where ``C`` is the total edge-operation count, ``A_a2a``/``A_ar`` count
the communication rounds, and ``V(p) = V_inf * (1 - 1/p)`` models the
total exchanged volume: ghost traffic is proportional to the number of
*cut* edges, which grows as ``1 - 1/p`` for a random 1-D split.  The
two calibration runs pin ``V_inf`` and the fixed overheads.

The prediction inherits the paper's qualitative behaviour: time falls
like ``1/p`` while compute dominates, flattens as the volume term
saturates, and eventually *rises* when the ``alpha * p`` alltoall
latency takes over — the "end points in scaling" of §V-A.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import LouvainConfig
from ..core.distlouvain import run_louvain
from ..graph.csr import CSRGraph
from ..runtime.perfmodel import CORI_HASWELL, MachineModel


@dataclass(frozen=True)
class RunObservables:
    """What one simulated run contributes to calibration."""

    nranks: int
    elapsed: float
    compute_seconds: float
    comm_bytes: float
    alltoall_rounds: int
    allreduce_rounds: int


@dataclass(frozen=True)
class ScalingModel:
    """Calibrated closed-form strong-scaling model for one workload."""

    machine: MachineModel
    compute_ops: float          # C: total edge operations
    volume_inf: float           # V_inf: asymptotic exchanged bytes
    alltoall_rounds: float      # A_a2a
    allreduce_rounds: float     # A_ar
    allreduce_bytes: float      # b: payload per allreduce
    fixed_seconds: float        # T_fixed: p-independent residue

    def predict(self, p: int) -> float:
        """Modelled execution time at ``p`` processes."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        m = self.machine
        rate = m.effective_compute_rate()
        compute = self.compute_ops / (p * rate)
        volume = self.volume_inf * (1.0 - 1.0 / p)
        stages = math.ceil(math.log2(p)) if p > 1 else 0
        # Latency: one (p-1)-partner exchange per round; bandwidth: the
        # run's total volume crosses each rank's NIC once in each
        # direction, spread across all rounds.
        a2a = (
            self.alltoall_rounds * (p - 1) * m.alpha
            + 2.0 * volume * m.beta / p
        )
        ar = self.allreduce_rounds * 2.0 * stages * (
            m.alpha + m.beta * self.allreduce_bytes
        )
        return compute + a2a + ar + self.fixed_seconds

    def predict_curve(self, ps: list[int]) -> list[tuple[int, float]]:
        return [(p, self.predict(p)) for p in ps]

    def sweet_spot(self, max_p: int = 1 << 14) -> int:
        """Process count minimising predicted time (powers of two)."""
        best_p, best_t = 1, self.predict(1)
        p = 2
        while p <= max_p:
            t = self.predict(p)
            if t < best_t:
                best_p, best_t = p, t
            p *= 2
        return best_p


def observe_run(
    g: CSRGraph,
    nranks: int,
    config: LouvainConfig | None,
    machine: MachineModel,
) -> RunObservables:
    """Run the simulator once and extract the calibration observables."""
    result = run_louvain(g, nranks, config, machine=machine)
    cats = result.trace.seconds_by_category()
    colls = result.trace.collective_counts()
    return RunObservables(
        nranks=nranks,
        elapsed=result.elapsed,
        compute_seconds=cats.get("compute", 0.0),
        comm_bytes=float(result.trace.total_bytes),
        alltoall_rounds=colls.get("alltoall", 0)
        + colls.get("neighbor_alltoall", 0),
        allreduce_rounds=colls.get("allreduce", 0),
    )


def calibrate(
    g: CSRGraph,
    config: LouvainConfig | None = None,
    machine: MachineModel = CORI_HASWELL,
    p_low: int = 2,
    p_high: int = 8,
) -> ScalingModel:
    """Calibrate a :class:`ScalingModel` from two simulated runs.

    ``p_low``/``p_high`` are the reference process counts; the volume
    curve ``V(p) = V_inf (1 - 1/p)`` is pinned by the two byte counts,
    and ops/round counts are averaged per-run (they vary mildly with
    ``p`` because convergence trajectories differ).
    """
    if not 1 < p_low < p_high:
        raise ValueError(
            f"need 1 < p_low < p_high, got {p_low}, {p_high}"
        )
    lo = observe_run(g, p_low, config, machine)
    hi = observe_run(g, p_high, config, machine)

    rate = machine.effective_compute_rate()
    # Total ops: compute seconds are per-rank sums, so ops = secs * rate.
    compute_ops = 0.5 * (lo.compute_seconds + hi.compute_seconds) * rate

    # V_inf from the two volume observations (least squares on the two
    # points of V(p) = V_inf (1 - 1/p)).
    f_lo = 1.0 - 1.0 / lo.nranks
    f_hi = 1.0 - 1.0 / hi.nranks
    volume_inf = (lo.comm_bytes * f_lo + hi.comm_bytes * f_hi) / (
        f_lo**2 + f_hi**2
    )

    # Rounds are per-rank counts: totals divide by p.
    a2a_rounds = 0.5 * (
        lo.alltoall_rounds / lo.nranks + hi.alltoall_rounds / hi.nranks
    )
    ar_rounds = 0.5 * (
        lo.allreduce_rounds / lo.nranks + hi.allreduce_rounds / hi.nranks
    )
    allreduce_bytes = 64.0  # small fixed payloads (4 doubles + envelope)

    model = ScalingModel(
        machine=machine,
        compute_ops=compute_ops,
        volume_inf=volume_inf,
        alltoall_rounds=a2a_rounds,
        allreduce_rounds=ar_rounds,
        allreduce_bytes=allreduce_bytes,
        fixed_seconds=0.0,
    )
    # Fix the residue so the model is exact at the high reference point
    # (keeps predictions anchored to an actual simulation).
    residue = hi.elapsed - model.predict(hi.nranks)
    return ScalingModel(
        machine=machine,
        compute_ops=compute_ops,
        volume_inf=volume_inf,
        alltoall_rounds=a2a_rounds,
        allreduce_rounds=ar_rounds,
        allreduce_bytes=allreduce_bytes,
        fixed_seconds=max(residue, 0.0),
    )
