"""ASCII line/scatter plots for terminal-rendered figures.

No plotting library ships with this environment, so figure-style
benchmark outputs (Figs. 3-6) render as ASCII charts: good enough to
see curve shapes, crossovers and flattening points in the text logs.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Symbols assigned to successive series.
MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Points map to a ``width x height`` grid; each series gets a marker
    from :data:`MARKERS`; overlapping points show the later series.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, pts in series.items():
        if not pts:
            raise ValueError(f"series {name!r} is empty")

    def tx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("logx requires positive x values")
            return math.log10(x)
        return x

    def ty(y: float) -> float:
        if logy:
            if y <= 0:
                raise ValueError("logy requires positive y values")
            return math.log10(y)
        return y

    xs = [tx(x) for pts in series.values() for x, _ in pts]
    ys = [ty(y) for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (name, pts) in enumerate(series.items()):
        marker = MARKERS[i % len(MARKERS)]
        for x, y in pts:
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_lo_label = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    margin = max(len(y_hi_label), len(y_lo_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_label
        elif r == height - 1:
            label = y_lo_label
        else:
            label = ""
        lines.append(f"{label:>{margin}}|" + "".join(row))
    x_hi_label = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    x_lo_label = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    xline = (
        " " * (margin + 1)
        + x_lo_label
        + " " * max(1, width - len(x_lo_label) - len(x_hi_label))
        + x_hi_label
    )
    lines.append(xline)
    if xlabel or ylabel:
        lines.append(
            " " * (margin + 1)
            + (f"x: {xlabel}" if xlabel else "")
            + ("   " if xlabel and ylabel else "")
            + (f"y: {ylabel}" if ylabel else "")
        )
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """One-line trend rendering with block characters."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Resample to the requested width.
    step = max(1, len(values) // width)
    sampled = list(values)[::step][:width]
    return "".join(
        blocks[min(8, int((v - lo) / span * 8))] for v in sampled
    )
