"""Service observability: counters, gauges, and latency histograms.

Everything the engine does is counted here — submissions, completions
by terminal state, rejections by reason, cache hits/misses, retries —
plus two latency histograms (submit->start and start->done wall-clock
seconds) and live gauges (queue depth, running jobs).  A
:meth:`ServiceMetrics.snapshot` is a plain JSON-able dict, so the CLI
can dump it and tests can assert on it.

The per-job :class:`~repro.runtime.tracing.TraceReport`\\ s also merge
in (:meth:`ServiceMetrics.observe_trace`), extending the paper's §V-A
breakdown across the whole served workload: the snapshot carries the
aggregate modelled seconds per category (compute, ghost_comm, …,
checkpoint) summed over every completed job.
"""

from __future__ import annotations

import bisect
import threading
from collections import Counter

from ..runtime.tracing import TraceReport

#: Default latency bucket upper bounds, seconds (log-ish spacing wide
#: enough for both sub-second simulated jobs and multi-minute real ones).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of seconds (cumulative, Prometheus-style)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly increasing")
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +inf overflow
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency {seconds}")
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.total += seconds
        self.count += 1
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for bound, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= rank:
                return bound
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {
                str(b): c for b, c in zip(self.bounds, self.counts)
            }
            | {"+inf": self.counts[-1]},
        }


class ServiceMetrics:
    """Thread-safe metric registry for one :class:`~repro.service.Engine`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Counter[str] = Counter()
        self.gauges: dict[str, int | float] = {
            "queue_depth": 0,
            "running": 0,
        }
        self.queue_latency = LatencyHistogram()
        self.run_latency = LatencyHistogram()
        self._trace_seconds: Counter[str] = Counter()
        self._trace_collectives: Counter[str] = Counter()
        self._modelled_seconds = 0.0

    # -- counters / gauges ----------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self.counters[name] += by

    def set_gauge(self, name: str, value: int | float) -> None:
        with self._lock:
            self.gauges[name] = value

    def adjust_gauge(self, name: str, by: int) -> None:
        with self._lock:
            self.gauges[name] = self.gauges.get(name, 0) + by

    # -- latencies ------------------------------------------------------
    def observe_queue_latency(self, seconds: float) -> None:
        with self._lock:
            self.queue_latency.observe(seconds)

    def observe_run_latency(self, seconds: float) -> None:
        with self._lock:
            self.run_latency.observe(seconds)

    # -- trace merge ----------------------------------------------------
    def observe_trace(self, trace: TraceReport | None, elapsed: float) -> None:
        """Fold one completed job's trace into the workload aggregate."""
        with self._lock:
            self._modelled_seconds += elapsed
            if trace is None:
                return
            self._trace_seconds.update(trace.seconds_by_category())
            self._trace_collectives.update(trace.collective_counts())

    # -- export ---------------------------------------------------------
    def cache_hit_rate(self) -> float:
        with self._lock:
            hits = self.counters["cache_hits"]
            misses = self.counters["cache_misses"]
        looked = hits + misses
        return hits / looked if looked else 0.0

    def snapshot(self) -> dict:
        """One consistent JSON-able view of everything."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "cache_hit_rate": (
                    self.counters["cache_hits"]
                    / max(
                        self.counters["cache_hits"]
                        + self.counters["cache_misses"],
                        1,
                    )
                ),
                "latency": {
                    "queue_seconds": self.queue_latency.snapshot(),
                    "run_seconds": self.run_latency.snapshot(),
                },
                "modelled": {
                    "total_seconds": self._modelled_seconds,
                    "seconds_by_category": dict(self._trace_seconds),
                    "collective_counts": dict(self._trace_collectives),
                },
            }

    def format(self) -> str:
        """Human-readable one-screen summary."""
        snap = self.snapshot()
        lines = ["service metrics:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name:<22} {snap['counters'][name]}")
        lines.append(f"  {'cache_hit_rate':<22} {snap['cache_hit_rate']:.1%}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name:<22} {value} (gauge)")
        for label, key in (
            ("queue wait", "queue_seconds"),
            ("run time", "run_seconds"),
        ):
            h = snap["latency"][key]
            lines.append(
                f"  {label:<11} n={h['count']} mean={h['mean']:.3f}s "
                f"p50<={h['p50']:.3f}s p99<={h['p99']:.3f}s "
                f"max={h['max']:.3f}s"
            )
        cats = snap["modelled"]["seconds_by_category"]
        if cats:
            total = sum(cats.values()) or 1.0
            lines.append("  modelled seconds by category (all jobs):")
            for cat, sec in sorted(cats.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {cat:<16} {sec:>12.6f}s  {sec/total:6.1%}")
        return "\n".join(lines)
