"""Service observability: counters, gauges, and latency histograms.

Everything the engine does is counted here — submissions, completions
by terminal state, rejections by reason, cache hits/misses, retries —
plus two latency histograms (submit->start and start->done wall-clock
seconds) and live gauges (queue depth, running jobs).  A
:meth:`ServiceMetrics.snapshot` is a plain JSON-able dict, so the CLI
can dump it and tests can assert on it.

The per-job :class:`~repro.runtime.tracing.TraceReport`\\ s also merge
in (:meth:`ServiceMetrics.observe_trace`), extending the paper's §V-A
breakdown across the whole served workload: the snapshot carries the
aggregate modelled seconds per category (compute, ghost_comm, …,
checkpoint) summed over every completed job.

Since the ``repro.obs`` port, the backing store is a
:class:`~repro.obs.registry.MetricsRegistry` (exposed as
:attr:`ServiceMetrics.registry`) so the same numbers are available as
labeled Prometheus families; the legacy surface — ``counters`` /
``gauges`` attributes, the ``queue_latency`` / ``run_latency``
histograms, and every :meth:`snapshot` key — is unchanged.
"""

from __future__ import annotations

from collections import Counter

from ..obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from ..runtime.tracing import TraceReport

__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram", "ServiceMetrics"]

#: Historical name: the engine's histogram type now lives in
#: :mod:`repro.obs.registry`; the API and snapshot format are identical.
LatencyHistogram = Histogram


class ServiceMetrics:
    """Thread-safe metric registry for one :class:`~repro.service.Engine`."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "repro_service_events_total",
            "Engine lifecycle events (submitted, completed, cache_hits, ...).",
            labelnames=("event",),
        )
        self._gauges = self.registry.gauge(
            "repro_service_gauge",
            "Engine live gauges (queue_depth, running, ...).",
            labelnames=("name",),
        )
        latency = self.registry.histogram(
            "repro_service_latency_seconds",
            "Job latency by stage: queue (submit->start), run (start->done).",
            labelnames=("stage",),
            buckets=DEFAULT_BUCKETS,
        )
        self.queue_latency = latency.labels(stage="queue")
        self.run_latency = latency.labels(stage="run")
        self._trace_seconds = self.registry.counter(
            "repro_trace_seconds_total",
            "Modelled virtual seconds by category over every completed job.",
            labelnames=("category",),
        )
        self._trace_collectives = self.registry.counter(
            "repro_trace_collectives_total",
            "Collective invocations by op over every completed job.",
            labelnames=("op",),
        )
        self._modelled = self.registry.counter(
            "repro_modelled_seconds_total",
            "Total modelled seconds over every completed job.",
        )
        # The two load gauges exist (at zero) before anything happens.
        self._gauges.labels(name="queue_depth").set(0)
        self._gauges.labels(name="running").set(0)

    # -- legacy read surface --------------------------------------------
    @property
    def counters(self) -> Counter[str]:
        """Event counters as the historical :class:`collections.Counter`."""
        return Counter(
            {
                labels["event"]: int(child.value)
                for labels, child in self._events.samples()
            }
        )

    @property
    def gauges(self) -> dict[str, int | float]:
        return {
            labels["name"]: _as_number(child.value)
            for labels, child in self._gauges.samples()
        }

    # -- counters / gauges ----------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        self._events.labels(event=name).inc(by)

    def set_gauge(self, name: str, value: int | float) -> None:
        self._gauges.labels(name=name).set(value)

    def adjust_gauge(self, name: str, by: int) -> None:
        self._gauges.labels(name=name).adjust(by)

    # -- latencies ------------------------------------------------------
    def observe_queue_latency(self, seconds: float) -> None:
        self.queue_latency.observe(seconds)

    def observe_run_latency(self, seconds: float) -> None:
        self.run_latency.observe(seconds)

    # -- trace merge ----------------------------------------------------
    def observe_trace(self, trace: TraceReport | None, elapsed: float) -> None:
        """Fold one completed job's trace into the workload aggregate."""
        self._modelled.inc(elapsed)
        if trace is None:
            return
        for category, seconds in trace.seconds_by_category().items():
            self._trace_seconds.labels(category=category).inc(seconds)
        for op, count in trace.collective_counts().items():
            self._trace_collectives.labels(op=op).inc(count)

    # -- export ---------------------------------------------------------
    def cache_hit_rate(self) -> float:
        counters = self.counters
        looked = counters["cache_hits"] + counters["cache_misses"]
        return counters["cache_hits"] / looked if looked else 0.0

    def snapshot(self) -> dict:
        """One consistent JSON-able view of everything."""
        counters = self.counters
        return {
            "counters": dict(counters),
            "gauges": self.gauges,
            "cache_hit_rate": (
                counters["cache_hits"]
                / max(counters["cache_hits"] + counters["cache_misses"], 1)
            ),
            "latency": {
                "queue_seconds": self.queue_latency.snapshot(),
                "run_seconds": self.run_latency.snapshot(),
            },
            "modelled": {
                "total_seconds": self._modelled.value,
                "seconds_by_category": {
                    labels["category"]: child.value
                    for labels, child in self._trace_seconds.samples()
                },
                "collective_counts": {
                    labels["op"]: int(child.value)
                    for labels, child in self._trace_collectives.samples()
                },
            },
        }

    def format(self) -> str:
        """Human-readable one-screen summary."""
        snap = self.snapshot()
        lines = ["service metrics:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name:<22} {snap['counters'][name]}")
        lines.append(f"  {'cache_hit_rate':<22} {snap['cache_hit_rate']:.1%}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name:<22} {value} (gauge)")
        for label, key in (
            ("queue wait", "queue_seconds"),
            ("run time", "run_seconds"),
        ):
            h = snap["latency"][key]
            lines.append(
                f"  {label:<11} n={h['count']} mean={h['mean']:.3f}s "
                f"p50<={h['p50']:.3f}s p99<={h['p99']:.3f}s "
                f"max={h['max']:.3f}s"
            )
        cats = snap["modelled"]["seconds_by_category"]
        if cats:
            total = sum(cats.values()) or 1.0
            lines.append("  modelled seconds by category (all jobs):")
            for cat, sec in sorted(cats.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {cat:<16} {sec:>12.6f}s  {sec/total:6.1%}")
        return "\n".join(lines)


def _as_number(value: float) -> int | float:
    """Integral floats render as the ints the pre-registry dicts held."""
    return int(value) if float(value).is_integer() else value
