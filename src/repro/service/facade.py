"""Legacy entry points, re-expressed over the unified request API.

The three historical front doors — ``run_louvain`` (one-shot batch),
``distributed_louvain`` (per-rank SPMD body, incl. ``resume=``) and
``incremental_louvain`` (warm-started re-detection) — live on as thin
wrappers that build a :class:`~repro.service.DetectionRequest` and
delegate to :func:`repro.service.detect`, emitting a
:class:`DeprecationWarning` that documents the new spelling.  Old call
sites keep working unchanged; new code should construct requests
directly (and use an :class:`~repro.service.Engine` to serve more than
one).

The un-deprecated implementations remain importable from
:mod:`repro.core` for the library's own internals.
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

from ..core import distlouvain as _distlouvain
from ..core.config import LouvainConfig
from ..core.result import LouvainResult
from ..runtime.perfmodel import CORI_HASWELL, MachineModel
from .engine import detect
from .request import DetectionRequest


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; use {new} "
        "(see the README 'Serving' section)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_louvain(
    g: Any,
    nranks: int,
    config: LouvainConfig | None = None,
    *,
    machine: MachineModel = CORI_HASWELL,
    partition: str = "even_edge",
    timeout: float = 300.0,
    initial_assignment: np.ndarray | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    checkpoint_every_iterations: int | None = None,
    resume: bool = False,
    fault_plan: Any = None,
) -> LouvainResult:
    """Deprecated: build a :class:`DetectionRequest` and call
    :func:`repro.service.detect` (or serve it via an Engine) instead."""
    _deprecated(
        "run_louvain",
        "repro.detect(DetectionRequest(graph=g, config=..., nranks=...))",
    )
    if resume:
        request = DetectionRequest(
            config=config or LouvainConfig(),
            nranks=nranks,
            machine=machine,
            partition=partition,
            mode="resume",
            timeout=timeout,
            max_retries=0,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_every_iterations=checkpoint_every_iterations,
            fault_plan=fault_plan,
            use_cache=False,
        )
    else:
        # An explicit warm start is the incremental mode's seed;
        # plumb it through the request unchanged.
        request = DetectionRequest(
            graph=g,
            config=config or LouvainConfig(),
            nranks=nranks,
            machine=machine,
            partition=partition,
            mode=(
                "incremental" if initial_assignment is not None else "batch"
            ),
            previous_assignment=initial_assignment,
            timeout=timeout,
            max_retries=0,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_every_iterations=checkpoint_every_iterations,
            fault_plan=fault_plan,
            use_cache=False,
        )
    result = detect(request).result
    assert result is not None  # detect() raises on failure
    return result


def distributed_louvain(
    comm: Any,
    dg: Any,
    config: LouvainConfig | None = None,
    initial_assignment: np.ndarray | None = None,
    *,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    checkpoint_every_iterations: int | None = None,
    resume: bool = False,
) -> LouvainResult:
    """Deprecated: the per-rank SPMD body is an internal; whole
    detections go through the service API.  Forwards to
    :func:`repro.core.distlouvain.distributed_louvain` unchanged (this
    function runs *inside* ``run_spmd``, where the engine cannot wrap
    it)."""
    _deprecated(
        "distributed_louvain",
        "repro.detect / repro.Engine for whole detections "
        "(repro.core.distributed_louvain inside custom SPMD programs)",
    )
    return _distlouvain.distributed_louvain(
        comm,
        dg,
        config,
        initial_assignment,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        checkpoint_every_iterations=checkpoint_every_iterations,
        resume=resume,
    )


def incremental_louvain(
    g_new: Any,
    previous_assignment: np.ndarray,
    nranks: int = 4,
    config: LouvainConfig | None = None,
    *,
    machine: MachineModel = CORI_HASWELL,
    reset_touched: np.ndarray | None = None,
) -> LouvainResult:
    """Deprecated: submit a ``mode="incremental"`` request instead."""
    _deprecated(
        "incremental_louvain",
        'repro.detect(DetectionRequest(mode="incremental", '
        "previous_assignment=..., ...))",
    )
    request = DetectionRequest(
        graph=g_new,
        config=config or LouvainConfig(),
        nranks=nranks,
        machine=machine,
        mode="incremental",
        previous_assignment=np.asarray(previous_assignment, dtype=np.int64),
        reset_touched=reset_touched,
        max_retries=0,
        use_cache=False,
    )
    result = detect(request).result
    assert result is not None
    return result
