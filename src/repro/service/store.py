"""Content-addressed result cache with LRU eviction and disk persistence.

Keys are the :meth:`DetectionRequest.cache_key` digests — (graph
fingerprint, canonical config hash, execution shape) — so two requests
asking for the same detection map to the same entry regardless of who
submits them or in what order the config fields were spelled.

Two tiers:

* **memory** — an LRU of full :class:`~repro.core.result.LouvainResult`
  objects (iteration series, trace and all), bounded by ``capacity``;
* **disk** (optional) — every stored result is also persisted through
  :mod:`repro.core.resultio` (atomic ``.npz`` writes), so a restarted
  service warms up from previous runs.  Disk entries reload the
  assignment, modularity, per-phase stats and elapsed time — the
  durable parts of a result; per-iteration diagnostics and the trace
  live only in the memory tier.  ``disk_capacity`` bounds the tier:
  once exceeded, the least-recently-used entries (by access stamp —
  both stores and disk hits refresh it) are deleted.

Hits served from either tier are *copies*: callers may mutate what they
get back without corrupting the cache.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from collections import OrderedDict

from ..core.result import LouvainResult
from ..core.resultio import load_result, save_result


class ResultStore:
    """Thread-safe two-tier (memory LRU + optional disk) result cache."""

    def __init__(
        self,
        capacity: int = 128,
        directory: str | os.PathLike | None = None,
        disk_capacity: int | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = os.fspath(directory) if directory is not None else None
        if disk_capacity is not None:
            if self.directory is None:
                raise ValueError("disk_capacity requires a directory")
            if disk_capacity < 1:
                raise ValueError(
                    f"disk_capacity must be >= 1, got {disk_capacity}"
                )
        self.disk_capacity = disk_capacity
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, LouvainResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_evictions = 0
        #: Strictly increasing mtime stamp (ns) — breaks ties between
        #: accesses landing in the same clock tick so disk-LRU order is
        #: total and deterministic.
        self._last_stamp_ns = 0

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str | None:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.npz")

    def get(self, key: str) -> LouvainResult | None:
        """Cached result for ``key`` (a copy), or ``None`` on miss.

        A memory hit refreshes the entry's LRU position; a disk hit
        promotes the reloaded result into the memory tier.
        """
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return copy.deepcopy(result)
        path = self._disk_path(key)
        if path is not None and os.path.exists(path):
            result = load_result(path)
            with self._lock:
                self.hits += 1
                self._insert_locked(key, result)
                self._touch_locked(path)
            return copy.deepcopy(result)
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, result: LouvainResult) -> None:
        """Store a result under its content key (memory + disk tiers)."""
        result = copy.deepcopy(result)
        path = self._disk_path(key)
        if path is not None:
            os.makedirs(self.directory, exist_ok=True)  # type: ignore[arg-type]
            save_result(path, result)
        with self._lock:
            self._insert_locked(key, result)
            if path is not None:
                self._touch_locked(path)
                self._evict_disk_locked()

    def _insert_locked(self, key: str, result: LouvainResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.evictions += 1

    def _touch_locked(self, path: str) -> None:
        """Stamp ``path`` as just-used with a strictly increasing mtime."""
        stamp = max(time.time_ns(), self._last_stamp_ns + 1)
        self._last_stamp_ns = stamp
        try:
            os.utime(path, ns=(stamp, stamp))
        except FileNotFoundError:
            pass

    def _disk_entries_locked(self) -> list[os.DirEntry]:
        """Disk-tier entries, least- to most-recently used."""
        if self.directory is None:
            return []
        try:
            entries = [
                e for e in os.scandir(self.directory)
                if e.name.endswith(".npz")
            ]
        except FileNotFoundError:
            return []
        entries.sort(key=lambda e: (e.stat().st_mtime_ns, e.name))
        return entries

    def _evict_disk_locked(self) -> None:
        if self.disk_capacity is None:
            return
        entries = self._disk_entries_locked()
        excess = len(entries) - self.disk_capacity
        for entry in entries[:max(excess, 0)]:
            try:
                os.unlink(entry.path)
            except FileNotFoundError:
                continue
            self.disk_evictions += 1

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def keys(self) -> list[str]:
        """Memory-tier keys, least- to most-recently used."""
        with self._lock:
            return list(self._memory)

    def disk_keys(self) -> list[str]:
        """Disk-tier keys, least- to most-recently used."""
        with self._lock:
            return [
                e.name[: -len(".npz")] for e in self._disk_entries_locked()
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._memory),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "directory": self.directory,
                "disk_entries": len(self._disk_entries_locked()),
                "disk_capacity": self.disk_capacity,
                "disk_evictions": self.disk_evictions,
            }
