"""The detection engine: async job multiplexing over a bounded worker pool.

``Engine`` is the serving tier the ROADMAP asks for: typed
:class:`~repro.service.request.DetectionRequest` s go in, jobs move
through ``PENDING -> RUNNING -> DONE | FAILED | CANCELLED``, and many
detections run concurrently — each worker drives its own simulated SPMD
world, so an 8-worker engine multiplexes eight independent detections
the way an inference server multiplexes model replicas.

Reliability semantics:

* **admission control / backpressure** — submissions beyond the queue
  bound are rejected with a reason (:class:`AdmissionError`), never
  buffered unboundedly;
* **retry-with-resume** — a job whose ranks die mid-run (crash, injected
  fault, lost message) is retried up to ``max_retries`` times; the
  engine auto-checkpoints every job that allows retries into a per-job
  directory, so each retry *resumes* from the last valid checkpoint
  (PR-1 machinery) instead of recomputing finished phases;
* **result caching** — cacheable requests are content-addressed
  (graph fingerprint + canonical config hash) against the engine's
  :class:`~repro.service.store.ResultStore`; a repeat submission is
  served bit-identically without recomputation;
* **cancellation** — pending jobs cancel immediately; running jobs
  cancel best-effort (the in-flight SPMD world completes, its result is
  discarded, and the job lands in CANCELLED).

Timeouts: ``request.timeout`` caps each blocking runtime operation (a
hung collective fails the attempt) and bounds the *retry* schedule — no
attempt starts after the deadline.  A healthy-but-slow attempt already
in flight is not killed mid-collective; like real MPI, there is no safe
preemption point inside a rendezvous.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.distlouvain import run_louvain
from ..core.dynamic import warm_start_assignment
from ..core.result import LouvainResult
from ..obs.drift import DriftMonitor
from ..obs.events import EventLog, scoped
from ..runtime.errors import (
    CommTimeoutError,
    InjectedFault,
    RankFailedError,
)
from ..runtime.tracing import RankTrace, TraceReport
from ..tune.db import TuningDB, TuningRecord
from ..tune.search import TunerSettings
from .metrics import ServiceMetrics
from .request import DetectionRequest, DetectionResponse, JobState
from .scheduler import AdmissionError, PriorityScheduler
from .store import ResultStore

__all__ = [
    "Engine",
    "Job",
    "execute_request",
]

#: Scheduler priority of engine-internal background tune jobs: below
#: any plausible client priority, so tuning only consumes idle workers.
TUNE_JOB_PRIORITY = -1_000_000

#: Exceptions that mark an *attempt* as failed but the job as retryable.
RETRYABLE = (RankFailedError, InjectedFault, CommTimeoutError)

#: Default per-blocking-op timeout (seconds) when a request sets none.
DEFAULT_OP_TIMEOUT = 300.0

_UNSET = object()


def execute_request(
    request: DetectionRequest,
    *,
    checkpoint_dir: str | None = None,
    checkpoint_every_iterations: int | None = None,
    resume: bool | None = None,
    fault_plan: object = _UNSET,
) -> LouvainResult:
    """Run one request synchronously; the single unified execution path.

    Every way into the library — ``Engine`` workers, the inline
    :func:`repro.service.detect` facade, and the deprecated legacy
    wrappers — funnels through here, so request semantics are defined
    once.  The keyword overrides exist for the engine's retry machinery
    (per-job checkpoint directory, resume-on-retry, dropping a fired
    fault plan); plain callers never pass them.
    """
    ckpt = checkpoint_dir if checkpoint_dir is not None else request.checkpoint_dir
    every_iters = (
        checkpoint_every_iterations
        if checkpoint_every_iterations is not None
        else request.checkpoint_every_iterations
    )
    do_resume = (request.mode == "resume") if resume is None else resume
    plan = request.fault_plan if fault_plan is _UNSET else fault_plan
    seed = None
    if request.mode == "incremental":
        assert request.previous_assignment is not None  # __post_init__
        seed = warm_start_assignment(
            request.resolved_graph(),
            request.previous_assignment,
            reset_touched=request.reset_touched,
        )
    graph = None if do_resume else request.resolved_graph()
    return run_louvain(
        graph,  # type: ignore[arg-type]  # unused on the resume path
        request.nranks,
        request.config,
        machine=request.machine,
        partition=request.partition,
        timeout=request.timeout or DEFAULT_OP_TIMEOUT,
        initial_assignment=seed,
        checkpoint_dir=ckpt,
        checkpoint_every=request.checkpoint_every,
        checkpoint_every_iterations=every_iters,
        resume=do_resume,
        fault_plan=plan,
    )


@dataclass
class Job:
    """Engine-internal bookkeeping for one submitted request."""

    id: str
    request: DetectionRequest
    state: JobState = JobState.PENDING
    #: "detect" (client work) or "tune" (engine-internal background
    #: tuning of a graph that missed the tuning DB).
    kind: str = "detect"
    #: The request's config/ranks were substituted by the autotuner.
    tuned: bool = False
    #: Fingerprint a tune job is planning for (in-flight dedup key).
    tune_fingerprint: str | None = None
    #: Drift-triggered tune jobs re-search even when a record exists.
    tune_force: bool = False
    result: LouvainResult | None = None
    error: str | None = None
    cache_hit: bool = False
    cache_key: str | None = None
    retries: int = 0
    resumed_from_checkpoint: bool = False
    checkpoint_dir: str | None = None
    ticket: int | None = None
    cancel_requested: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def response(self) -> DetectionResponse:
        return DetectionResponse(
            job_id=self.id,
            state=self.state,
            request=self.request,
            result=self.result,
            error=self.error,
            cache_hit=self.cache_hit,
            retries=self.retries,
            tuned=self.tuned,
            resumed_from_checkpoint=self.resumed_from_checkpoint,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
        )


class Engine:
    """Asynchronous detection service over a bounded worker pool.

    Parameters
    ----------
    workers:
        Maximum concurrently-running jobs (each runs its own simulated
        SPMD world of ``request.nranks`` rank threads).
    queue_depth:
        Admission bound on *pending* jobs; beyond it, :meth:`submit`
        raises :class:`AdmissionError` (backpressure, not buffering).
    scheduler:
        Pending-job queue to use instead of the default
        :class:`PriorityScheduler` — any admission-compatible subclass
        works; the multi-tenant serving tier passes its deficit-round-
        robin fair-share scheduler here.  When given, ``queue_depth``
        is ignored (the scheduler owns its own bound).
    store:
        Result cache; ``None`` disables caching entirely.
    workdir:
        Root for per-job checkpoint directories (auto-created temp dir
        when omitted).  Jobs with ``max_retries > 0`` checkpoint here so
        retries resume instead of restarting.
    checkpoint_every_iterations:
        Auto-checkpoint cadence for retryable jobs that did not choose
        their own (iterations between mid-phase checkpoints).
    tuning_db:
        Autotuning database (:class:`repro.tune.TuningDB`).  Requests
        submitted with ``tune="auto"`` consult it: an exact fingerprint
        hit (or a near neighbour in feature space) substitutes the
        planned config/rank count before the job is queued.
    tune_on_miss:
        When a ``tune="auto"`` request misses the DB, additionally
        queue a *background* tune job at rock-bottom priority so the
        next submission of that graph hits (requires ``tuning_db``).
    tune_settings:
        Search settings for background tune jobs
        (:class:`repro.tune.TunerSettings`); defaults to a small
        4-trial search so tuning never monopolises a worker.
    event_log:
        Structured event sink (:class:`repro.obs.EventLog`): job
        lifecycle, cache writes, SPMD run/phase records, and drift
        decisions all land there with correlated ids.  ``None`` (the
        default) emits nothing — observability is strictly passive.
    drift:
        Measured-vs-predicted drift monitor
        (:class:`repro.obs.DriftMonitor`): every fresh (non-cache-hit)
        detection is folded into its per-config-family EWMA; crossing
        the threshold fires a forced background re-tune (when a
        ``tuning_db`` is present) against the monitor's calibrated
        machine model.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        queue_depth: int = 64,
        scheduler: PriorityScheduler | None = None,
        store: ResultStore | None = None,
        workdir: str | os.PathLike | None = None,
        checkpoint_every_iterations: int = 4,
        tuning_db: TuningDB | None = None,
        tune_on_miss: bool = False,
        tune_settings: TunerSettings | None = None,
        event_log: EventLog | None = None,
        drift: DriftMonitor | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if tune_on_miss and tuning_db is None:
            raise ValueError("tune_on_miss requires a tuning_db")
        self.workers = workers
        self.store = store
        self.tuning_db = tuning_db
        self.tune_on_miss = tune_on_miss
        self.tune_settings = tune_settings
        self.event_log = event_log
        self.drift = drift
        self._features_cache: dict[str, object] = {}
        self._tuning_in_flight: set[str] = set()
        self.metrics = ServiceMetrics()
        self.scheduler = (
            scheduler
            if scheduler is not None
            else PriorityScheduler(max_pending=queue_depth)
        )
        self.checkpoint_every_iterations = checkpoint_every_iterations
        self._workdir = (
            os.fspath(workdir)
            if workdir is not None
            else tempfile.mkdtemp(prefix="repro-engine-")
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"engine-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, request: DetectionRequest) -> str:
        """Admit one job; returns its id immediately (non-blocking).

        Raises :class:`AdmissionError` when the engine is shut down or
        the pending queue is full — the caller owns the retry/shed
        decision.  A cacheable request whose result is already stored
        completes instantly as a cache hit without occupying a queue
        slot.
        """
        if self._shutdown:
            raise AdmissionError("closed", "engine is shut down")
        tuned = False
        if request.tune == "auto":
            request, tuned = self._planned_request(request)
        job = Job(id=self._allocate_id(), request=request, tuned=tuned)
        job.submitted_at = time.monotonic()
        self.metrics.inc("submitted")
        self._emit(
            "job_submitted",
            job_id=job.id,
            kind=job.kind,
            tenant=request.tenant,
            mode=request.mode,
            nranks=request.nranks,
            priority=request.priority,
            tuned=tuned,
        )

        if self.store is not None and request.cacheable:
            job.cache_key = request.cache_key()
            cached = self.store.get(job.cache_key)
            if cached is not None:
                self.metrics.inc("cache_hits")
                self._emit(
                    "cache_hit",
                    job_id=job.id,
                    tenant=request.tenant,
                    cache_key=job.cache_key,
                )
                job.cache_hit = True
                job.started_at = job.submitted_at
                with self._lock:
                    self._jobs[job.id] = job
                self._finish(job, JobState.DONE, result=cached)
                return job.id
            self.metrics.inc("cache_misses")

        if request.max_retries > 0 and request.checkpoint_dir is None:
            # Auto-checkpoint so a retry can resume instead of restart.
            job.checkpoint_dir = os.path.join(self._workdir, job.id)
        else:
            job.checkpoint_dir = request.checkpoint_dir

        with self._lock:
            self._jobs[job.id] = job
        try:
            job.ticket = self.scheduler.submit(job, priority=request.priority)
        except AdmissionError as exc:
            with self._lock:
                del self._jobs[job.id]
            self.metrics.inc("rejected")
            self.metrics.inc(f"rejected_{exc.reason}")
            self._emit(
                "job_rejected",
                job_id=job.id,
                tenant=request.tenant,
                reason=exc.reason,
            )
            raise
        self.metrics.set_gauge("queue_depth", self.scheduler.depth())
        return job.id

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Pending jobs cancel immediately; running jobs
        best-effort (the in-flight run completes, its result is
        discarded).  False if the job is already terminal."""
        job = self._job(job_id)
        if job.state is JobState.PENDING and job.ticket is not None:
            if self.scheduler.cancel(job.ticket):
                self.metrics.set_gauge("queue_depth", self.scheduler.depth())
                self._finish(
                    job, JobState.CANCELLED, error="cancelled while pending"
                )
                return True
        if not job.state.terminal:
            job.cancel_requested = True
            return True
        return False

    def status(self, job_id: str) -> JobState:
        return self._job(job_id).state

    def response(self, job_id: str) -> DetectionResponse:
        """Point-in-time view of a job (terminal or not)."""
        return self._job(job_id).response()

    def wait(
        self, job_id: str, timeout: float | None = None
    ) -> DetectionResponse:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        job = self._job(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state.value} after {timeout}s"
            )
        return job.response()

    def wait_all(
        self,
        job_ids: Sequence[str] | None = None,
        timeout: float | None = None,
    ) -> list[DetectionResponse]:
        """Wait for the given jobs (default: every submitted job).

        Responses come back in the order of ``job_ids`` (submission
        order when defaulted).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if job_ids is None:
            with self._lock:
                ids = list(self._jobs)
        else:
            ids = list(job_ids)
        out = []
        for job_id in ids:
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            out.append(self.wait(job_id, timeout=remaining))
        return out

    def detect(
        self, request: DetectionRequest, timeout: float | None = None
    ) -> DetectionResponse:
        """Synchronous convenience: submit and wait."""
        return self.wait(self.submit(request), timeout=timeout)

    def detect_at_resolutions(
        self,
        request: DetectionRequest,
        resolutions: Sequence[float],
        timeout: float | None = None,
    ) -> list[DetectionResponse]:
        """Zoom-level API: one graph, one cached job per resolution.

        Fans ``request`` out to ``len(resolutions)`` submissions that
        differ only in the resolution folded into their config — all
        share the input graph (and its fingerprint), so each level is a
        distinct result-store entry served bit-identically on repeat.
        Responses come back in the order of ``resolutions``.
        """
        if not resolutions:
            raise ValueError("resolutions must be non-empty")
        # Resolve the graph once so N cache-key computations and N runs
        # share one CSR instead of re-loading graph_path per level.
        if request.mode != "resume":
            request = dataclasses.replace(
                request, graph=request.resolved_graph(), graph_path=None
            )
        ids = [
            self.submit(
                dataclasses.replace(request, resolution=float(r))
            )
            for r in resolutions
        ]
        return self.wait_all(ids, timeout=timeout)

    def jobs(self) -> list[DetectionResponse]:
        """Snapshot of every job, in submission order."""
        with self._lock:
            return [j.response() for j in self._jobs.values()]

    def trace_report(self) -> TraceReport:
        """Aggregate modelled-time trace across every completed job.

        Concatenates the per-rank traces of every job that produced
        one; ``seconds_by_category``/``format`` then describe the whole
        served workload, extending the paper's §V-A breakdown from one
        run to the fleet.
        """
        ranks = []
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.result is not None and job.result.trace is not None:
                ranks.extend(job.result.trace.ranks)
        return TraceReport.merge(ranks)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop admitting work and (optionally) drain what is queued.

        ``cancel_pending=True`` cancels everything still queued;
        otherwise queued jobs are drained to completion first.  With
        ``wait=True`` blocks until the workers exit.
        """
        self._shutdown = True
        if cancel_pending:
            for job in self.scheduler.drain():
                self._finish(
                    job, JobState.CANCELLED, error="engine shut down"
                )
        self.scheduler.close()
        if wait:
            for t in self._threads:
                t.join()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"job-{self._next_id:04d}"

    def _job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def _finish(
        self,
        job: Job,
        state: JobState,
        *,
        result: LouvainResult | None = None,
        error: str | None = None,
    ) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = time.monotonic()
        self.metrics.inc(
            {
                JobState.DONE: "completed",
                JobState.FAILED: "failed",
                JobState.CANCELLED: "cancelled",
            }[state]
        )
        if state is JobState.DONE and result is not None:
            if job.started_at is not None:
                self.metrics.observe_run_latency(
                    job.finished_at - job.started_at
                )
            if not job.cache_hit:
                # A hit re-serves stored work; only fresh runs add
                # modelled time to the workload aggregate.
                self.metrics.observe_trace(result.trace, result.elapsed)
                measured = [
                    p.ghost_fraction
                    for p in result.phases
                    if p.ghost_fraction >= 0.0
                ]
                if measured:
                    self.metrics.set_gauge(
                        "last_ghost_fraction",
                        float(sum(measured) / len(measured)),
                    )
                self._emit_run_events(job, result)
                if self.drift is not None and job.kind == "detect":
                    self._observe_drift(job, result)
        self._emit(
            "job_finished",
            job_id=job.id,
            kind=job.kind,
            tenant=job.request.tenant,
            state=state.value,
            cache_hit=job.cache_hit,
            retries=job.retries,
            error=error,
            elapsed=result.elapsed if result is not None else None,
        )
        job.done.set()

    def _worker_loop(self) -> None:
        while True:
            job = self.scheduler.pop()
            if job is None:  # closed and drained
                return
            self.metrics.set_gauge("queue_depth", self.scheduler.depth())
            if job.cancel_requested:
                self._finish(
                    job, JobState.CANCELLED, error="cancelled while pending"
                )
                continue
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            self.metrics.observe_queue_latency(
                job.started_at - job.submitted_at
            )
            self._emit(
                "job_started",
                job_id=job.id,
                kind=job.kind,
                tenant=job.request.tenant,
                queue_seconds=job.started_at - job.submitted_at,
            )
            self.metrics.adjust_gauge("running", +1)
            try:
                self._run_job(job)
            finally:
                self.metrics.adjust_gauge("running", -1)

    # ------------------------------------------------------------------
    # Observability (see repro.obs) — all strictly passive
    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields: object) -> None:
        if self.event_log is not None:
            self.event_log.emit(event, **fields)

    def _emit_run_events(self, job: Job, result: LouvainResult) -> None:
        """Per-phase and collective records for one fresh run, derived
        from the result after the fact (the SPMD world is untouched)."""
        if self.event_log is None:
            return
        for p in result.phases:
            self._emit(
                "spmd_phase",
                job_id=job.id,
                tenant=job.request.tenant,
                phase=p.phase,
                iterations=p.num_iterations,
                modularity=p.modularity,
                num_vertices=p.num_vertices,
                num_edges=p.num_edges,
            )
        if result.trace is not None:
            self._emit(
                "spmd_trace",
                job_id=job.id,
                tenant=job.request.tenant,
                seconds_by_category=result.trace.seconds_by_category(),
                collectives=result.trace.collective_counts(),
                messages=result.trace.total_messages,
                bytes=result.trace.total_bytes,
            )

    def _observe_drift(self, job: Job, result: LouvainResult) -> None:
        """Close the tuning loop: measured seconds vs the cost model.

        Folds the job into the drift monitor's config-family EWMA,
        writes serving feedback onto the graph's tuning record, and —
        when the family crosses the drift threshold — fires a forced
        background re-tune against the calibrated machine model.
        Failures here must never fail the job: this path is passive.
        """
        assert self.drift is not None
        request = job.request
        try:
            from ..tune.costmodel import predict_cost
            from ..tune.features import compute_features
            from ..tune.space import Candidate

            g = request.resolved_graph()
            fingerprint = g.fingerprint()
            with self._lock:
                features = self._features_cache.get(fingerprint)
            if features is None:
                features = compute_features(g)
                with self._lock:
                    self._features_cache[fingerprint] = features
            machine = self.drift.machine or request.machine
            predicted = predict_cost(
                features,  # type: ignore[arg-type]
                Candidate(config=request.config, ranks=request.nranks),
                machine,
            ).seconds
            family = DriftMonitor.family_key(
                request.machine.name, request.config.label(), request.nranks
            )
            decision = self.drift.observe(family, predicted, result.elapsed)
            self.metrics.inc("drift_observations")
            self._emit(
                "drift_observed",
                job_id=job.id,
                tenant=request.tenant,
                family=family,
                predicted=predicted,
                measured=result.elapsed,
                ratio=decision.ratio,
                retune=decision.retune,
            )
            if self.tuning_db is not None:
                record = self.tuning_db.get(fingerprint)
                if record is not None:
                    self.tuning_db.put(
                        dataclasses.replace(
                            record,
                            served_jobs=record.served_jobs + 1,
                            served_seconds_total=(
                                record.served_seconds_total + result.elapsed
                            ),
                            drift_ratio=decision.ratio,
                        )
                    )
            if decision.retune:
                self.metrics.inc("drift_retunes")
                calibrated = self.drift.machine
                self._emit(
                    "drift_retune",
                    job_id=job.id,
                    tenant=request.tenant,
                    family=family,
                    calibration=decision.calibration,
                    machine=calibrated.name if calibrated else machine.name,
                )
                if self.tuning_db is not None:
                    self._spawn_tune_job(request, fingerprint, force=True)
        except Exception as exc:
            self.metrics.inc("drift_errors")
            self._emit("drift_error", job_id=job.id, error=repr(exc))

    # ------------------------------------------------------------------
    # Autotuning (see repro.tune)
    # ------------------------------------------------------------------
    def _planned_request(
        self, request: DetectionRequest
    ) -> tuple[DetectionRequest, bool]:
        """Resolve a ``tune="auto"`` request against the tuning DB.

        Exact fingerprint hit, or nearest tuned neighbour in feature
        space, substitutes the planned (config, ranks).  A miss leaves
        the request untouched and — with ``tune_on_miss`` — queues a
        background tune job so the *next* submission hits.
        """
        if self.tuning_db is None:
            self.metrics.inc("tune_unavailable")
            return request, False
        g = request.resolved_graph()
        fingerprint = g.fingerprint()
        record = self.tuning_db.get(fingerprint)
        if record is None:
            from ..tune.features import compute_features

            near = self.tuning_db.nearest(compute_features(g))
            if near is not None:
                record = near.record
                self.metrics.inc("tune_nearest_hits")
        if record is not None:
            self.metrics.inc("tune_hits")
            planned = dataclasses.replace(
                request,
                graph=g,
                graph_path=None,
                config=record.config,
                nranks=record.ranks,
                tune="off",
            )
            return planned, True
        self.metrics.inc("tune_misses")
        if self.tune_on_miss:
            self._spawn_tune_job(request, fingerprint)
        return request, False

    def _spawn_tune_job(
        self, request: DetectionRequest, fingerprint: str, force: bool = False
    ) -> None:
        """Queue one background tune job per not-yet-tuned fingerprint.

        ``force=True`` (the drift-retune path) re-searches even though a
        record exists, using the drift monitor's calibrated machine.
        """
        with self._lock:
            if fingerprint in self._tuning_in_flight:
                return
            self._tuning_in_flight.add(fingerprint)
        job = Job(
            id=self._allocate_id(),
            request=request,
            kind="tune",
            tune_fingerprint=fingerprint,
            tune_force=force,
        )
        job.submitted_at = time.monotonic()
        with self._lock:
            self._jobs[job.id] = job
        try:
            job.ticket = self.scheduler.submit(
                job, priority=TUNE_JOB_PRIORITY
            )
        except AdmissionError:
            # Tuning is opportunistic: under backpressure it is shed
            # first, and the fingerprint may be retried later.
            with self._lock:
                del self._jobs[job.id]
                self._tuning_in_flight.discard(fingerprint)
            self.metrics.inc("tune_jobs_shed")
            return
        self.metrics.inc("tune_jobs")
        self._emit(
            "tune_spawned",
            job_id=job.id,
            tenant=request.tenant,
            fingerprint=fingerprint,
            forced=force,
        )

    def _run_tune_job(self, job: Job) -> None:
        from ..tune.search import tune_graph

        assert self.tuning_db is not None  # guaranteed by _spawn_tune_job
        try:
            settings = self.tune_settings or TunerSettings(
                trials=4, rung_phase_caps=(1,)
            )
            if job.tune_force and self.drift is not None:
                # Drift-triggered: search against the calibrated model so
                # the new plan's predictions match observed reality.
                calibrated = self.drift.machine
                if calibrated is not None:
                    settings = dataclasses.replace(
                        settings, machine=calibrated
                    )
            record, cached = tune_graph(
                job.request.resolved_graph(),
                self.tuning_db,
                settings=settings,
                force=job.tune_force,
            )
            if not cached:
                self.metrics.inc("background_tunes")
                self.metrics.observe_trace(
                    _tune_trace(record), record.tune_seconds
                )
            self._finish(job, JobState.DONE)
        except Exception as exc:
            self._finish(job, JobState.FAILED, error=repr(exc))
        finally:
            if job.tune_fingerprint is not None:
                with self._lock:
                    self._tuning_in_flight.discard(job.tune_fingerprint)

    def _run_job(self, job: Job) -> None:
        if job.kind == "tune":
            self._run_tune_job(job)
            return
        request = job.request
        deadline = (
            job.submitted_at + request.timeout
            if request.timeout is not None
            else None
        )
        fault_plan: object = request.fault_plan
        resume = request.mode == "resume"
        while True:
            try:
                with scoped(
                    self.event_log,
                    job_id=job.id,
                    tenant=request.tenant,
                ):
                    result = execute_request(
                        request,
                        checkpoint_dir=job.checkpoint_dir,
                        checkpoint_every_iterations=(
                            request.checkpoint_every_iterations
                            or self.checkpoint_every_iterations
                        ),
                        resume=resume,
                        fault_plan=fault_plan,
                    )
            except RETRYABLE as exc:
                job.retries += 1
                if job.retries > request.max_retries:
                    self._finish(
                        job,
                        JobState.FAILED,
                        error=f"failed after {job.retries - 1} retr"
                        f"{'y' if job.retries == 2 else 'ies'}: {exc!r}",
                    )
                    return
                if deadline is not None and time.monotonic() >= deadline:
                    self._finish(
                        job,
                        JobState.FAILED,
                        error=f"deadline exceeded after {exc!r}",
                    )
                    return
                self.metrics.inc("retries")
                self._emit(
                    "job_retry",
                    job_id=job.id,
                    tenant=request.tenant,
                    attempt=job.retries,
                    error=repr(exc),
                )
                # An injected fault fired; the retry models the post-crash
                # world where the failure condition is gone.
                fault_plan = None
                resume = self._can_resume(job)
                if resume:
                    job.resumed_from_checkpoint = True
                continue
            except Exception as exc:  # non-retryable: bad request, bug, ...
                self._finish(job, JobState.FAILED, error=repr(exc))
                return
            break
        if job.cancel_requested:
            self._finish(
                job,
                JobState.CANCELLED,
                error="cancelled while running; result discarded",
            )
            return
        if (
            self.store is not None
            and request.cacheable
            and job.cache_key is not None
        ):
            self.store.put(job.cache_key, result)
            self._emit(
                "cache_write",
                job_id=job.id,
                tenant=request.tenant,
                cache_key=job.cache_key,
            )
        self._finish(job, JobState.DONE, result=result)

    def _can_resume(self, job: Job) -> bool:
        """A retry resumes iff a valid checkpoint of this job exists."""
        if job.checkpoint_dir is None:
            return False
        from ..resilience.checkpoint import latest_valid_manifest

        return (
            latest_valid_manifest(
                job.checkpoint_dir, expect_size=job.request.nranks
            )
            is not None
        )


def _tune_trace(record: TuningRecord) -> TraceReport:
    """The modelled cost of a tuning search as a one-rank ``tune`` trace,
    so the engine's workload aggregate accounts for search overhead the
    same way it accounts for checkpointing or service overhead."""
    rt = RankTrace(rank=0)
    rt.charge("tune", record.tune_seconds)
    return TraceReport.merge([rt])


def detect(request: DetectionRequest) -> DetectionResponse:
    """One-shot inline detection through the unified request API.

    No queue, no worker pool, no cache — the request executes on the
    calling thread via the same :func:`execute_request` path the engine
    uses.  This is what the deprecated ``run_louvain`` /
    ``incremental_louvain`` wrappers delegate to; prefer an
    :class:`Engine` when serving more than one job.
    """
    response = DetectionResponse(
        job_id="inline",
        state=JobState.PENDING,
        request=request,
        submitted_at=time.monotonic(),
    )
    response.started_at = response.submitted_at
    response.state = JobState.RUNNING
    try:
        response.result = execute_request(request)
        response.state = JobState.DONE
    except Exception as exc:
        response.error = repr(exc)
        response.state = JobState.FAILED
        response.finished_at = time.monotonic()
        raise
    response.finished_at = time.monotonic()
    return response
