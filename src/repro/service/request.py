"""Typed request/response pair: the one way into the detection engine.

A :class:`DetectionRequest` captures *everything* a detection needs —
input graph (in memory or on disk), algorithm config, world size,
machine model, service-level knobs (priority, timeout, retries) — so
the three historical entry points (``run_louvain``,
``distributed_louvain(resume=...)``, ``incremental_louvain``) collapse
into one typed surface the scheduler can reason about.  A
:class:`DetectionResponse` is what comes back: terminal job state, the
result (or the failure), and the service-side timings.

Requests are content-addressable: :meth:`DetectionRequest.cache_key`
combines the graph fingerprint with the config's canonical hash so the
result store can serve a repeated submission without recomputing it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.config import LouvainConfig
from ..core.result import LouvainResult
from ..graph.csr import CSRGraph
from ..runtime.perfmodel import CORI_HASWELL, MachineModel

#: Detection modes a request may ask for.
MODES = ("batch", "incremental", "resume")

#: Tuning modes: "off" runs the request's own config verbatim; "auto"
#: lets an engine with a tuning DB substitute the planned
#: (config, ranks) for this graph (see :mod:`repro.tune`).
TUNE_MODES = ("off", "auto")


class JobState(enum.Enum):
    """Lifecycle of one job inside the engine.

    ``PENDING -> RUNNING -> DONE | FAILED | CANCELLED``; a PENDING job
    may also go straight to DONE (cache hit) or CANCELLED.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class DetectionRequest:
    """One community-detection job, fully described.

    Exactly one of ``graph`` / ``graph_path`` must be set, except in
    ``mode="resume"`` where the graph slice comes from the checkpoint
    and both may be omitted.

    Service-level fields (``priority``, ``timeout``, ``max_retries``,
    ``use_cache``, ``tag``) steer the engine and never affect the
    detection outcome, so they are outside :meth:`cache_key`.
    """

    #: In-memory input graph (CSR).
    graph: CSRGraph | None = None
    #: Or: path to a binary edge-list file, loaded at execution time.
    graph_path: str | None = None
    config: LouvainConfig = field(default_factory=LouvainConfig)
    nranks: int = 4
    machine: MachineModel = CORI_HASWELL
    partition: str = "even_edge"
    #: "batch" (one-shot), "incremental" (warm-started re-detection from
    #: ``previous_assignment``), or "resume" (continue from the latest
    #: valid checkpoint in ``checkpoint_dir``).
    mode: str = "batch"
    #: Incremental mode: community per old vertex from the previous run.
    previous_assignment: np.ndarray | None = None
    #: Incremental mode: vertex ids to reset to singletons (typically
    #: ``EdgeChurn.touched_vertices()``).
    reset_touched: np.ndarray | None = None
    #: Service-level priority: higher runs first (FIFO within a level).
    priority: int = 0
    #: Wall-clock deadline in seconds for the whole job (attempts are
    #: not retried past it); also caps each blocking runtime op.
    timeout: float | None = None
    #: Transparent retries on rank failure.  Each attempt after the
    #: first resumes from the job's latest valid checkpoint when one
    #: exists (the engine auto-assigns a checkpoint directory).
    max_retries: int = 1
    #: Explicit checkpoint directory (required for ``mode="resume"``;
    #: otherwise optional — the engine manages a per-job one).
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    checkpoint_every_iterations: int | None = None
    #: Deterministic fault-injection plan (tests / chaos drills); makes
    #: the request uncacheable.
    fault_plan: Any = None
    #: Serve (and populate) the engine's result store for this request.
    use_cache: bool = True
    #: ``"auto"``: ask the engine to consult its tuning database and
    #: run the *planned* config/rank count for this graph instead of
    #: the ones spelled here (exact fingerprint hit or near neighbour;
    #: on a miss the request runs as written and the engine may launch
    #: a background tune job).  ``"off"``: run exactly what was asked.
    tune: str = "off"
    #: Zoom level of this detection: the resolution parameter gamma,
    #: folded into the effective ``config`` at construction so each
    #: resolution is a distinct cache key / result-store entry.  ``None``
    #: inherits whatever ``config.resolution`` says (so a tuner-planned
    #: or hand-built config is never silently reset to 1.0).
    resolution: float | None = None
    #: Post-phase refinement override ("none" / "leiden"), folded into
    #: the effective ``config`` exactly like ``resolution``.
    refine: str | None = None
    #: Owning tenant in a multi-tenant serving tier (``repro.serving``):
    #: fair-share admission groups jobs by this name.  Service-level
    #: only — never affects the detection outcome or the cache key, so
    #: two tenants asking for the same detection share one cache entry.
    tenant: str = ""
    #: Free-form client label carried through to the response.
    tag: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        have_graph = self.graph is not None
        have_path = self.graph_path is not None
        if self.mode == "resume":
            if self.checkpoint_dir is None:
                raise ValueError('mode="resume" requires checkpoint_dir')
            if have_graph or have_path:
                raise ValueError(
                    'mode="resume" takes its graph from the checkpoint; '
                    "do not pass graph/graph_path"
                )
        elif have_graph == have_path:
            raise ValueError(
                "exactly one of graph / graph_path must be set "
                f"(got graph={'yes' if have_graph else 'no'}, "
                f"graph_path={'yes' if have_path else 'no'})"
            )
        if self.mode == "incremental" and self.previous_assignment is None:
            raise ValueError(
                'mode="incremental" requires previous_assignment'
            )
        if self.tune not in TUNE_MODES:
            raise ValueError(
                f"tune must be one of {TUNE_MODES}, got {self.tune!r}"
            )
        if self.tune == "auto" and self.mode == "resume":
            raise ValueError(
                'tune="auto" needs an input graph to plan for; '
                'mode="resume" carries none'
            )
        if self.resolution is not None and self.resolution <= 0.0:
            raise ValueError(
                f"resolution must be > 0, got {self.resolution}"
            )
        if self.refine is not None and self.refine not in ("none", "leiden"):
            raise ValueError(
                f"refine must be 'none' or 'leiden', got {self.refine!r}"
            )
        # Fold the request-level zoom knobs into the effective config so
        # everything downstream — cache key, checkpoint manifest, the
        # run itself — sees one consistent LouvainConfig.
        overrides: dict[str, Any] = {}
        if (
            self.resolution is not None
            and self.resolution != self.config.resolution
        ):
            overrides["resolution"] = self.resolution
        if self.refine is not None and self.refine != self.config.refine:
            overrides["refine"] = self.refine
        if overrides:
            object.__setattr__(
                self, "config", dataclasses.replace(self.config, **overrides)
            )

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    @property
    def cacheable(self) -> bool:
        """Whether this request is deterministic and content-addressable.

        Resume requests depend on whatever checkpoint happens to be on
        disk, and fault-injected runs are chaos drills — neither may be
        served from (or stored into) the result cache.
        """
        return (
            self.use_cache
            and self.mode != "resume"
            and self.fault_plan is None
        )

    def cache_key(self) -> str | None:
        """Content hash of (input graph, config, execution shape).

        ``None`` for uncacheable requests.  The graph contributes its
        CSR fingerprint (``graph_path`` inputs are fingerprinted after
        loading, so the same bytes hash equal either way); the config
        contributes :meth:`LouvainConfig.cache_key`; ``nranks``,
        ``partition``, and the machine model are included because they
        change the result's assignment/trace/elapsed; incremental
        requests mix in the warm-start labels.
        """
        if not self.cacheable:
            return None
        g = self.resolved_graph()
        h = hashlib.sha256()
        h.update(g.fingerprint().encode())
        h.update(self.config.cache_key().encode())
        h.update(f"|{self.nranks}|{self.partition}|{self.mode}|".encode())
        h.update(
            json.dumps(
                dataclasses.asdict(self.machine), sort_keys=True
            ).encode()
        )
        if self.mode == "incremental":
            h.update(
                np.asarray(self.previous_assignment, dtype=np.int64).tobytes()
            )
            if self.reset_touched is not None:
                h.update(
                    np.asarray(self.reset_touched, dtype=np.int64).tobytes()
                )
        return h.hexdigest()

    def resolved_graph(self) -> CSRGraph:
        """The input CSR graph, loading ``graph_path`` if necessary."""
        if self.graph is not None:
            return self.graph
        if self.graph_path is None:
            raise ValueError("resume request carries no input graph")
        from ..graph.binio import read_edgelist

        g = read_edgelist(self.graph_path).to_csr()
        # Cache the load on the (frozen) request so repeated key
        # computations and the execution itself read the file once.
        object.__setattr__(self, "graph", g)
        return g

    def describe(self) -> str:
        src = self.graph_path or (
            f"<in-memory {self.graph.num_vertices}v>" if self.graph is not None
            else "<checkpoint>"
        )
        return (
            f"{self.config.label()} x{self.nranks} on {src} "
            f"[mode={self.mode} prio={self.priority}"
            + (f" tag={self.tag}" if self.tag else "")
            + "]"
        )


@dataclass
class DetectionResponse:
    """Terminal view of one job, handed back by the engine."""

    job_id: str
    state: JobState
    request: DetectionRequest
    result: LouvainResult | None = None
    #: Failure description (FAILED) or cancellation note (CANCELLED).
    error: str | None = None
    #: Served from the result store without recomputation.
    cache_hit: bool = False
    #: Completed retry attempts (0 = succeeded first try).
    retries: int = 0
    #: The config/ranks that ran were planned by the autotuner (the
    #: ``request`` field reflects the substituted plan).
    tuned: bool = False
    #: Whether any retry resumed from a checkpoint (vs restarting).
    resumed_from_checkpoint: bool = False
    #: Wall-clock timestamps (``time.monotonic`` domain).
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def queue_seconds(self) -> float | None:
        """Submit -> start latency (None if never started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        """Start -> done latency (None if never started/finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> str:
        parts = [f"job {self.job_id}: {self.state.value}"]
        if self.cache_hit:
            parts.append("(cache hit)")
        if self.tuned:
            parts.append("(tuned)")
        if self.retries:
            parts.append(
                f"(retried x{self.retries}"
                + (", resumed from checkpoint" if self.resumed_from_checkpoint
                   else ", restarted")
                + ")"
            )
        cfg = self.request.config
        if cfg.resolution != 1.0:
            parts.append(f"(resolution={cfg.resolution:g})")
        if cfg.refine != "none":
            parts.append(f"(refine={cfg.refine})")
        if self.result is not None:
            parts.append(self.result.summary())
        if self.error:
            parts.append(f"error: {self.error}")
        return " ".join(parts)
