"""Admission-controlled priority queue feeding the engine's worker pool.

The scheduler is the backpressure point of the service: it holds at
most ``max_pending`` jobs, orders them by (priority desc, submission
order asc) — so equal-priority jobs are served fairly, FIFO — and
*rejects* submissions beyond capacity with a reason string instead of
queueing unboundedly (:class:`AdmissionError`).  Rejecting at the edge
is what lets a loaded service stay within its latency envelope; callers
see the reason and can retry with backoff or shed load themselves.

Thread-safe; producers (``Engine.submit``) and consumers (worker
threads) may call concurrently.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any


class AdmissionError(RuntimeError):
    """A submission was rejected at the door (never enqueued).

    ``reason`` is a machine-readable slug (``"queue-full"``,
    ``"closed"``); the message carries the human-readable detail.
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(detail)
        self.reason = reason


class PriorityScheduler:
    """Bounded priority queue with admission control.

    Parameters
    ----------
    max_pending:
        Queue capacity.  A submission arriving when ``depth() ==
        max_pending`` raises :class:`AdmissionError` with reason
        ``"queue-full"``.
    """

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._heap: list[tuple[int, int, Any]] = []
        self._cancelled: set[int] = set()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, item: Any, priority: int = 0) -> int:
        """Enqueue ``item``; returns its admission ticket (a sequence id).

        Raises :class:`AdmissionError` when the queue is full or the
        scheduler is closed.
        """
        with self._lock:
            if self._closed:
                raise AdmissionError(
                    "closed", "scheduler is shut down; no new jobs accepted"
                )
            if self._live_depth() >= self.max_pending:
                raise AdmissionError(
                    "queue-full",
                    f"admission queue is full ({self.max_pending} pending); "
                    "retry later or raise max_pending",
                )
            ticket = next(self._seq)
            # Min-heap: negate priority so higher priority pops first;
            # the ticket breaks ties in submission order (FIFO fairness).
            heapq.heappush(self._heap, (-priority, ticket, item))
            self._available.notify()
            return ticket

    def cancel(self, ticket: int) -> bool:
        """Remove a pending entry (lazy deletion); False if already gone."""
        with self._lock:
            live = {t for _, t, _ in self._heap} - self._cancelled
            if ticket not in live:
                return False
            self._cancelled.add(ticket)
            return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def pop(self, timeout: float | None = None) -> Any | None:
        """Highest-priority pending item; blocks until one is available.

        Returns ``None`` when the scheduler is closed and drained, or
        when ``timeout`` (seconds) expires with nothing available.
        """
        with self._lock:
            while True:
                entry = self._pop_live_locked()
                if entry is not None:
                    return entry
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None

    def _pop_live_locked(self) -> Any | None:
        while self._heap:
            _, ticket, item = heapq.heappop(self._heap)
            if ticket in self._cancelled:
                self._cancelled.discard(ticket)
                continue
            return item
        return None

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def _live_depth(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def depth(self) -> int:
        """Pending (admitted, not yet popped, not cancelled) jobs."""
        with self._lock:
            return self._live_depth()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admitting; wake every blocked consumer.

        Already-admitted jobs remain poppable so a graceful shutdown
        can drain them.
        """
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def drain(self) -> list[Any]:
        """Remove and return every pending item (e.g. to cancel on stop)."""
        with self._lock:
            out = []
            while True:
                entry = self._pop_live_locked()
                if entry is None:
                    break
                out.append(entry)
            return out
