"""Detection service: async jobs, result caching, one typed request API.

The serving tier over the distributed Louvain library.  One way in —
:class:`DetectionRequest` — and three ways to run it:

* :func:`detect` — inline, on the calling thread (the one-shot path the
  deprecated legacy wrappers delegate to);
* :class:`Engine` — asynchronous: a bounded worker pool multiplexes
  many jobs, with priority scheduling, admission control and
  backpressure (:class:`AdmissionError`), per-job retry-with-resume on
  rank failure (PR-1 checkpoints), content-addressed result caching
  (:class:`ResultStore`), and full observability
  (:class:`ServiceMetrics`);
* ``repro-louvain serve / submit`` — the same engine from the command
  line.

Quickstart::

    from repro.service import DetectionRequest, Engine, ResultStore

    with Engine(workers=4, store=ResultStore(capacity=64)) as engine:
        job = engine.submit(DetectionRequest(graph=g, nranks=8))
        response = engine.wait(job)
        print(response.summary())

The service layer is an extension beyond the paper (its §V runs are
one-shot batch jobs) — see ``docs/PAPER_MAPPING.md``.
"""

from .engine import Engine, Job, detect, execute_request
from .metrics import LatencyHistogram, ServiceMetrics
from .request import (
    MODES,
    DetectionRequest,
    DetectionResponse,
    JobState,
)
from .scheduler import AdmissionError, PriorityScheduler
from .store import ResultStore

__all__ = [
    "AdmissionError",
    "DetectionRequest",
    "DetectionResponse",
    "Engine",
    "Job",
    "JobState",
    "LatencyHistogram",
    "MODES",
    "PriorityScheduler",
    "ResultStore",
    "ServiceMetrics",
    "detect",
    "execute_request",
]
