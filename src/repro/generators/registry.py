"""Named stand-ins for the paper's test graphs (Tables I, II, V).

The paper's inputs range from 42.7M to 3.3B edges — far beyond what a
simulated single-machine runtime can hold.  Each entry here generates a
*scaled-down synthetic graph of the same structure class* (see DESIGN.md
§2): what drives the paper's findings is structure (degree skew,
community strength, diameter class), not absolute size, so stand-ins
preserve the class and the relative size ordering of Table II.

``make_graph("soc-friendster", scale="small")`` is the single entry
point benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph.csr import CSRGraph
from ..graph.edgelist import EdgeList
from .lfr import generate_lfr
from .meshes import generate_banded, generate_grid3d
from .rmat import generate_rmat
from .smallworld import generate_smallworld
from .ssca2 import generate_ssca2
from .webgraph import generate_webgraph

#: Size multiplier per named scale.  "small" keeps full variant sweeps
#: fast; "medium" is for single-configuration runs.
SCALES: dict[str, float] = {"tiny": 0.4, "small": 1.0, "medium": 3.0}


@dataclass(frozen=True)
class DatasetSpec:
    """One paper input and its synthetic stand-in."""

    name: str
    structure: str
    paper_vertices: str
    paper_edges: str
    #: Numeric paper edge count, used to derive the model scale factor.
    paper_edge_count: float
    paper_modularity: float
    description: str
    factory: Callable[[float, int], EdgeList]

    def generate(self, scale: str = "small", seed: int = 0) -> EdgeList:
        if scale not in SCALES:
            raise KeyError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            )
        return self.factory(SCALES[scale], seed)

    def generate_csr(self, scale: str = "small", seed: int = 0) -> CSRGraph:
        return self.generate(scale, seed).to_csr()

    def edge_scale_factor(self, g: CSRGraph) -> float:
        """How many real edges one stand-in edge represents.

        Feed this to :meth:`repro.runtime.MachineModel.scaled` so the
        performance model keeps the full-size input's compute/comm
        balance (see DESIGN.md §2).
        """
        if g.num_edges == 0:
            raise ValueError("stand-in graph has no edges")
        return self.paper_edge_count / g.num_edges


def _mesh(nx: int, ny: int, nz: int, jitter: float = 0.0):
    def make(s: float, seed: int) -> EdgeList:
        f = s ** (1.0 / 3.0)
        return generate_grid3d(
            max(2, round(nx * f)),
            max(2, round(ny * f)),
            max(2, round(nz * f)),
            connectivity=18,
            jitter_fraction=jitter,
            seed=seed,
        )

    return make


def _banded(n: int, bandwidth: int, density: float):
    def make(s: float, seed: int) -> EdgeList:
        return generate_banded(
            round(n * s), bandwidth=bandwidth, density=density, seed=seed
        )

    return make


def _rmat(scale0: int, edge_factor: float, a: float, b: float, c: float):
    def make(s: float, seed: int) -> EdgeList:
        extra = 1 if s >= 2.0 else 0
        return generate_rmat(
            scale0 + extra, edge_factor, a=a, b=b, c=c, seed=seed
        )

    return make


def _web(n: int, host: int, inter: float, intra_deg: float = 8.0):
    def make(s: float, seed: int) -> EdgeList:
        return generate_webgraph(
            round(n * s),
            mean_host_size=host,
            inter_fraction=inter,
            intra_degree=intra_deg,
            seed=seed,
        ).edges

    return make


def _lfr(n: int, mu: float, max_degree: int = 50, avg_degree: float = 16.0):
    def make(s: float, seed: int) -> EdgeList:
        return generate_lfr(
            round(n * s),
            mu=mu,
            avg_degree=avg_degree,
            max_degree=max_degree,
            max_community=80,
            seed=seed,
        ).edges

    return make


def _smallworld(n: int, neighbors: int, rewire: float):
    def make(s: float, seed: int) -> EdgeList:
        return generate_smallworld(
            round(n * s), neighbors=neighbors,
            rewire_probability=rewire, seed=seed,
        )

    return make


def _ssca2(n: int, max_clique: int, inter: float):
    def make(s: float, seed: int) -> EdgeList:
        return generate_ssca2(
            round(n * s),
            max_clique_size=max_clique,
            inter_clique_fraction=inter,
            seed=seed,
        ).edges

    return make


#: Table II graphs, ascending by paper edge count, plus the two Table I
#: inputs (CNR, Channel).  Paper modularity = Grappolo single-thread.
DATASETS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


_register(DatasetSpec(
    name="cnr",
    structure="small-world",
    paper_vertices="325K", paper_edges="3.2M", paper_edge_count=3.2e6, paper_modularity=0.913,
    description="CNR web crawl (Table I); small-world characteristics",
    factory=_smallworld(2400, 8, 0.02),
))
_register(DatasetSpec(
    name="channel",
    structure="mesh",
    paper_vertices="4.8M", paper_edges="42.7M", paper_edge_count=42.7e6, paper_modularity=0.943,
    description="channel-flow mesh (Tables I-II); banded structure",
    factory=_banded(2000, 6, 0.8),
))
_register(DatasetSpec(
    name="com-orkut",
    structure="social",
    paper_vertices="3M", paper_edges="117.1M", paper_edge_count=117.1e6, paper_modularity=0.472,
    description="Orkut social network; heavy-tailed, weak communities",
    factory=_lfr(2000, 0.45, max_degree=80),
))
_register(DatasetSpec(
    name="soc-sinaweibo",
    structure="social",
    paper_vertices="58.6M", paper_edges="261.3M", paper_edge_count=261.3e6, paper_modularity=0.482,
    description="Sina Weibo follower graph; extreme hub skew",
    factory=_lfr(2200, 0.44, max_degree=120, avg_degree=12.0),
))
_register(DatasetSpec(
    name="twitter-2010",
    structure="social",
    paper_vertices="21.2M", paper_edges="265M", paper_edge_count=265e6, paper_modularity=0.478,
    description="Twitter follower graph; hub-dominated",
    factory=_lfr(2400, 0.45, max_degree=150, avg_degree=14.0),
))
_register(DatasetSpec(
    name="nlpkkt240",
    structure="mesh",
    paper_vertices="27.9M", paper_edges="401.2M", paper_edge_count=401.2e6, paper_modularity=0.939,
    description="KKT optimisation matrix; 3-D mesh-like bands (Fig. 5)",
    factory=_banded(3000, 8, 0.7),
))
_register(DatasetSpec(
    name="web-wiki-en-2013",
    structure="web",
    paper_vertices="27.1M", paper_edges="601M", paper_edge_count=601e6, paper_modularity=0.671,
    description="English Wikipedia links; moderate community strength",
    factory=_web(3200, 25, 0.45),
))
_register(DatasetSpec(
    name="arabic-2005",
    structure="web",
    paper_vertices="22.7M", paper_edges="640M", paper_edge_count=640e6, paper_modularity=0.989,
    description="Arabic web crawl; near-perfect host communities",
    factory=_web(3600, 30, 0.004),
))
_register(DatasetSpec(
    name="webbase-2001",
    structure="web",
    paper_vertices="118M", paper_edges="1B", paper_edge_count=1.0e9, paper_modularity=0.983,
    description="WebBase crawl; strong host communities",
    factory=_web(4200, 30, 0.008),
))
_register(DatasetSpec(
    name="web-cc12-PayLevelDomain",
    structure="web",
    paper_vertices="42.8M", paper_edges="1.2B", paper_edge_count=1.2e9, paper_modularity=0.687,
    description="Common Crawl pay-level-domain graph (Fig. 6)",
    factory=_web(4800, 35, 0.42),
))
_register(DatasetSpec(
    name="soc-friendster",
    structure="social",
    paper_vertices="65.6M", paper_edges="1.8B", paper_edge_count=1.8e9, paper_modularity=0.624,
    description="Friendster communities; the paper's flagship input "
                "(Tables III, VI)",
    factory=_lfr(5200, 0.36, max_degree=90),
))
_register(DatasetSpec(
    name="sk-2005",
    structure="web",
    paper_vertices="50.6M", paper_edges="1.9B", paper_edge_count=1.9e9, paper_modularity=0.971,
    description="Slovakian web crawl; few iterations per phase",
    factory=_web(5600, 40, 0.006),
))
_register(DatasetSpec(
    name="uk-2007",
    structure="web",
    paper_vertices="105.8M", paper_edges="3.3B", paper_edge_count=3.3e9, paper_modularity=0.972,
    description="UK web crawl; the paper's largest input",
    factory=_web(6400, 35, 0.007),
))
_register(DatasetSpec(
    name="ssca2",
    structure="clique",
    paper_vertices="5M-150M", paper_edges="334M-6.9B", paper_edge_count=334e6,
    paper_modularity=0.99998,
    description="SSCA#2 weak-scaling inputs (Table V)",
    factory=_ssca2(3000, 20, 0.005),
))

#: The 12 graphs of Table II in the paper's (edge-ascending) order.
TABLE2_NAMES: tuple[str, ...] = (
    "channel",
    "com-orkut",
    "soc-sinaweibo",
    "twitter-2010",
    "nlpkkt240",
    "web-wiki-en-2013",
    "arabic-2005",
    "webbase-2001",
    "web-cc12-PayLevelDomain",
    "soc-friendster",
    "sk-2005",
    "uk-2007",
)


def make_graph(name: str, scale: str = "small", seed: int = 0) -> CSRGraph:
    """Generate the stand-in for paper input ``name`` as a CSR graph."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.generate_csr(scale=scale, seed=seed)


def dataset(name: str) -> DatasetSpec:
    """Spec lookup with a helpful error."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
