"""LFR benchmark graphs with ground-truth communities (paper §V-D).

Lancichinetti-Fortunato-Radicchi graphs have power-law degree and
community-size distributions and a *mixing parameter* ``mu``: each
vertex spends a fraction ``mu`` of its degree on inter-community edges.
The paper validates output quality against LFR ground truth (Table VII).

This is a practical reimplementation of the generative model:

1. degrees ~ bounded power law (exponent ``tau1``);
2. community sizes ~ bounded power law (exponent ``tau2``), covering all
   vertices;
3. vertices are placed into communities large enough to host their
   intra-degree ``(1 - mu) * k``;
4. intra-community edges via a per-community configuration-model pairing;
5. inter-community edges via a global configuration-model pairing with
   same-community rejection.

Pairings are best-effort (duplicate/loop rejections may drop a few
stubs), which matches common LFR implementations in spirit; the realised
``mu`` is within a few percent of the requested one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edgelist import EdgeList


@dataclass(frozen=True)
class LFRGraph:
    """Generated LFR graph and its ground truth."""

    edges: EdgeList
    community_of: np.ndarray
    mu_realized: float

    @property
    def num_communities(self) -> int:
        return int(self.community_of.max()) + 1 if len(self.community_of) else 0


def _bounded_powerlaw(
    rng: np.random.Generator,
    count: int,
    exponent: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Sample ``count`` integers in [lo, hi] from a power law x^-exponent."""
    if lo > hi:
        raise ValueError(f"lo={lo} > hi={hi}")
    values = np.arange(lo, hi + 1, dtype=np.float64)
    probs = values ** (-exponent)
    probs /= probs.sum()
    return rng.choice(np.arange(lo, hi + 1), size=count, p=probs).astype(
        np.int64
    )


def _pair_stubs(
    rng: np.random.Generator, stubs: np.ndarray, reject
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly pair stubs, reshuffling rejected pairs a few rounds.

    ``reject(a, b)`` marks invalid pairs (loops, same-community for the
    inter pool).  Leftovers after the retry budget are dropped — the
    best-effort behaviour standard LFR implementations share.
    """
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    stubs = stubs.copy()
    for _ in range(5):
        if len(stubs) < 2:
            break
        rng.shuffle(stubs)
        if len(stubs) % 2:
            stubs, odd = stubs[:-1], stubs[-1:]
        else:
            odd = stubs[:0]
        a, b = stubs[0::2], stubs[1::2]
        bad = reject(a, b)
        us.append(a[~bad])
        vs.append(b[~bad])
        stubs = np.concatenate([a[bad], b[bad], odd])
    if us:
        return np.concatenate(us), np.concatenate(vs)
    return np.empty(0, np.int64), np.empty(0, np.int64)


def generate_lfr(
    num_vertices: int,
    avg_degree: float = 15.0,
    max_degree: int = 50,
    mu: float = 0.1,
    tau1: float = 2.5,
    tau2: float = 1.5,
    min_community: int = 10,
    max_community: int = 50,
    seed: int = 0,
) -> LFRGraph:
    """Generate an LFR benchmark graph with ground-truth communities."""
    if num_vertices < min_community:
        raise ValueError("num_vertices must be >= min_community")
    if not 0.0 <= mu <= 1.0:
        raise ValueError(f"mu must be in [0, 1], got {mu}")
    rng = np.random.default_rng(seed)

    # 1. degrees (rescale the power-law draw to hit avg_degree).
    k = _bounded_powerlaw(rng, num_vertices, tau1, 2, max_degree)
    scale = avg_degree / k.mean()
    k = np.maximum(2, np.round(k * scale).astype(np.int64))
    k = np.minimum(k, max_degree)

    # 2. community sizes covering all vertices.
    sizes: list[int] = []
    total = 0
    while total < num_vertices:
        s = int(
            _bounded_powerlaw(rng, 1, tau2, min_community, max_community)[0]
        )
        s = min(s, num_vertices - total)
        if num_vertices - total - s < min_community and total + s < num_vertices:
            s = num_vertices - total  # absorb the tail into one community
        sizes.append(s)
        total += s
    sizes_arr = np.array(sizes, dtype=np.int64)
    ncomm = len(sizes_arr)

    # 3. placement: intra-degree must fit the community.  Vertices are
    # placed in decreasing intra-degree order into the largest community
    # with free capacity, so small communities are left for low-degree
    # vertices and clamping (which would leak stubs into the inter pool)
    # stays rare.
    k_intra = np.round((1.0 - mu) * k).astype(np.int64)
    k_intra = np.minimum(k_intra, k)
    community_of = np.full(num_vertices, -1, dtype=np.int64)
    capacity = sizes_arr.copy()
    comm_by_size = np.argsort(-sizes_arr, kind="stable")
    for u in np.argsort(-k_intra, kind="stable"):
        placed = False
        for c in comm_by_size:
            if capacity[c] > 0 and k_intra[u] < sizes_arr[c]:
                community_of[u] = c
                capacity[c] -= 1
                placed = True
                break
        if not placed:  # degree too high for any free community: clamp
            c = int(np.argmax(capacity))
            community_of[u] = c
            capacity[c] -= 1
            k_intra[u] = min(k_intra[u], sizes_arr[c] - 1)
    # (capacity bookkeeping guarantees every vertex got a community)

    # 4. intra-community configuration model (with reshuffle retries so
    # self-pair rejections don't bleed intra weight).
    intra_u: list[np.ndarray] = []
    intra_v: list[np.ndarray] = []
    for c in range(ncomm):
        members = np.flatnonzero(community_of == c)
        stubs = np.repeat(members, k_intra[members])
        a, b = _pair_stubs(rng, stubs, reject=lambda x, y: x == y)
        intra_u.append(a)
        intra_v.append(b)

    # 5. inter-community configuration model.
    k_inter = k - k_intra
    stubs = np.repeat(np.arange(num_vertices, dtype=np.int64), k_inter)
    inter_u, inter_v = _pair_stubs(
        rng,
        stubs,
        reject=lambda x, y: (x == y) | (community_of[x] == community_of[y]),
    )

    all_u = np.concatenate(intra_u + [inter_u]) if intra_u else inter_u
    all_v = np.concatenate(intra_v + [inter_v]) if intra_v else inter_v
    el = EdgeList.from_arrays(num_vertices, all_u, all_v)

    # Realised mixing is measured on *weights*: duplicate stub pairings
    # merge into weighted edges, so weight (not edge count) is what the
    # configuration model conserves — and what modularity sees.
    cross = community_of[el.u] != community_of[el.v]
    total_w = float(el.w.sum())
    mu_real = float(el.w[cross].sum() / total_w) if total_w > 0 else 0.0
    return LFRGraph(edges=el, community_of=community_of, mu_realized=mu_real)
