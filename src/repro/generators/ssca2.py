"""SSCA#2-style synthetic graph generator (GTgraph reimplementation).

The paper's weak-scaling study (§V-B, Table V, Fig. 4) uses the GTgraph
suite to generate graphs "according to DARPA HPCS SSCA#2": random-sized
cliques with controllable inter-clique connectivity.  The paper fixes
the maximum clique size (100) and keeps the inter-clique edge
probability low "to enforce good community structure", which is why the
measured modularities in Table V are ~0.9999.

This generator reproduces that model:

* vertices are partitioned into cliques of size uniform in
  ``[1, max_clique_size]``;
* every intra-clique edge is present (weight 1);
* ``inter_clique_fraction`` of the intra edge count is added as random
  edges between distinct cliques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edgelist import EdgeList


@dataclass(frozen=True)
class SSCA2Graph:
    """Generated graph plus its planted clique structure."""

    edges: EdgeList
    clique_of: np.ndarray  # ground-truth clique id per vertex

    @property
    def num_cliques(self) -> int:
        return int(self.clique_of.max()) + 1 if len(self.clique_of) else 0


def generate_ssca2(
    num_vertices: int,
    max_clique_size: int = 100,
    inter_clique_fraction: float = 0.01,
    seed: int = 0,
) -> SSCA2Graph:
    """Generate an SSCA#2 graph with ``num_vertices`` vertices.

    ``inter_clique_fraction`` is the number of inter-clique edges as a
    fraction of the intra-clique edge count (GTgraph's low-probability
    inter-clique option).
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    if max_clique_size < 1:
        raise ValueError("max_clique_size must be >= 1")
    if not 0.0 <= inter_clique_fraction:
        raise ValueError("inter_clique_fraction must be >= 0")
    rng = np.random.default_rng(seed)

    # Partition vertices into random-size cliques.
    sizes = []
    remaining = num_vertices
    while remaining > 0:
        s = int(rng.integers(1, max_clique_size + 1))
        s = min(s, remaining)
        sizes.append(s)
        remaining -= s
    sizes = np.array(sizes, dtype=np.int64)
    clique_of = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    # Intra-clique edges: all pairs within each clique.
    us, vs = [], []
    for start, s in zip(starts, sizes):
        if s < 2:
            continue
        local = np.arange(s, dtype=np.int64)
        iu, iv = np.triu_indices(s, k=1)
        us.append(start + local[iu])
        vs.append(start + local[iv])
    intra_u = np.concatenate(us) if us else np.empty(0, np.int64)
    intra_v = np.concatenate(vs) if vs else np.empty(0, np.int64)

    # Inter-clique edges: random endpoint pairs in distinct cliques.
    n_inter = int(round(inter_clique_fraction * len(intra_u)))
    inter_u = np.empty(0, np.int64)
    inter_v = np.empty(0, np.int64)
    if n_inter > 0 and len(sizes) > 1:
        # Oversample and keep pairs crossing clique boundaries.
        cand_u = rng.integers(0, num_vertices, 3 * n_inter)
        cand_v = rng.integers(0, num_vertices, 3 * n_inter)
        cross = clique_of[cand_u] != clique_of[cand_v]
        inter_u = cand_u[cross][:n_inter].astype(np.int64)
        inter_v = cand_v[cross][:n_inter].astype(np.int64)

    el = EdgeList.from_arrays(
        num_vertices,
        np.concatenate([intra_u, inter_u]),
        np.concatenate([intra_v, inter_v]),
    )
    return SSCA2Graph(edges=el, clique_of=clique_of)


def weak_scaling_series(
    base_vertices: int,
    process_counts: list[int],
    max_clique_size: int = 100,
    inter_clique_fraction: float = 0.005,
    seed: int = 0,
) -> list[tuple[int, SSCA2Graph]]:
    """Graphs sized proportionally to the process count (Table V setup).

    Returns ``[(p, graph)]`` with ``n = base_vertices * p`` so the
    per-process work stays fixed, mirroring the paper's Graph#1-#5.
    """
    out = []
    for i, p in enumerate(process_counts):
        g = generate_ssca2(
            base_vertices * p,
            max_clique_size=max_clique_size,
            inter_clique_fraction=inter_clique_fraction,
            seed=seed + i,
        )
        out.append((p, g))
    return out
