"""Banded mesh generators: stand-ins for ``channel`` and ``nlpkkt240``.

Both inputs are matrices from PDE-type problems (channel-flow mesh,
KKT optimisation system): near-regular degree, banded sparsity, high
modularity under Louvain (0.943 / 0.939 in Table II), and — crucially
for the ET heuristic — communities that settle quickly so vertex
activity collapses early.  A 3-D grid with a short-range stencil has
exactly these properties.
"""

from __future__ import annotations

import numpy as np

from ..graph.edgelist import EdgeList


def generate_grid3d(
    nx: int,
    ny: int,
    nz: int,
    connectivity: int = 6,
    seed: int = 0,
    jitter_fraction: float = 0.0,
) -> EdgeList:
    """3-D grid graph with a 6- or 18-neighbour stencil.

    ``jitter_fraction`` adds that fraction of random long-range edges
    (to keep the graph connected / less perfectly regular when desired).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    if connectivity not in (6, 18):
        raise ValueError("connectivity must be 6 or 18")
    n = nx * ny * nz

    def vid(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        return (x * ny + y) * nz + z

    xs, ys, zs = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    xs, ys, zs = xs.ravel(), ys.ravel(), zs.ravel()

    offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    if connectivity == 18:
        offsets += [
            (1, 1, 0),
            (1, -1, 0),
            (1, 0, 1),
            (1, 0, -1),
            (0, 1, 1),
            (0, 1, -1),
        ]

    us, vs = [], []
    for dx, dy, dz in offsets:
        x2, y2, z2 = xs + dx, ys + dy, zs + dz
        ok = (
            (0 <= x2)
            & (x2 < nx)
            & (0 <= y2)
            & (y2 < ny)
            & (0 <= z2)
            & (z2 < nz)
        )
        us.append(vid(xs[ok], ys[ok], zs[ok]))
        vs.append(vid(x2[ok], y2[ok], z2[ok]))
    u = np.concatenate(us)
    v = np.concatenate(vs)

    if jitter_fraction > 0.0:
        rng = np.random.default_rng(seed)
        extra = int(jitter_fraction * len(u))
        ju = rng.integers(0, n, extra)
        jv = rng.integers(0, n, extra)
        keep = ju != jv
        u = np.concatenate([u, ju[keep]])
        v = np.concatenate([v, jv[keep]])

    return EdgeList.from_arrays(n, u, v)


def generate_banded(
    num_vertices: int,
    bandwidth: int = 8,
    density: float = 0.6,
    seed: int = 0,
) -> EdgeList:
    """1-D banded graph: each vertex links to ``density`` of the vertices
    within ``bandwidth`` positions — the sparsity pattern of a banded
    matrix (another channel-like structure, cheaper to generate)."""
    if bandwidth < 1:
        raise ValueError("bandwidth must be >= 1")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    us, vs = [], []
    base = np.arange(num_vertices, dtype=np.int64)
    for off in range(1, bandwidth + 1):
        u = base[: num_vertices - off]
        v = u + off
        keep = rng.random(len(u)) < density
        us.append(u[keep])
        vs.append(v[keep])
    return EdgeList.from_arrays(
        num_vertices, np.concatenate(us), np.concatenate(vs)
    )
