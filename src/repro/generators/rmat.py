"""R-MAT recursive matrix graph generator (Chakrabarti et al. 2004).

Scale-free graphs with heavy-tailed degree distributions — the structure
class of the paper's social-network inputs (com-orkut, twitter-2010,
soc-sinaweibo, soc-friendster).  Standard parameters (a, b, c, d) =
(0.57, 0.19, 0.19, 0.05) produce Graph500-like skew; moving probability
mass toward ``a`` increases hub concentration.
"""

from __future__ import annotations

import numpy as np

from ..graph.edgelist import EdgeList


def generate_rmat(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    drop_self_loops: bool = True,
) -> EdgeList:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` is edges-per-vertex before dedup; the quadrant
    probabilities must satisfy ``a + b + c <= 1`` (``d`` is implied).
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    if a <= 0 or b < 0 or c < 0 or a + b + c >= 1.0:
        raise ValueError("quadrant probabilities must be positive, sum < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = int(edge_factor * n)

    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        right = (r >= a) & (r < ab) | (r >= abc)
        down = r >= ab
        u = (u << 1) | down.astype(np.int64)
        v = (v << 1) | right.astype(np.int64)

    if drop_self_loops:
        keep = u != v
        u, v = u[keep], v[keep]
    return EdgeList.from_arrays(n, u, v)
