"""Synthetic workload generators standing in for the paper's inputs."""

from .lfr import LFRGraph, generate_lfr
from .meshes import generate_banded, generate_grid3d
from .registry import (
    DATASETS,
    SCALES,
    TABLE2_NAMES,
    DatasetSpec,
    dataset,
    make_graph,
)
from .rmat import generate_rmat
from .smallworld import generate_smallworld
from .ssca2 import SSCA2Graph, generate_ssca2, weak_scaling_series
from .webgraph import WebGraph, generate_webgraph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LFRGraph",
    "SCALES",
    "SSCA2Graph",
    "TABLE2_NAMES",
    "WebGraph",
    "dataset",
    "generate_banded",
    "generate_grid3d",
    "generate_lfr",
    "generate_rmat",
    "generate_smallworld",
    "generate_ssca2",
    "generate_webgraph",
    "make_graph",
    "weak_scaling_series",
]
