"""Small-world generator (Watts-Strogatz): stand-in for the CNR input.

Table I contrasts ET behaviour on CNR ("small world characteristics",
~2x ET speedup) against Channel ("banded structure", ~58x).  A ring
lattice with random rewiring reproduces the small-world class: high
clustering, short paths, and communities that keep churning across many
iterations — which is exactly why ET saves less there.
"""

from __future__ import annotations

import numpy as np

from ..graph.edgelist import EdgeList


def generate_smallworld(
    num_vertices: int,
    neighbors: int = 6,
    rewire_probability: float = 0.1,
    seed: int = 0,
) -> EdgeList:
    """Watts-Strogatz small-world graph.

    Each vertex connects to its ``neighbors`` nearest ring neighbours
    (``neighbors`` must be even); each edge's far endpoint is rewired to
    a uniform random vertex with probability ``rewire_probability``.
    """
    if num_vertices < 3:
        raise ValueError("num_vertices must be >= 3")
    if neighbors < 2 or neighbors % 2:
        raise ValueError("neighbors must be even and >= 2")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)

    base = np.arange(num_vertices, dtype=np.int64)
    us, vs = [], []
    for off in range(1, neighbors // 2 + 1):
        us.append(base)
        vs.append((base + off) % num_vertices)
    u = np.concatenate(us)
    v = np.concatenate(vs)

    rewire = rng.random(len(u)) < rewire_probability
    new_dst = rng.integers(0, num_vertices, int(rewire.sum())).astype(np.int64)
    v = v.copy()
    v[rewire] = new_dst
    keep = u != v
    return EdgeList.from_arrays(num_vertices, u[keep], v[keep])
