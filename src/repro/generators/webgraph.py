"""Hierarchical web-crawl-like generator.

Stand-in for the paper's web corpora (arabic-2005, webbase-2001,
sk-2005, uk-2007, web-wiki, web-cc12-PayLevelDomain): pages cluster into
*hosts* with dense intra-host linkage, while inter-host links follow a
heavy-tailed popularity distribution.  Louvain finds extremely high
modularity on such graphs (0.97-0.99 in Table II) and converges in few
iterations per phase — the behaviour the paper observes for sk-2005
("relatively low number of iterations per phase").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.edgelist import EdgeList


@dataclass(frozen=True)
class WebGraph:
    edges: EdgeList
    host_of: np.ndarray  # planted host id per page

    @property
    def num_hosts(self) -> int:
        return int(self.host_of.max()) + 1 if len(self.host_of) else 0


def generate_webgraph(
    num_vertices: int,
    mean_host_size: int = 30,
    host_size_exponent: float = 1.8,
    intra_degree: float = 8.0,
    inter_fraction: float = 0.03,
    seed: int = 0,
) -> WebGraph:
    """Generate a web-crawl-like graph.

    * hosts have power-law sizes (exponent ``host_size_exponent``),
      scaled so the mean is ``mean_host_size``;
    * within a host, pages form a sparse random graph of average degree
      ``intra_degree`` (plus a spanning path, so hosts are connected);
    * ``inter_fraction`` of all edges connect pages on different hosts,
      with destinations drawn preferentially from large hosts
      (popularity ∝ size).
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = np.random.default_rng(seed)

    # Host sizes: power law scaled to the requested mean.
    sizes: list[int] = []
    total = 0
    lo, hi = max(2, mean_host_size // 5), mean_host_size * 5
    values = np.arange(lo, hi + 1, dtype=np.float64)
    probs = values ** (-host_size_exponent)
    probs /= probs.sum()
    raw_mean = float((values * probs).sum())
    scale = mean_host_size / raw_mean
    while total < num_vertices:
        s = int(round(scale * rng.choice(values, p=probs)))
        s = max(2, min(s, num_vertices - total))
        if num_vertices - total - s == 1:
            s += 1  # avoid a trailing singleton host
        sizes.append(s)
        total += s
    sizes_arr = np.array(sizes, dtype=np.int64)
    host_of = np.repeat(np.arange(len(sizes_arr), dtype=np.int64), sizes_arr)
    starts = np.concatenate([[0], np.cumsum(sizes_arr)[:-1]])

    us, vs = [], []
    for start, s in zip(starts, sizes_arr):
        # Spanning path keeps the host connected.
        path = start + np.arange(s - 1, dtype=np.int64)
        us.append(path)
        vs.append(path + 1)
        # Random intra-host links up to the target average degree.
        extra = max(0, int(s * intra_degree / 2) - (s - 1))
        if extra > 0 and s > 2:
            a = start + rng.integers(0, s, extra)
            b = start + rng.integers(0, s, extra)
            keep = a != b
            us.append(a[keep])
            vs.append(b[keep])
    u = np.concatenate(us)
    v = np.concatenate(vs)

    # Inter-host links with popularity-weighted destinations.
    n_inter = int(inter_fraction * len(u))
    if n_inter > 0 and len(sizes_arr) > 1:
        src = rng.integers(0, num_vertices, n_inter).astype(np.int64)
        dst_host = rng.choice(
            len(sizes_arr), size=n_inter, p=sizes_arr / sizes_arr.sum()
        )
        dst = starts[dst_host] + rng.integers(0, sizes_arr[dst_host])
        keep = host_of[src] != host_of[dst]
        u = np.concatenate([u, src[keep]])
        v = np.concatenate([v, dst[keep].astype(np.int64)])

    return WebGraph(
        edges=EdgeList.from_arrays(num_vertices, u, v), host_of=host_of
    )
