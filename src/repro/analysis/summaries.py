"""Per-function collective-footprint summaries and schedule evaluation.

A *footprint* is the abstract collective schedule a function executes:

* :class:`Coll` — one collective call site (``allreduce``, a catalog
  helper resolved to nothing, ...);
* :class:`Seq` — sequential composition;
* :class:`Star` — a loop body (trip count abstracted away);
* :class:`Alt` — alternation, tagged with *why* the program forks:
  ``config`` (a branch on :class:`~repro.core.config.LouvainConfig`
  fields — resolvable once a concrete config is chosen), ``rank`` (a
  branch on rank-derived state — the divergence SPMD001/SPMD004 hunt),
  or ``data`` (anything else — assumed replicated, as SPMD001 does);
* :class:`Opaque` — a recursion cutoff.

:class:`SummaryBuilder` computes footprints bottom-up over the
call graph, inlining callee summaries at call sites, so the footprint
of ``distributed_louvain`` is the whole program's schedule.  With a
concrete :class:`LouvainConfig`, :func:`evaluate` resolves the
config-guarded alternatives and :func:`schedule_matrix` tabulates the
schedule of every distinct variant in a tuner
:class:`~repro.tune.space.SearchSpace` — the static counterpart of the
runtime schedule verifier.

Config guards are recognised in three forms: direct field tests
(``if config.use_coloring:``), derived-property chains
(``config.variant.uses_inactive_exit``), and the ``x = <expr> if
config.f else None`` / ``if x is not None:`` idiom the codebase uses
for optional subsystems (ET, the push cache, assignment tracking).
"""

from __future__ import annotations

import ast
import hashlib
from collections import Counter
from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from .callgraph import CallGraph, direct_collective_op
from .rules import (
    COLLECTIVE_HELPERS,
    _callable_name,
    is_rank_variant,
    walk_no_nested,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spmdlint import FunctionContext

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Names an abstract guard expression may reference besides the config.
_SAFE_GLOBALS = frozenset({"Variant", "True", "False", "None"})

#: Sentinel guard-evaluation results.
UNKNOWN = object()
NOT_NONE = object()


# ----------------------------------------------------------------------
# footprint algebra
# ----------------------------------------------------------------------
class Footprint:
    """Base class; equality and hashing go through :meth:`key`."""

    def key(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Footprint) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key()!r}>"


class Coll(Footprint):
    """One collective call site."""

    __slots__ = ("op", "node")

    def __init__(self, op: str, node: ast.AST | None = None) -> None:
        self.op = op
        self.node = node

    def key(self) -> str:
        return self.op


class Seq(Footprint):
    """Sequential composition (flattened, empties dropped)."""

    __slots__ = ("parts",)

    def __init__(self, parts: tuple[Footprint, ...]) -> None:
        self.parts = parts

    def key(self) -> str:
        if not self.parts:
            return ""
        return ",".join(p.key() for p in self.parts)


EMPTY: Footprint = Seq(())


class Star(Footprint):
    """A loop body; the trip count is abstracted to ``*``."""

    __slots__ = ("body", "rank_variant", "node", "owner")

    def __init__(
        self,
        body: Footprint,
        rank_variant: bool = False,
        node: ast.AST | None = None,
        owner: "FunctionContext | None" = None,
    ) -> None:
        self.body = body
        self.rank_variant = rank_variant
        self.node = node
        self.owner = owner

    def key(self) -> str:
        return f"({self.body.key()})*"


class Alt(Footprint):
    """Alternation between option footprints.

    ``kind`` is ``"config"`` (guard over LouvainConfig fields; exactly
    two options, index 0 taken when the guard is true), ``"rank"``
    (rank-divergent branch — the bug class), or ``"data"``.
    """

    __slots__ = ("options", "kind", "fields", "guard", "info", "node", "owner")

    def __init__(
        self,
        options: tuple[Footprint, ...],
        kind: str,
        fields: tuple[str, ...] = (),
        guard: ast.expr | None = None,
        info: "_GuardInfo | None" = None,
        node: ast.AST | None = None,
        owner: "FunctionContext | None" = None,
    ) -> None:
        self.options = options
        self.kind = kind
        self.fields = fields
        self.guard = guard
        self.info = info
        self.node = node
        self.owner = owner

    def key(self) -> str:
        inner = "|".join(sorted(o.key() for o in self.options))
        tag = "" if self.kind == "data" else self.kind[0]
        return f"{{{inner}}}{tag}"


class Opaque(Footprint):
    """Recursion cutoff: the schedule beyond this point is unknown."""

    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def key(self) -> str:
        return f"?{self.tag}"


def seq(parts: Sequence[Footprint]) -> Footprint:
    """Smart Seq constructor: flatten, drop empties, collapse singletons."""
    flat: list[Footprint] = []
    for p in parts:
        if isinstance(p, Seq):
            flat.extend(p.parts)
        elif p.key() != "":
            flat.append(p)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def star(
    body: Footprint,
    rank_variant: bool = False,
    node: ast.AST | None = None,
    owner: "FunctionContext | None" = None,
) -> Footprint:
    """Smart Star constructor: a loop with no collectives vanishes."""
    if body.key() == "":
        return EMPTY
    return Star(body, rank_variant=rank_variant, node=node, owner=owner)


def alt(
    options: Sequence[Footprint],
    kind: str,
    fields: tuple[str, ...] = (),
    guard: ast.expr | None = None,
    info: "_GuardInfo | None" = None,
    node: ast.AST | None = None,
    owner: "FunctionContext | None" = None,
) -> Footprint:
    """Smart Alt constructor: identical options collapse.

    ``config`` alternations are *kept* even when their options agree so
    the guarded fields remain visible to the schedule matrix; ``rank``
    and ``data`` alternations with agreeing options carry no schedule
    information and collapse to either option.
    """
    opts = tuple(options)
    keys = {o.key() for o in opts}
    if len(keys) == 1 and kind != "config":
        return opts[0]
    if len(keys) == 1 and kind == "config" and next(iter(keys)) == "":
        return EMPTY
    return Alt(
        opts, kind, fields=fields, guard=guard, info=info, node=node, owner=owner
    )


def op_counter(fp: Footprint) -> Counter:
    """Static collective-site counts (loop bodies counted once)."""
    counts: Counter = Counter()
    stack = [fp]
    while stack:
        f = stack.pop()
        if isinstance(f, Coll):
            counts[f.op] += 1
        elif isinstance(f, Opaque):
            counts[f.key()] += 1
        elif isinstance(f, Seq):
            stack.extend(f.parts)
        elif isinstance(f, Star):
            stack.append(f.body)
        elif isinstance(f, Alt):
            stack.extend(f.options)
    return counts


# ----------------------------------------------------------------------
# config-guard recognition
# ----------------------------------------------------------------------
@dataclass
class _GuardInfo:
    """Per-function map from local names to config-derived values."""

    config_names: set[str] = dc_field(default_factory=set)
    #: name -> config-pure expression it was assigned from.
    alias_exprs: dict[str, ast.expr] = dc_field(default_factory=dict)
    #: name -> ``A if <test> else None`` (or flipped) it was assigned from.
    none_ifexp: dict[str, ast.IfExp] = dc_field(default_factory=dict)


def _config_param_names(node: ast.FunctionDef) -> set[str]:
    names = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ann = ast.unparse(arg.annotation) if arg.annotation is not None else ""
        if arg.arg == "config" or "LouvainConfig" in ann:
            names.add(arg.arg)
    return names


def config_fields_of(
    expr: ast.AST, info: _GuardInfo
) -> frozenset[str] | None:
    """Config fields a *pure* config expression reads; None if impure."""
    if isinstance(expr, ast.Constant):
        return frozenset()
    if isinstance(expr, ast.Name):
        if expr.id in info.config_names or expr.id in _SAFE_GLOBALS:
            return frozenset()
        if expr.id in info.alias_exprs:
            return config_fields_of(info.alias_exprs[expr.id], info)
        return None
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name) and base.id in info.config_names:
            return frozenset({expr.attr})
        if isinstance(base, ast.Name) and base.id in _SAFE_GLOBALS:
            return frozenset()  # Variant.ET and friends
        inner = config_fields_of(base, info)
        return inner  # chained attribute on a config-derived value
    if isinstance(expr, ast.UnaryOp):
        return config_fields_of(expr.operand, info)
    if isinstance(expr, (ast.BoolOp,)):
        out: frozenset[str] = frozenset()
        for v in expr.values:
            sub = config_fields_of(v, info)
            if sub is None:
                return None
            out |= sub
        return out
    if isinstance(expr, ast.Compare):
        out = frozenset()
        for v in [expr.left, *expr.comparators]:
            sub = config_fields_of(v, info)
            if sub is None:
                return None
            out |= sub
        return out
    if isinstance(expr, ast.BinOp):
        left = config_fields_of(expr.left, info)
        right = config_fields_of(expr.right, info)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, ast.IfExp):
        parts = [
            config_fields_of(e, info)
            for e in (expr.test, expr.body, expr.orelse)
        ]
        if any(p is None for p in parts):
            return None
        return frozenset().union(*parts)  # type: ignore[arg-type]
    return None


class _NoneGuardSubst(ast.NodeTransformer):
    """Rewrite ``x is [not] None`` to the config test behind ``x``.

    For ``x = A if T else None`` the comparison ``x is not None`` is
    exactly ``T`` (and ``x is None`` is ``not T``), provided ``A`` is
    never ``None`` — true for the constructor-call idiom this targets.
    """

    def __init__(self, info: _GuardInfo) -> None:
        self.info = info

    def visit_Compare(self, node: ast.Compare) -> ast.expr:
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Is, ast.IsNot))
            and isinstance(node.left, ast.Name)
            and node.left.id in self.info.none_ifexp
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            ifexp = self.info.none_ifexp[node.left.id]
            body_is_none = (
                isinstance(ifexp.body, ast.Constant) and ifexp.body.value is None
            )
            # test true selects the non-None arm?
            true_means_set = not body_is_none
            want_set = isinstance(node.ops[0], ast.IsNot)
            test = ifexp.test
            if want_set != true_means_set:
                return ast.UnaryOp(op=ast.Not(), operand=test)
            return test
        return node


def classify_guard(
    test: ast.expr, fn: "FunctionContext", info: _GuardInfo
) -> tuple[str, tuple[str, ...], ast.expr | None]:
    """(kind, config fields, evaluable guard) for a branch condition."""
    effective = _NoneGuardSubst(info).visit(
        ast.fix_missing_locations(_copy_expr(test))
    )
    fields = config_fields_of(effective, info)
    if fields:
        return "config", tuple(sorted(fields)), effective
    if is_rank_variant(test, fn):
        return "rank", (), None
    return "data", (), None


def _copy_expr(expr: ast.expr) -> ast.expr:
    mod = ast.parse(ast.unparse(expr), mode="eval")
    return mod.body


# ----------------------------------------------------------------------
# guard evaluation against a concrete config
# ----------------------------------------------------------------------
def _eval_expr(node: ast.AST, cfg: Any, info: _GuardInfo) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in info.config_names:
            return cfg
        if node.id == "Variant":
            from ..core.config import Variant

            return Variant
        if node.id in info.alias_exprs:
            return _eval_expr(info.alias_exprs[node.id], cfg, info)
        if node.id in info.none_ifexp:
            return _eval_expr(info.none_ifexp[node.id], cfg, info)
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        base = _eval_expr(node.value, cfg, info)
        if base is UNKNOWN or base is NOT_NONE:
            return UNKNOWN
        try:
            return getattr(base, node.attr)
        except AttributeError:
            return UNKNOWN
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        v = _truthy(_eval_expr(node.operand, cfg, info))
        return UNKNOWN if v is UNKNOWN else not v
    if isinstance(node, ast.BoolOp):
        is_and = isinstance(node.op, ast.And)
        saw_unknown = False
        for v in node.values:
            t = _truthy(_eval_expr(v, cfg, info))
            if t is UNKNOWN:
                saw_unknown = True
            elif t != is_and:
                return t  # short-circuit value decides
        return UNKNOWN if saw_unknown else is_and
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        left = _eval_expr(node.left, cfg, info)
        right = _eval_expr(node.comparators[0], cfg, info)
        op = node.ops[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            if right is None or left is None:
                other = left if right is None else right
                if other is NOT_NONE:
                    is_none = False
                elif other is UNKNOWN:
                    return UNKNOWN
                else:
                    is_none = other is None
                return not is_none if isinstance(op, ast.IsNot) else is_none
            return UNKNOWN
        if left is UNKNOWN or right is UNKNOWN or left is NOT_NONE or right is NOT_NONE:
            return UNKNOWN
        try:
            if isinstance(op, ast.Eq):
                return left == right
            if isinstance(op, ast.NotEq):
                return left != right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            if isinstance(op, ast.In):
                return left in right
            if isinstance(op, ast.NotIn):
                return left not in right
        except TypeError:
            return UNKNOWN
        return UNKNOWN
    if isinstance(node, ast.IfExp):
        t = _truthy(_eval_expr(node.test, cfg, info))
        if t is UNKNOWN:
            return UNKNOWN
        return _eval_expr(node.body if t else node.orelse, cfg, info)
    if isinstance(node, (ast.Call, ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return NOT_NONE  # an object, whatever it is
    return UNKNOWN


def _truthy(v: Any) -> Any:
    if v is UNKNOWN or v is NOT_NONE:
        return UNKNOWN
    return bool(v)


def eval_guard(a: Alt, cfg: Any) -> Any:
    """True/False/UNKNOWN for a config alternation's guard."""
    if a.guard is None or a.info is None:
        return UNKNOWN
    return _truthy(_eval_expr(a.guard, cfg, a.info))


def evaluate(fp: Footprint, cfg: Any) -> Footprint:
    """Resolve config alternations of ``fp`` against a concrete config."""
    if isinstance(fp, Seq):
        return seq([evaluate(p, cfg) for p in fp.parts])
    if isinstance(fp, Star):
        return star(
            evaluate(fp.body, cfg),
            rank_variant=fp.rank_variant,
            node=fp.node,
            owner=fp.owner,
        )
    if isinstance(fp, Alt):
        if fp.kind == "config" and len(fp.options) == 2:
            v = eval_guard(fp, cfg)
            if v is True:
                return evaluate(fp.options[0], cfg)
            if v is False:
                return evaluate(fp.options[1], cfg)
        return alt(
            [evaluate(o, cfg) for o in fp.options],
            "data" if fp.kind == "config" else fp.kind,
            node=fp.node,
            owner=fp.owner,
        )
    return fp


def config_fields_in(fp: Footprint) -> frozenset[str]:
    """All config fields guarding any alternation inside ``fp``."""
    out: set[str] = set()
    stack = [fp]
    while stack:
        f = stack.pop()
        if isinstance(f, Seq):
            stack.extend(f.parts)
        elif isinstance(f, Star):
            stack.append(f.body)
        elif isinstance(f, Alt):
            if f.kind == "config":
                out.update(f.fields)
            stack.extend(f.options)
    return frozenset(out)


def schedule_guarding_fields(fp: Footprint) -> frozenset[str]:
    """Config fields that *select between different* schedules.

    Unlike :func:`config_fields_in` this ignores config alternations
    whose options share the same collective footprint — a field only
    "guards the schedule" (and so concerns rule SPMD302) when flipping
    it changes which collectives run.
    """
    out: set[str] = set()
    stack = [fp]
    while stack:
        f = stack.pop()
        if isinstance(f, Seq):
            stack.extend(f.parts)
        elif isinstance(f, Star):
            stack.append(f.body)
        elif isinstance(f, Alt):
            if (
                f.kind == "config"
                and len({o.key() for o in f.options}) > 1
            ):
                out.update(f.fields)
            stack.extend(f.options)
    return frozenset(out)


# ----------------------------------------------------------------------
# divergence scan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """A rank-variant alternation/loop that changes the schedule."""

    node: ast.AST
    owner: "FunctionContext"
    kind: str  # "branch" | "loop"
    ops: tuple[str, ...]
    config_path: tuple[str, ...]

    def describe(self) -> str:
        where = "loop" if self.kind == "loop" else "branch"
        ops = ", ".join(self.ops) or "collective schedule"
        msg = f"rank-dependent {where} changes the schedule of {ops}"
        if self.config_path:
            msg += (
                " (reached only when config."
                + " and config.".join(self.config_path)
                + " selects it)"
            )
        return msg


def _diff_ops(options: Sequence[Footprint]) -> tuple[str, ...]:
    counters = [op_counter(o) for o in options]
    common = counters[0].copy()
    for c in counters[1:]:
        common &= c
    diff: set[str] = set()
    for c in counters:
        for op, n in c.items():
            if n != common.get(op, 0):
                diff.add(op)
    return tuple(sorted(diff))


def divergences(
    fp: Footprint, config_path: tuple[str, ...] = ()
) -> list[Divergence]:
    """Every rank-variant schedule fork in ``fp`` (pre- or post-eval)."""
    out: list[Divergence] = []
    if isinstance(fp, Seq):
        for p in fp.parts:
            out.extend(divergences(p, config_path))
    elif isinstance(fp, Star):
        if fp.rank_variant and fp.node is not None and fp.owner is not None:
            out.append(
                Divergence(
                    node=fp.node,
                    owner=fp.owner,
                    kind="loop",
                    ops=tuple(sorted(op_counter(fp.body))),
                    config_path=config_path,
                )
            )
        out.extend(divergences(fp.body, config_path))
    elif isinstance(fp, Alt):
        path = (
            config_path + tuple(f for f in fp.fields if f not in config_path)
            if fp.kind == "config"
            else config_path
        )
        if fp.kind == "rank" and fp.node is not None and fp.owner is not None:
            out.append(
                Divergence(
                    node=fp.node,
                    owner=fp.owner,
                    kind="branch",
                    ops=_diff_ops(fp.options),
                    config_path=config_path,
                )
            )
        for o in fp.options:
            out.extend(divergences(o, path))
    return out


# ----------------------------------------------------------------------
# summary builder
# ----------------------------------------------------------------------
class SummaryBuilder:
    """Computes (and memoizes) per-function footprints over a program."""

    def __init__(self, callgraph: CallGraph) -> None:
        self.callgraph = callgraph
        self._memo: dict[int, Footprint] = {}
        self._info: dict[int, _GuardInfo] = {}

    # -- guard info ----------------------------------------------------
    def guard_info(self, fn: "FunctionContext") -> _GuardInfo:
        key = id(fn)
        if key not in self._info:
            info = _GuardInfo(config_names=_config_param_names(fn.node))
            for node in walk_no_nested(fn.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not names:
                    continue
                if config_fields_of(value, info):
                    for n in names:
                        info.alias_exprs[n] = value
                if isinstance(value, ast.IfExp) and (
                    (
                        isinstance(value.orelse, ast.Constant)
                        and value.orelse.value is None
                    )
                    or (
                        isinstance(value.body, ast.Constant)
                        and value.body.value is None
                    )
                ):
                    for n in names:
                        info.none_ifexp[n] = value
            self._info[key] = info
        return self._info[key]

    # -- footprints ----------------------------------------------------
    def summary(self, fn: "FunctionContext") -> Footprint:
        key = id(fn)
        if key not in self._memo:
            self._memo[key] = self._function(fn, stack=frozenset({key}))
        return self._memo[key]

    def _function(self, fn: "FunctionContext", stack: frozenset[int]) -> Footprint:
        info = self.guard_info(fn)
        fp, _terminates = self._block(fn.node.body, fn, info, stack)
        return fp

    def _inline_call(
        self,
        call: ast.Call,
        fn: "FunctionContext",
        stack: frozenset[int],
    ) -> Footprint:
        op = direct_collective_op(call, fn)
        if op is not None:
            return Coll(op, node=call)
        name = _callable_name(call.func)
        if name is None:
            return EMPTY
        candidates = [
            g
            for g in self.callgraph.resolve(name, fn.module)
            if self.callgraph.contains_collective(g)
        ]
        if candidates:
            options: list[Footprint] = []
            for g in candidates:
                gkey = id(g)
                if gkey in stack:
                    options.append(Opaque(name))
                elif gkey in self._memo:
                    options.append(self._memo[gkey])
                else:
                    fp = self._function(g, stack | {gkey})
                    self._memo[gkey] = fp
                    options.append(fp)
            uniq: dict[str, Footprint] = {o.key(): o for o in options}
            opts = list(uniq.values())
            if len(opts) == 1:
                return opts[0]
            return alt(opts, "data", node=call, owner=fn)
        if name in COLLECTIVE_HELPERS:
            # Catalog helper with no linted definition (partial lint):
            # treat as a single opaque collective op.
            comm_args = any(
                isinstance(a, ast.Name) and a.id in fn.all_comm_names
                for a in [*call.args, *[k.value for k in call.keywords]]
            )
            if comm_args or isinstance(call.func, ast.Attribute):
                return Coll(name, node=call)
        return EMPTY

    def _expr(
        self,
        node: ast.AST | None,
        fn: "FunctionContext",
        info: _GuardInfo,
        stack: frozenset[int],
    ) -> list[Footprint]:
        """Footprints of an expression, in evaluation order."""
        if node is None or isinstance(node, _NESTED_SCOPES):
            return []
        if isinstance(node, ast.Call):
            parts: list[Footprint] = []
            parts.extend(self._expr(node.func, fn, info, stack))
            for a in node.args:
                sub = a.value if isinstance(a, ast.Starred) else a
                parts.extend(self._expr(sub, fn, info, stack))
            for kw in node.keywords:
                parts.extend(self._expr(kw.value, fn, info, stack))
            parts.append(self._inline_call(node, fn, stack))
            return parts
        if isinstance(node, ast.Attribute):
            return self._expr(node.value, fn, info, stack)
        if isinstance(node, ast.IfExp):
            parts = self._expr(node.test, fn, info, stack)
            kind, fields, guard = classify_guard(node.test, fn, info)
            on_true = seq(self._expr(node.body, fn, info, stack))
            on_false = seq(self._expr(node.orelse, fn, info, stack))
            parts.append(
                alt(
                    (on_true, on_false), kind, fields=fields, guard=guard,
                    info=info, node=node, owner=fn,
                )
            )
            return parts
        parts = []
        for child in ast.iter_child_nodes(node):
            parts.extend(self._expr(child, fn, info, stack))
        return parts

    def _stmt_exprs(
        self,
        stmt: ast.stmt,
        fn: "FunctionContext",
        info: _GuardInfo,
        stack: frozenset[int],
    ) -> list[Footprint]:
        parts: list[Footprint] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, *_NESTED_SCOPES)):
                continue
            parts.extend(self._expr(child, fn, info, stack))
        return parts

    def _block(
        self,
        stmts: Sequence[ast.stmt],
        fn: "FunctionContext",
        info: _GuardInfo,
        stack: frozenset[int],
    ) -> tuple[Footprint, bool]:
        """(footprint, always-terminates) of a statement list."""
        parts: list[Footprint] = []
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, _NESTED_SCOPES):
                continue
            if isinstance(stmt, (ast.Return, ast.Raise)):
                parts.extend(self._stmt_exprs(stmt, fn, info, stack))
                return seq(parts), True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return seq(parts), True
            if isinstance(stmt, ast.If):
                parts.extend(self._expr(stmt.test, fn, info, stack))
                kind, fields, guard = classify_guard(stmt.test, fn, info)
                body_fp, body_t = self._block(stmt.body, fn, info, stack)
                else_fp, else_t = self._block(stmt.orelse, fn, info, stack)
                if body_t and else_t:
                    parts.append(
                        alt(
                            (body_fp, else_fp), kind, fields=fields,
                            guard=guard, info=info, node=stmt, owner=fn,
                        )
                    )
                    return seq(parts), True
                if body_t != else_t:
                    # One branch leaves the block: the other branch
                    # continues into the rest of the statements.
                    rest_fp, rest_t = self._block(
                        stmts[i + 1:], fn, info, stack
                    )
                    if body_t:
                        on_true: Footprint = body_fp
                        on_false = seq([else_fp, rest_fp])
                    else:
                        on_true = seq([body_fp, rest_fp])
                        on_false = else_fp
                    parts.append(
                        alt(
                            (on_true, on_false), kind, fields=fields,
                            guard=guard, info=info, node=stmt, owner=fn,
                        )
                    )
                    return seq(parts), False
                parts.append(
                    alt(
                        (body_fp, else_fp), kind, fields=fields,
                        guard=guard, info=info, node=stmt, owner=fn,
                    )
                )
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                parts.extend(self._expr(stmt.iter, fn, info, stack))
                body_fp, _ = self._block(stmt.body, fn, info, stack)
                parts.append(
                    star(
                        body_fp,
                        rank_variant=is_rank_variant(stmt.iter, fn),
                        node=stmt,
                        owner=fn,
                    )
                )
                if stmt.orelse:
                    else_fp, _ = self._block(stmt.orelse, fn, info, stack)
                    parts.append(else_fp)
                continue
            if isinstance(stmt, ast.While):
                test_parts = self._expr(stmt.test, fn, info, stack)
                body_fp, _ = self._block(stmt.body, fn, info, stack)
                parts.append(
                    star(
                        seq(test_parts + [body_fp]),
                        rank_variant=is_rank_variant(stmt.test, fn),
                        node=stmt,
                        owner=fn,
                    )
                )
                if stmt.orelse:
                    else_fp, _ = self._block(stmt.orelse, fn, info, stack)
                    parts.append(else_fp)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    parts.extend(
                        self._expr(item.context_expr, fn, info, stack)
                    )
                body_fp, body_t = self._block(stmt.body, fn, info, stack)
                parts.append(body_fp)
                if body_t:
                    return seq(parts), True
                continue
            if isinstance(stmt, ast.Try):
                body_fp, _ = self._block(stmt.body, fn, info, stack)
                parts.append(body_fp)
                handler_fps: list[Footprint] = []
                for h in stmt.handlers:
                    h_fp, _ = self._block(h.body, fn, info, stack)
                    if h_fp.key() != "":
                        handler_fps.append(h_fp)
                if handler_fps:
                    parts.append(
                        alt(
                            (EMPTY, *handler_fps), "data",
                            node=stmt, owner=fn,
                        )
                    )
                if stmt.orelse:
                    else_fp, _ = self._block(stmt.orelse, fn, info, stack)
                    parts.append(else_fp)
                if stmt.finalbody:
                    fin_fp, fin_t = self._block(
                        stmt.finalbody, fn, info, stack
                    )
                    parts.append(fin_fp)
                    if fin_t:
                        return seq(parts), True
                continue
            parts.extend(self._stmt_exprs(stmt, fn, info, stack))
        return seq(parts), False


# ----------------------------------------------------------------------
# schedule matrix
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    import enum

    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def signature(fp: Footprint) -> str:
    """Short stable digest of a footprint's canonical key."""
    return hashlib.sha256(fp.key().encode("utf-8")).hexdigest()[:12]


def schedule_matrix(
    builder: SummaryBuilder,
    entry: str = "distributed_louvain",
    space: Any = None,
    rule_id: str = "SPMD004",
) -> dict[str, Any]:
    """Per-config-variant schedule table for ``entry``.

    Enumerates the tuner search space, projects each candidate config
    onto the fields that actually guard the entry's footprint, and
    evaluates one schedule per distinct projection.  Suppressed
    divergences (``# spmdlint: ignore[SPMD004]`` at the forking line)
    count as justified.
    """
    fns = sorted(
        (
            fn
            for fn in builder.callgraph.functions
            if fn.name == entry and fn.is_spmd and not fn.is_nested
        ),
        key=lambda f: str(f.module.path),
    )
    if not fns:
        raise ValueError(f"entry function {entry!r} not found in linted paths")
    fn = fns[0]
    raw = builder.summary(fn)
    fields = sorted(config_fields_in(raw))
    if space is None:
        from ..tune.space import default_space

        space = default_space()
    import json as _json

    rows: list[dict[str, Any]] = []
    seen: set[str] = set()
    for cand in space.candidates():
        proj = {f: _jsonable(getattr(cand.config, f)) for f in fields}
        pkey = _json.dumps(proj, sort_keys=True, default=str)
        if pkey in seen:
            continue
        seen.add(pkey)
        ev = evaluate(raw, cand.config)
        divs = divergences(ev)
        live = [
            d
            for d in divs
            if not d.owner.module.is_suppressed(
                rule_id, getattr(d.node, "lineno", 1)
            )
        ]
        rows.append(
            {
                "config": proj,
                "label": cand.config.label(),
                "signature": signature(ev),
                "collectives": dict(sorted(op_counter(ev).items())),
                "divergence_free": not live,
                "divergences": [
                    f"{d.owner.module.display_path}:"
                    f"{getattr(d.node, 'lineno', 1)}: {d.describe()}"
                    for d in live
                ],
                "suppressed_divergences": len(divs) - len(live),
            }
        )
    return {
        "entry": entry,
        "defined_in": fn.module.display_path,
        "config_fields": fields,
        "rows": rows,
        "summary": {
            "variants": len(rows),
            "divergence_free": all(r["divergence_free"] for r in rows),
            "distinct_schedules": len({r["signature"] for r in rows}),
        },
    }


def iter_spmd_functions(
    builder: SummaryBuilder,
) -> Iterator["FunctionContext"]:
    """Top-level SPMD functions of the program, in lint order."""
    for fn in builder.callgraph.functions:
        if fn.is_spmd and not fn.is_nested:
            yield fn
