"""spmdlint engine: AST analysis contexts, rule driver, and reporting.

The engine parses every ``.py`` file under the requested paths, builds a
:class:`ModuleContext` (suppression map, function contexts with
communicator/rank/replication taint), and runs the registered rules from
:mod:`repro.analysis.rules` at their declared scope:

* ``function`` rules run once per SPMD function (a function that takes a
  communicator parameter);
* ``module`` rules run once per module;
* ``program`` rules run once over all modules (cross-module matching,
  e.g. send/recv tags).

Findings can be silenced with a trailing comment on the offending line::

    if comm.rank == 0:
        comm.bcast(x, root=0)  # spmdlint: ignore[SPMD001] -- reason

or for a whole file with ``# spmdlint: skip-file`` in the first ten
lines.  Suppressions should carry a justification; they are for
invariants the analysis cannot see, not for bugs.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .rules import (
    REPLICATING_METHODS,
    RULES,
    SEVERITY_ORDER,
    Rule,
    collective_op,
    is_rank_variant,
    walk_no_nested,
)

#: Parameter names assumed to be communicators even without annotation.
COMM_PARAM_NAMES = frozenset({"comm", "subcomm", "world_comm", "local_comm"})

_SUPPRESS_RE = re.compile(r"#\s*spmdlint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*spmdlint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for text or JSON output."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "message": self.message,
        }


class FunctionContext:
    """Analysis context for one function definition."""

    def __init__(self, module: "ModuleContext", node: ast.FunctionDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.comm_names = self._find_comm_params(node)
        self.is_spmd = bool(self.comm_names)
        self.rank_tainted: set[str] = set()
        self.replicated: set[str] = set()
        if self.is_spmd:
            self._build_taint()

    @staticmethod
    def _find_comm_params(node: ast.FunctionDef) -> frozenset[str]:
        names = set()
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = arg.annotation
            ann_text = ast.unparse(ann) if ann is not None else ""
            if arg.arg in COMM_PARAM_NAMES or "Communicator" in ann_text:
                names.add(arg.arg)
        return frozenset(names)

    def _assignments(self) -> Iterator[tuple[list[ast.expr], ast.expr]]:
        for node in walk_no_nested(self.node):
            if isinstance(node, ast.Assign):
                yield node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                yield [node.target], node.value
            elif isinstance(node, (ast.NamedExpr,)):
                yield [node.target], node.value

    def _build_taint(self) -> None:
        # Two fixed-point passes give one level of transitivity each,
        # which covers the assignment chains that occur in practice.
        for _ in range(2):
            for targets, value in self._assignments():
                names = [
                    t.id for t in targets if isinstance(t, ast.Name)
                ]
                if not names:
                    continue
                if is_rank_variant(value, self):
                    self.rank_tainted.update(names)
                elif self._is_replicating_value(value):
                    self.replicated.update(names)

    def _is_replicating_value(self, value: ast.expr) -> bool:
        for sub in ast.walk(value):
            if collective_op(sub, self) in REPLICATING_METHODS:
                return True
        names = [s for s in ast.walk(value) if isinstance(s, ast.Name)]
        return bool(names) and all(n.id in self.replicated for n in names)


class ModuleContext:
    """Parsed module plus suppression map and function contexts."""

    def __init__(self, path: Path, source: str, display_path: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.functions = [
            FunctionContext(self, node)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.FunctionDef)
        ]
        self.suppressions: dict[int, frozenset[str] | None] = {}
        self.skip_file = False
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            if lineno <= 10 and _SKIP_FILE_RE.search(line):
                self.skip_file = True
            m = _SUPPRESS_RE.search(line)
            if m:
                ids = m.group(1)
                self.suppressions[lineno] = (
                    frozenset(s.strip() for s in ids.split(","))
                    if ids
                    else None  # bare ignore: all rules
                )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if self.skip_file:
            return True
        ids = self.suppressions.get(line, frozenset())
        if ids is None:
            return True
        return rule_id in ids


class ProgramContext:
    """All modules of one lint run (for cross-module rules)."""

    def __init__(self, modules: Sequence[ModuleContext]):
        self.modules = list(modules)


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    yield f
        elif p.suffix == ".py":
            yield p


def _selected_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    unknown = [
        r for r in list(select or []) + list(ignore or []) if r not in RULES
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    rules = [RULES[r] for r in select] if select else list(RULES.values())
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


@dataclass
class LintResult:
    """Findings plus bookkeeping from one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    def count_at_least(self, severity: str) -> int:
        floor = SEVERITY_ORDER[severity]
        return sum(
            1 for f in self.findings if SEVERITY_ORDER[f.severity] >= floor
        )

    def to_json(self) -> str:
        by_sev: dict[str, int] = {}
        for f in self.findings:
            by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "summary": {
                    "files_checked": self.files_checked,
                    "total": len(self.findings),
                    "by_severity": by_sev,
                    "parse_errors": self.parse_errors,
                },
            },
            indent=2,
        )

    def format_text(self) -> str:
        lines = [f.format() for f in self.findings]
        for err in self.parse_errors:
            lines.append(f"parse error: {err}")
        noun = "file" if self.files_checked == 1 else "files"
        lines.append(
            f"{len(self.findings)} finding(s) in "
            f"{self.files_checked} {noun}"
        )
        return "\n".join(lines)


def _emit(
    result: LintResult,
    module: ModuleContext,
    rule: Rule,
    node: ast.AST,
    message: str,
) -> None:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    if module.is_suppressed(rule.id, line):
        return
    result.findings.append(
        Finding(
            rule=rule.id,
            severity=rule.severity,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
        )
    )


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Run the registered rules over ``paths`` (files or directories)."""
    rules = _selected_rules(select, ignore)
    result = LintResult()
    modules: list[ModuleContext] = []
    for path in _iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleContext(path, source, display_path=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.parse_errors.append(f"{path}: {exc}")
            continue
        modules.append(module)
        result.files_checked += 1

    program = ProgramContext(modules)
    for rule in rules:
        if rule.scope == "program":
            for module, node, message in rule.check(program):
                _emit(result, module, rule, node, message)
            continue
        for module in modules:
            if rule.scope == "module":
                for node, message in rule.check(module):
                    _emit(result, module, rule, node, message)
            else:  # function scope: SPMD functions only
                for fn in module.functions:
                    if not fn.is_spmd:
                        continue
                    for node, message in rule.check(fn):
                        _emit(result, module, rule, node, message)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
