"""spmdlint engine: AST analysis contexts, rule driver, and reporting.

The engine parses every ``.py`` file under the requested paths, builds a
:class:`ModuleContext` (suppression map, function contexts with
communicator/rank/replication taint), and runs the registered rules from
:mod:`repro.analysis.rules` at their declared scope:

* ``function`` rules run once per SPMD function (a function that takes a
  communicator parameter);
* ``module`` rules run once per module;
* ``program`` rules run once over all modules (cross-module matching,
  e.g. send/recv tags).

Findings can be silenced with a trailing comment on the offending line::

    if comm.rank == 0:
        comm.bcast(x, root=0)  # spmdlint: ignore[SPMD001] -- reason

or for a whole file with ``# spmdlint: skip-file`` in the first ten
lines.  Suppressions should carry a justification; they are for
invariants the analysis cannot see, not for bugs.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .rules import (
    REPLICATING_METHODS,
    RULES,
    SEVERITY_ORDER,
    Rule,
    collective_op,
    is_rank_variant,
    walk_no_nested,
)

#: Parameter names assumed to be communicators even without annotation.
COMM_PARAM_NAMES = frozenset({"comm", "subcomm", "world_comm", "local_comm"})

_SUPPRESS_RE = re.compile(r"#\s*spmdlint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*spmdlint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for text or JSON output."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "message": self.message,
        }


class FunctionContext:
    """Analysis context for one function definition.

    ``comm_names`` are the function's *own* communicator parameters
    (the SPMD-function test the rules key on); ``all_comm_names``
    additionally includes communicators closed over from enclosing
    functions, which is what collective detection inside nested
    helpers needs.  ``interproc_rank_calls`` is filled by the call
    graph's taint fixpoint: names of callees whose return value is
    rank-variant, treated like ``owner_of`` by the local taint pass.
    """

    def __init__(
        self,
        module: "ModuleContext",
        node: ast.FunctionDef,
        qualname: str | None = None,
        class_name: str | None = None,
        is_nested: bool = False,
        enclosing_comm_names: frozenset[str] = frozenset(),
    ):
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = qualname or node.name
        self.class_name = class_name
        self.is_nested = is_nested
        self.comm_names = self._find_comm_params(node)
        self.all_comm_names = self.comm_names | enclosing_comm_names
        self.is_spmd = bool(self.comm_names)
        self.rank_tainted: set[str] = set()
        self.replicated: set[str] = set()
        self.interproc_rank_calls: set[str] = set()
        if self.is_spmd:
            self._build_taint()

    @staticmethod
    def _find_comm_params(node: ast.FunctionDef) -> frozenset[str]:
        names = set()
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = arg.annotation
            ann_text = ast.unparse(ann) if ann is not None else ""
            if arg.arg in COMM_PARAM_NAMES or "Communicator" in ann_text:
                names.add(arg.arg)
        return frozenset(names)

    def _assignments(self) -> Iterator[tuple[list[ast.expr], ast.expr]]:
        for node in walk_no_nested(self.node):
            if isinstance(node, ast.Assign):
                yield node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                yield [node.target], node.value
            elif isinstance(node, (ast.NamedExpr,)):
                yield [node.target], node.value

    def _build_taint(self) -> None:
        # Two fixed-point passes give one level of transitivity each,
        # which covers the assignment chains that occur in practice.
        for _ in range(2):
            for targets, value in self._assignments():
                names = [
                    t.id for t in targets if isinstance(t, ast.Name)
                ]
                if not names:
                    continue
                if is_rank_variant(value, self):
                    self.rank_tainted.update(names)
                elif self._is_replicating_value(value):
                    self.replicated.update(names)

    def _is_replicating_value(self, value: ast.expr) -> bool:
        for sub in ast.walk(value):
            if collective_op(sub, self) in REPLICATING_METHODS:
                return True
        names = [s for s in ast.walk(value) if isinstance(s, ast.Name)]
        return bool(names) and all(n.id in self.replicated for n in names)

    def rebuild_taint(self) -> None:
        """Re-run the local taint pass after interprocedural updates.

        ``rank_tainted``/``replicated`` grow monotonically, so repeated
        calls converge; the call graph drives this to a fixpoint.
        """
        self._build_taint()


class ModuleContext:
    """Parsed module plus suppression map and function contexts."""

    def __init__(self, path: Path, source: str, display_path: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.functions: list[FunctionContext] = []
        self._collect_functions(self.tree, scope=(), comm=frozenset(),
                                in_function=False)
        self.suppressions: dict[int, frozenset[str] | None] = {}
        self.skip_file = False
        self._scan_suppressions()

    def _collect_functions(
        self,
        node: ast.AST,
        scope: tuple[str, ...],
        comm: frozenset[str],
        in_function: bool,
        class_name: str | None = None,
    ) -> None:
        """Scoped walk: records qualified names, nesting, and the
        communicator names visible through closures."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef):
                fn = FunctionContext(
                    self,
                    child,
                    qualname=".".join((*scope, child.name)),
                    class_name=class_name,
                    is_nested=in_function,
                    enclosing_comm_names=comm if in_function else frozenset(),
                )
                self.functions.append(fn)
                self._collect_functions(
                    child,
                    scope=(*scope, child.name),
                    comm=fn.all_comm_names,
                    in_function=True,
                    class_name=None,
                )
            elif isinstance(child, ast.ClassDef):
                self._collect_functions(
                    child,
                    scope=(*scope, child.name),
                    comm=comm,
                    in_function=in_function,
                    class_name=child.name,
                )
            elif isinstance(child, ast.AsyncFunctionDef):
                continue  # async code is not SPMD-scheduled
            else:
                self._collect_functions(
                    child, scope=scope, comm=comm,
                    in_function=in_function, class_name=class_name,
                )

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            if lineno <= 10 and _SKIP_FILE_RE.search(line):
                self.skip_file = True
            m = _SUPPRESS_RE.search(line)
            if m:
                ids = m.group(1)
                self.suppressions[lineno] = (
                    frozenset(s.strip() for s in ids.split(","))
                    if ids
                    else None  # bare ignore: all rules
                )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if self.skip_file:
            return True
        ids = self.suppressions.get(line, frozenset())
        if ids is None:
            return True
        return rule_id in ids


class ProgramContext:
    """All modules of one lint run (for cross-module rules).

    The engine attaches the interprocedural artifacts before any rule
    runs: ``callgraph`` (:class:`repro.analysis.callgraph.CallGraph`)
    and ``analysis`` (:class:`repro.analysis.summaries.SummaryBuilder`),
    so program-scope rules can consume summaries without rebuilding.
    """

    def __init__(self, modules: Sequence[ModuleContext]):
        self.modules = list(modules)
        self.callgraph = None
        self.analysis = None


def _excluded(path: Path, exclude: Sequence[str]) -> bool:
    text = path.as_posix()
    return any(
        fnmatch.fnmatch(text, pat)
        or fnmatch.fnmatch(text, "*/" + pat)  # pattern given repo-relative
        or fnmatch.fnmatch(path.name, pat)
        for pat in exclude
    )


def _iter_python_files(
    paths: Iterable[str | Path], exclude: Sequence[str] = ()
) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                if exclude and _excluded(f, exclude):
                    continue
                yield f
        elif p.suffix == ".py":
            if not (exclude and _excluded(p, exclude)):
                yield p


def _selected_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    unknown = [
        r for r in list(select or []) + list(ignore or []) if r not in RULES
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    rules = [RULES[r] for r in select] if select else list(RULES.values())
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


@dataclass
class LintResult:
    """Findings plus bookkeeping from one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    def count_at_least(self, severity: str) -> int:
        floor = SEVERITY_ORDER[severity]
        return sum(
            1 for f in self.findings if SEVERITY_ORDER[f.severity] >= floor
        )

    def to_json(self) -> str:
        by_sev: dict[str, int] = {}
        for f in self.findings:
            by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "summary": {
                    "files_checked": self.files_checked,
                    "total": len(self.findings),
                    "by_severity": by_sev,
                    "parse_errors": self.parse_errors,
                },
            },
            indent=2,
        )

    def format_text(self) -> str:
        lines = [f.format() for f in self.findings]
        for err in self.parse_errors:
            lines.append(f"parse error: {err}")
        noun = "file" if self.files_checked == 1 else "files"
        lines.append(
            f"{len(self.findings)} finding(s) in "
            f"{self.files_checked} {noun}"
        )
        return "\n".join(lines)

    #: GitHub Actions workflow-command levels per finding severity.
    _GITHUB_LEVELS = {"info": "notice", "warning": "warning", "error": "error"}

    def format_github(self) -> str:
        """GitHub Actions annotation commands (one per finding).

        Emitted on stdout inside an Actions job, these render inline on
        the PR diff.  Properties with commas/newlines are escaped per
        the workflow-command spec.
        """

        def esc(text: str, prop: bool = False) -> str:
            text = text.replace("%", "%25").replace("\r", "%0D")
            text = text.replace("\n", "%0A")
            if prop:
                text = text.replace(":", "%3A").replace(",", "%2C")
            return text

        lines = []
        for f in self.findings:
            level = self._GITHUB_LEVELS.get(f.severity, "warning")
            lines.append(
                f"::{level} file={esc(f.path, prop=True)},"
                f"line={f.line},col={f.col + 1},"
                f"title={esc(f.rule, prop=True)}::{esc(f.message)}"
            )
        for err in self.parse_errors:
            lines.append(f"::error::{esc('parse error: ' + err)}")
        noun = "file" if self.files_checked == 1 else "files"
        lines.append(
            f"{len(self.findings)} finding(s) in "
            f"{self.files_checked} {noun}"
        )
        return "\n".join(lines)


def _emit(
    result: LintResult,
    module: ModuleContext,
    rule: Rule,
    node: ast.AST,
    message: str,
) -> None:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    if module.is_suppressed(rule.id, line):
        return
    result.findings.append(
        Finding(
            rule=rule.id,
            severity=rule.severity,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
        )
    )


def build_program(
    paths: Sequence[str | Path],
    exclude: Sequence[str] = (),
    parse_errors: list[str] | None = None,
) -> ProgramContext:
    """Parse ``paths`` and run the interprocedural analyses.

    Returns a :class:`ProgramContext` whose ``callgraph`` (with the
    rank-taint fixpoint already applied) and ``analysis`` (summary
    builder) are populated — the shared substrate for ``lint_paths``,
    ``--dump-helpers`` and ``--schedule-report``.
    """
    from .callgraph import CallGraph
    from .summaries import SummaryBuilder

    modules: list[ModuleContext] = []
    for path in _iter_python_files(paths, exclude):
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleContext(path, source, display_path=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            if parse_errors is not None:
                parse_errors.append(f"{path}: {exc}")
            continue
        modules.append(module)

    program = ProgramContext(modules)
    program.callgraph = CallGraph(modules)
    # Interprocedural rank taint first: the per-function rules and the
    # summaries both read the augmented ``rank_tainted`` sets.
    program.callgraph.augment_rank_taint()
    program.analysis = SummaryBuilder(program.callgraph)
    return program


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
) -> LintResult:
    """Run the registered rules over ``paths`` (files or directories)."""
    rules = _selected_rules(select, ignore)
    result = LintResult()
    program = build_program(paths, exclude, parse_errors=result.parse_errors)
    modules = program.modules
    result.files_checked = len(modules)
    for rule in rules:
        if rule.scope == "program":
            for module, node, message in rule.check(program):
                _emit(result, module, rule, node, message)
            continue
        for module in modules:
            if rule.scope == "module":
                for node, message in rule.check(module):
                    _emit(result, module, rule, node, message)
            else:  # function scope: SPMD functions only
                for fn in module.functions:
                    if not fn.is_spmd:
                        continue
                    for node, message in rule.check(fn):
                        _emit(result, module, rule, node, message)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
