"""SPMD correctness analysis for the simulated-MPI codebase.

Two cooperating layers:

* **static** — :mod:`repro.analysis.spmdlint`, an AST linter with a
  table-driven rule catalog (:mod:`repro.analysis.rules`) that flags
  collective-schedule divergence, nondeterminism hazards, unmatched
  point-to-point tags, and payload hazards before a run ever hangs;
* **dynamic** — the debug-mode collective-schedule verifier and the
  wait-for-graph deadlock auditor inside :mod:`repro.runtime.comm`
  (enabled per run with ``run_spmd(..., verify_schedule=True)`` or
  globally with ``REPRO_VERIFY_SCHEDULE=1``).

CLI entry point: ``repro-louvain lint src/repro``.  Rule catalog and
rationale: ``docs/ANALYSIS.md``.
"""

from .rules import RULES, SEVERITIES, SEVERITY_ORDER, Rule, rule
from .spmdlint import Finding, LintResult, build_program, lint_paths

__all__ = [
    "RULES",
    "SEVERITIES",
    "SEVERITY_ORDER",
    "Rule",
    "rule",
    "Finding",
    "LintResult",
    "build_program",
    "lint_paths",
]
