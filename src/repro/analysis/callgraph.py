"""Whole-program call graph over the linted modules.

Built once per lint run from the engine's :class:`ModuleContext`
objects, the call graph answers the interprocedural questions the
per-function rules cannot:

* **contains-collective closure** — which functions (transitively)
  execute a collective, computed as a fixpoint over bare-name call
  edges.  The exported :func:`derive_collective_helpers` projection of
  that closure is the machine-derived replacement for the hand-curated
  ``COLLECTIVE_HELPERS`` catalog in :mod:`repro.analysis.rules`
  (rule SPMD005 diffs the two; ``lint --dump-helpers`` prints it);
* **rank-variant returns** — which functions return a value derived
  from the rank id, so assignments from their call sites can be
  rank-tainted in the caller;
* **rank-tainted parameters** — which callee parameters receive a
  rank-variant argument at some call site, so the callee's own
  branches on that parameter become visible to SPMD001/SPMD004.

Call edges are resolved by *bare name* (Python has no static types to
dispatch on), preferring same-module definitions and falling back to
the whole program; ambiguity resolves to the union of candidates, which
over-approximates — exactly the conservative direction a divergence
analysis wants.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

from .rules import (
    COLLECTIVE_METHODS,
    RANK_ATTRIBUTES,
    RANK_CALLS,
    _callable_name,
    is_rank_variant,
    walk_no_nested,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spmdlint import FunctionContext, ModuleContext

#: Attribute names under which objects conventionally store their
#: communicator (``self.comm``, ``self._comm``); used to recognise
#: direct collectives inside methods that hold the comm as state
#: rather than taking it as a parameter.
COMM_ATTRIBUTE_NAMES = frozenset({"comm", "_comm", "subcomm", "world_comm"})


def direct_collective_op(node: ast.AST, fn: "FunctionContext") -> str | None:
    """Op name if ``node`` is a *bare* collective method call.

    Unlike :func:`repro.analysis.rules.collective_op` this never
    matches catalog helpers (the call graph derives the catalog, so it
    must not consume it) but does recognise method receivers that hold
    the communicator as attribute state (``self.comm.allreduce``).
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in COLLECTIVE_METHODS:
        return None
    recv = func.value
    comm_names = fn.all_comm_names
    if isinstance(recv, ast.Name) and recv.id in comm_names:
        return func.attr
    if isinstance(recv, ast.Attribute) and (
        recv.attr in comm_names or recv.attr in COMM_ATTRIBUTE_NAMES
    ):
        return func.attr
    return None


def _control_rank_source(
    expr: ast.AST, extra_calls: frozenset[str] | set[str] = frozenset()
) -> bool:
    """Rank source in a *control position* of ``expr``?

    Does not descend into subscript slices or call arguments — there a
    rank id selects this rank's share of replicated data (``parts[
    comm.rank]``, ``unpack(comm.rank, ...)``) rather than flowing into
    the value's control role.
    """
    stack = [expr]
    while stack:
        n = stack.pop()
        if isinstance(n, ast.Attribute) and n.attr in RANK_ATTRIBUTES:
            return True
        if isinstance(n, ast.Call):
            name = _callable_name(n.func)
            if name in RANK_CALLS or name in extra_calls:
                return True
            continue  # rank ids as call arguments are data selection
        if isinstance(n, ast.Subscript):
            stack.append(n.value)
            continue  # rank ids as indices are data selection
        stack.extend(ast.iter_child_nodes(n))
    return False


def _call_sites(fn: "FunctionContext") -> Iterator[ast.Call]:
    for node in walk_no_nested(fn.node):
        if isinstance(node, ast.Call):
            yield node


class CallGraph:
    """Bare-name call graph plus the interprocedural fixpoints."""

    def __init__(self, modules: Sequence["ModuleContext"]) -> None:
        self.modules = list(modules)
        self.functions: list["FunctionContext"] = [
            fn for m in self.modules for fn in m.functions
        ]
        self._by_name: dict[str, list["FunctionContext"]] = defaultdict(list)
        for fn in self.functions:
            self._by_name[fn.name].append(fn)
        self._callees: dict[int, list[tuple[str, ast.Call]]] = {}
        self._contains: set[int] = set()
        self._rank_returning: set[int] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(
        self, name: str, module: "ModuleContext"
    ) -> list["FunctionContext"]:
        """Candidate definitions for a call to ``name`` seen in ``module``.

        Same-module definitions shadow program-wide ones: a test file's
        local ``worker`` never resolves to another file's ``worker``.
        """
        candidates = self._by_name.get(name, [])
        local = [fn for fn in candidates if fn.module is module]
        return local if local else candidates

    def callee_names(self, fn: "FunctionContext") -> list[tuple[str, ast.Call]]:
        key = id(fn)
        if key not in self._callees:
            out = []
            for call in _call_sites(fn):
                name = _callable_name(call.func)
                if name is not None:
                    out.append((name, call))
            self._callees[key] = out
        return self._callees[key]

    # ------------------------------------------------------------------
    # contains-collective closure
    # ------------------------------------------------------------------
    def _compute_closure(self) -> None:
        if self._closed:
            return
        # Seed: functions with a direct collective call.
        for fn in self.functions:
            for node in walk_no_nested(fn.node):
                if direct_collective_op(node, fn) is not None:
                    self._contains.add(id(fn))
                    break
        # Propagate over call edges until stable.
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if id(fn) in self._contains:
                    continue
                for name, _call in self.callee_names(fn):
                    if any(
                        id(g) in self._contains
                        for g in self.resolve(name, fn.module)
                    ):
                        self._contains.add(id(fn))
                        changed = True
                        break
        self._closed = True

    def contains_collective(self, fn: "FunctionContext") -> bool:
        """True if ``fn`` (transitively) executes a collective."""
        self._compute_closure()
        return id(fn) in self._contains

    def derive_collective_helpers(
        self,
        scope_root: Path | None = None,
        scope_modules: frozenset[int] | None = None,
    ) -> frozenset[str]:
        """The machine-derived ``COLLECTIVE_HELPERS`` catalog.

        A name belongs to the catalog when some top-level (non-nested)
        SPMD function with that name — defined under ``scope_root``
        when given, or in a module whose ``id()`` is in
        ``scope_modules`` when given, anywhere in the program otherwise
        — transitively contains a collective.  Communicator method
        names themselves are excluded (they are
        ``COLLECTIVE_METHODS``).
        """
        self._compute_closure()
        names = set()
        for fn in self.functions:
            if fn.is_nested or not fn.is_spmd:
                continue
            if fn.name in COLLECTIVE_METHODS:
                continue
            if not self.contains_collective(fn):
                continue
            if scope_modules is not None:
                if id(fn.module) not in scope_modules:
                    continue
            elif scope_root is not None:
                try:
                    fn.module.path.resolve().relative_to(scope_root)
                except ValueError:
                    continue
            names.add(fn.name)
        return frozenset(names)

    # ------------------------------------------------------------------
    # interprocedural rank taint
    # ------------------------------------------------------------------
    def _returns_rank_variant(self, fn: "FunctionContext") -> bool:
        """Does ``fn`` return a value derived from the *rank id*?

        Deliberately narrower than the intra-function taint: a rank
        source only counts in a *control position* of the return
        expression.  ``return comm.rank == 0`` (a predicate helper)
        makes every caller's branches rank-variant, but ``return
        parts[comm.rank]`` or ``return unpack(comm.rank, ...)`` merely
        *selects this rank's share* of replicated data — SPMD code
        returns rank-local data by design, and counting those would
        flood the whole program with taint.
        """
        for node in walk_no_nested(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if _control_rank_source(
                    node.value, fn.interproc_rank_calls
                ):
                    return True
        return False

    @staticmethod
    def _param_names(fn: "FunctionContext") -> list[str]:
        args = fn.node.args
        return [a.arg for a in [*args.posonlyargs, *args.args]]

    def _propagate_call_taint(self) -> bool:
        """One round of arg->param and return->assignment taint. Returns
        True if any function's taint grew."""
        changed = False
        for fn in self.functions:
            if not fn.is_spmd:
                continue
            for name, call in self.callee_names(fn):
                candidates = self.resolve(name, fn.module)
                if not candidates:
                    continue
                # return-value taint: calls to rank-returning functions
                # behave like RANK_CALLS in the caller's taint pass.
                if (
                    any(id(g) in self._rank_returning for g in candidates)
                    and name not in fn.interproc_rank_calls
                ):
                    fn.interproc_rank_calls.add(name)
                    changed = True
                # argument taint: rank-variant actuals taint the formal.
                for g in candidates:
                    params = self._param_names(g)
                    offset = 0
                    if params and params[0] in ("self", "cls"):
                        # method-form call: receiver fills self/cls
                        if isinstance(call.func, ast.Attribute):
                            offset = 1
                    for i, arg in enumerate(call.args):
                        slot = i + offset
                        if slot >= len(params):
                            break
                        if (
                            params[slot] not in g.rank_tainted
                            and is_rank_variant(arg, fn)
                        ):
                            g.rank_tainted.add(params[slot])
                            changed = True
                    for kw in call.keywords:
                        if (
                            kw.arg is not None
                            and kw.arg in params
                            and kw.arg not in g.rank_tainted
                            and is_rank_variant(kw.value, fn)
                        ):
                            g.rank_tainted.add(kw.arg)
                            changed = True
        return changed

    def augment_rank_taint(self, max_rounds: int = 10) -> None:
        """Fixpoint of interprocedural rank taint over the program.

        After this, every :class:`FunctionContext`'s ``rank_tainted``
        set and ``interproc_rank_calls`` reflect rank variance flowing
        through call arguments and return values, so the existing
        intraprocedural rules (SPMD001/002) see across function
        boundaries for free.
        """
        for _ in range(max_rounds):
            for fn in self.functions:
                if fn.is_spmd and self._returns_rank_variant(fn):
                    self._rank_returning.add(id(fn))
            changed = self._propagate_call_taint()
            # Re-run the local assignment taint so new param/call taint
            # flows through assignment chains inside each function.
            for fn in self.functions:
                if fn.is_spmd:
                    fn.rebuild_taint()
            if not changed:
                break

    def rank_returning_names(self) -> frozenset[str]:
        """Bare names of functions whose return value is rank-variant."""
        return frozenset(
            fn.name for fn in self.functions if id(fn) in self._rank_returning
        )


def taints_rank(
    expr: ast.AST, extra_calls: frozenset[str] | set[str] = frozenset()
) -> bool:
    """Lexical check: does ``expr`` mention a rank source at all?

    ``extra_calls`` extends the rank-call set (e.g. with names of
    functions the call graph proved rank-returning).
    """
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr in RANK_ATTRIBUTES:
            return True
        if isinstance(sub, ast.Call):
            name = _callable_name(sub.func)
            if name in RANK_CALLS or name in extra_calls:
                return True
    return False


def package_root(path: Path) -> Path | None:
    """Topmost package directory containing ``path``.

    Ascends from the module's directory while an ``__init__.py`` is
    present; returns ``None`` when the module is not inside a package
    (a standalone fixture file scopes to itself).
    """
    d = path.resolve().parent
    if not (d / "__init__.py").exists():
        return None
    while (d.parent / "__init__.py").exists():
        d = d.parent
    return d
