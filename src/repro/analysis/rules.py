"""spmdlint rule catalog: table-driven SPMD correctness checks.

Every rule is a small checker function registered through the
:func:`rule` decorator; the engine (:mod:`repro.analysis.spmdlint`)
builds the per-function analysis context (communicator parameters,
rank-variance taint, replication taint, collective call sites) and hands
it to each checker.  Adding a rule is ~20 lines: write a generator that
yields ``(ast_node, message)`` pairs and decorate it.

Rule identifiers are grouped by family:

* ``SPMD0xx`` — collective-schedule safety (divergence, skipped
  collectives, tag matching);
* ``SPMD1xx`` — determinism (unordered iteration, unseeded RNG,
  ``id()``-derived ordering);
* ``SPMD2xx`` — payload hygiene (objects the payload model cannot
  size deterministically).

The full catalog with rationale lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

#: Severity levels, least to most severe.
SEVERITIES = ("info", "warning", "error")
SEVERITY_ORDER = {name: i for i, name in enumerate(SEVERITIES)}

#: Methods on a communicator object that are synchronizing collectives:
#: every rank must call them, in the same order (``runtime/comm.py``).
COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "exscan",
        "neighbor_alltoall",
        "exchange_roundtrip",
        "split",
    }
)

#: Library functions/methods documented as *collective* (they contain
#: collectives internally, so skipping them on a subset of ranks is the
#: same bug as skipping a bare collective).  Extend freely.
COLLECTIVE_HELPERS = frozenset(
    {
        "remote_lookup",
        "exchange_ghost_values",
        "build_ghost_plan",
        "rebuild_distributed",
        "distributed_coloring",
        "verify_coloring",
        "distributed_components",
        "distributed_num_components",
        "distributed_degree_histogram",
        "distributed_total_weight",
        "distributed_label_counts",
        "merge_global",
        "audit_community_info",
        "audit_partition",
        "audit_ghost_coherence",
        "distributed_louvain",
        "louvain_phase_distributed",
        "incremental_louvain",
        "split_communicator",
        "load_latest",
        "exchange_deltas",
        "_fetch_community_info",
        "_apply_community_deltas",
        "_pull_and_subscribe",
    }
)

#: Collectives whose result is *replicated* on every rank, so names
#: assigned from them are safe to branch on in SPMD code.
REPLICATING_METHODS = frozenset({"allreduce", "bcast", "allgather"})

#: Point-to-point send-side / receive-side call names (tag matching).
SEND_METHODS = frozenset({"send", "isend"})
RECV_METHODS = frozenset({"recv", "irecv"})

#: Attributes whose value differs per rank by definition.
RANK_ATTRIBUTES = frozenset({"rank", "world_rank"})

#: Calls returning per-rank data (ownership lookups).
RANK_CALLS = frozenset({"owner_of", "owner"})

#: ``random``-module functions that draw from an unseeded global state.
UNSEEDED_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
    }
)

#: Payload shapes the wire-size model cannot charge deterministically
#: (see ``runtime/payload.py``): sets have no stable iteration order,
#: generators are consumed by the size estimate itself.
HAZARDOUS_PAYLOAD_CALLS = frozenset({"set", "frozenset", "iter"})


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: str
    summary: str
    scope: str  # "function" | "module" | "program"
    check: Callable[..., Iterator[tuple[ast.AST, str]]]


#: Registry, populated by the :func:`rule` decorator at import time.
RULES: dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str, scope: str = "function"):
    """Register a checker under ``rule_id`` (table-driven extension point)."""
    if severity not in SEVERITY_ORDER:
        raise ValueError(f"unknown severity {severity!r}")

    def deco(fn):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(
            id=rule_id, severity=severity, summary=summary, scope=scope,
            check=fn,
        )
        return fn

    return deco


# ----------------------------------------------------------------------
# Shared AST predicates (pure functions over nodes; contexts supply the
# taint sets)
# ----------------------------------------------------------------------
_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s children without entering nested function/class
    definitions (the caller is responsible for ``node`` itself)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _NESTED_SCOPES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def walk_stmt_subtree(stmt: ast.stmt) -> Iterator[ast.AST]:
    """``stmt`` plus its descendants, staying inside the current scope."""
    if isinstance(stmt, _NESTED_SCOPES):
        return
    yield stmt
    yield from walk_no_nested(stmt)


def _callable_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def collective_op(node: ast.AST, fn) -> str | None:
    """Op name if ``node`` is a collective call in function context ``fn``.

    Two forms count: a :data:`COLLECTIVE_METHODS` method on a
    communicator receiver, and a call to a :data:`COLLECTIVE_HELPERS`
    name that receives the communicator as an argument.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in COLLECTIVE_METHODS:
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id in fn.comm_names:
            return func.attr
        if (
            isinstance(recv, ast.Attribute)
            and recv.attr in fn.comm_names
        ):  # self.comm / ctx.comm
            return func.attr
    name = _callable_name(func)
    if name in COLLECTIVE_HELPERS:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in fn.comm_names:
                return name
        # Method form (obj.remote_lookup(...)) or comm passed indirectly.
        if isinstance(func, ast.Attribute):
            return name
    return None


def is_rank_variant(node: ast.AST, fn) -> bool:
    """True if the expression's value can differ across ranks *because it
    is derived from the rank id* (``comm.rank``, ``owner_of``, or a name
    tainted by them)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in RANK_ATTRIBUTES:
            return True
        if isinstance(sub, ast.Call):
            name = _callable_name(sub.func)
            if name in RANK_CALLS:
                return True
        if isinstance(sub, ast.Name) and sub.id in fn.rank_tainted:
            return True
    return False


def is_replicated_safe(node: ast.AST, fn) -> bool:
    """Conservatively true when every rank must see the same value:
    the expression contains a replicating collective call, or all its
    name leaves are known replicated."""
    for sub in ast.walk(node):
        if collective_op(sub, fn) in REPLICATING_METHODS:
            return True
    names = [s for s in ast.walk(node) if isinstance(s, ast.Name)]
    if not names:
        return False
    return all(n.id in fn.replicated for n in names)


def collect_collective_counts(stmts: Iterable[ast.stmt], fn) -> Counter:
    """Multiset of collective op names in a statement list (no nested defs)."""
    counts: Counter = Counter()
    for stmt in stmts:
        for sub in walk_stmt_subtree(stmt):
            op = collective_op(sub, fn)
            if op is not None:
                counts[op] += 1
    return counts


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _callable_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _iteration_targets(fn) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(loop/comprehension node, iterated expression) pairs."""
    for node in walk_no_nested(fn.node):
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter


# ----------------------------------------------------------------------
# SPMD0xx — collective schedule safety
# ----------------------------------------------------------------------
@rule(
    "SPMD001",
    "error",
    "collective under rank-dependent control flow without a matching "
    "call on the other path",
)
def check_divergent_collective(fn) -> Iterator[tuple[ast.AST, str]]:
    for node in walk_no_nested(fn.node):
        if isinstance(node, ast.If) and is_rank_variant(node.test, fn):
            body = collect_collective_counts(node.body, fn)
            other = collect_collective_counts(node.orelse, fn)
            if body != other:
                missing = (body - other) + (other - body)
                ops = ", ".join(sorted(missing))
                yield node, (
                    f"collective(s) {ops} reachable only under a "
                    "rank-dependent condition; ranks taking the other "
                    "branch will not make the matching call (real MPI: "
                    "deadlock or corrupted collective)"
                )
        elif isinstance(node, (ast.For, ast.While)):
            header = node.iter if isinstance(node, ast.For) else node.test
            if is_rank_variant(header, fn):
                body = collect_collective_counts(node.body, fn)
                if body:
                    ops = ", ".join(sorted(body))
                    yield node, (
                        f"collective(s) {ops} inside a loop whose trip "
                        "count is rank-dependent; ranks will call them "
                        "a different number of times"
                    )


@rule(
    "SPMD002",
    "warning",
    "conditional early return may skip collectives on a subset of ranks",
)
def check_conditional_return(fn) -> Iterator[tuple[ast.AST, str]]:
    coll_lines = sorted(
        node.lineno
        for node in walk_no_nested(fn.node)
        if collective_op(node, fn) is not None
    )
    if not coll_lines:
        return
    for node in walk_no_nested(fn.node):
        if not isinstance(node, ast.If):
            continue
        if is_replicated_safe(node.test, fn):
            continue
        for branch in (node.body, node.orelse):
            for stmt in branch:
                for sub in walk_stmt_subtree(stmt):
                    if isinstance(sub, ast.Return) and any(
                        line > sub.lineno for line in coll_lines
                    ):
                        yield sub, (
                            "return under a condition not proven "
                            "replicated skips later collective call(s) "
                            f"(next at line {min(ln for ln in coll_lines if ln > sub.lineno)}); "
                            "if the condition is rank-local, ranks "
                            "diverge — make the decision collective "
                            "(e.g. allreduce a flag) or suppress with "
                            "a justification"
                        )


@rule(
    "SPMD003",
    "warning",
    "send/recv tag literal with no matching peer call",
    scope="program",
)
def check_tag_matching(program) -> Iterator[tuple[ast.AST, str]]:
    sends: list[tuple[object, ast.AST, int]] = []
    recvs: list[tuple[object, ast.AST, int]] = []

    def literal_tag(call: ast.Call, kw_names: tuple[str, ...], pos: int):
        for kw in call.keywords:
            if kw.arg in kw_names and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, int):
                    return kw.value.value
        if len(call.args) > pos and isinstance(call.args[pos], ast.Constant):
            v = call.args[pos].value
            if isinstance(v, int):
                return v
        return None

    for module in program.modules:
        for fn in module.functions:
            if not fn.is_spmd:
                continue
            for node in walk_no_nested(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _callable_name(node.func)
                if name in SEND_METHODS:
                    tag = literal_tag(node, ("tag",), 2)
                    if tag is not None:
                        sends.append((module, node, tag))
                elif name in RECV_METHODS:
                    tag = literal_tag(node, ("tag",), 1)
                    if tag is not None:
                        recvs.append((module, node, tag))
                elif name == "sendrecv":
                    stag = literal_tag(node, ("sendtag",), 3)
                    rtag = literal_tag(node, ("recvtag",), 4)
                    if stag is not None:
                        sends.append((module, node, stag))
                    if rtag is not None:
                        recvs.append((module, node, rtag))

    send_tags = {t for _, _, t in sends}
    recv_tags = {t for _, _, t in recvs}
    for module, node, tag in sends:
        if tag not in recv_tags:
            yield module, node, (
                f"send with tag {tag} has no recv using that tag "
                "anywhere in the linted code — the message can never "
                "be matched (receiver times out)"
            )
    for module, node, tag in recvs:
        if tag not in send_tags:
            yield module, node, (
                f"recv with tag {tag} has no send using that tag "
                "anywhere in the linted code — the receive blocks "
                "until the deadlock timeout"
            )


# ----------------------------------------------------------------------
# SPMD1xx — determinism
# ----------------------------------------------------------------------
@rule(
    "SPMD101",
    "error",
    "iteration over a set has no deterministic order",
)
def check_set_iteration(fn) -> Iterator[tuple[ast.AST, str]]:
    for node, it in _iteration_targets(fn):
        if _is_set_expression(it):
            yield node, (
                "iterating a set/frozenset: element order is not "
                "deterministic across processes; wrap in sorted(...) "
                "(membership tests on sets are fine)"
            )


@rule(
    "SPMD102",
    "error",
    "unseeded random number generator in SPMD code",
    scope="module",
)
def check_unseeded_rng(module) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # np.random.default_rng() with no seed argument.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            yield node, (
                "np.random.default_rng() without a seed draws OS "
                "entropy — results differ between runs and ranks; "
                "pass a seed (see core.heuristics.make_rank_rng)"
            )
        # Legacy numpy global-state API (np.random.rand etc.).
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.attr not in ("default_rng", "SeedSequence", "Generator")
        ):
            yield node, (
                f"np.random.{func.attr} uses the unseeded global "
                "RandomState; use a seeded np.random.default_rng(seed)"
            )
        # Stdlib random module-level functions (shared hidden state).
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr in UNSEEDED_RANDOM_FUNCS
        ):
            yield node, (
                f"random.{func.attr} draws from the process-global "
                "generator; use random.Random(seed) or a seeded numpy "
                "Generator"
            )


@rule(
    "SPMD103",
    "error",
    "ordering or keying derived from id() is address-dependent",
    scope="module",
)
def check_id_ordering(module) -> Iterator[tuple[ast.AST, str]]:
    def uses_id(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id == "id":
                return True
        return False

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = _callable_name(node.func)
            if name in ("sorted", "min", "max", "sort"):
                for kw in node.keywords:
                    if kw.arg == "key" and uses_id(kw.value):
                        yield node, (
                            "sort key derived from id(): CPython object "
                            "addresses vary run to run, so the order is "
                            "not reproducible"
                        )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and isinstance(key, ast.Call) and \
                        _callable_name(key.func) == "id":
                    yield node, (
                        "dict keyed by id(): the keying (and any "
                        "iteration over it) is address-dependent and "
                        "not reproducible"
                    )


@rule(
    "SPMD104",
    "info",
    "dict-ordered iteration in SPMD code (order is insertion order — "
    "verify it is rank-invariant, or iterate sorted(...))",
)
def check_dict_iteration(fn) -> Iterator[tuple[ast.AST, str]]:
    for node, it in _iteration_targets(fn):
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("items", "keys", "values")
            and not it.args
        ):
            yield node, (
                f"iteration over .{it.func.attr}() follows dict "
                "insertion order; if ranks populate the dict in "
                "different orders and the loop feeds a payload or "
                "accumulation, results diverge — iterate "
                "sorted(...) to pin the order"
            )


# ----------------------------------------------------------------------
# SPMD2xx — payload hygiene
# ----------------------------------------------------------------------
#: Comm calls whose first argument is the outgoing payload.
PAYLOAD_ARG0_METHODS = frozenset(
    {
        "send",
        "isend",
        "sendrecv",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "scan",
        "exscan",
        "neighbor_alltoall",
        "exchange_roundtrip",
    }
)


@rule(
    "SPMD201",
    "error",
    "communication payload has no registered deterministic wire size",
)
def check_payload_hazard(fn) -> Iterator[tuple[ast.AST, str]]:
    for node in walk_no_nested(fn.node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in PAYLOAD_ARG0_METHODS
            and (
                (isinstance(func.value, ast.Name)
                 and func.value.id in fn.comm_names)
                or (isinstance(func.value, ast.Attribute)
                    and func.value.attr in fn.comm_names)
            )
        ):
            continue
        payload = node.args[0]
        if isinstance(payload, (ast.Set, ast.SetComp)) or (
            isinstance(payload, ast.Call)
            and _callable_name(payload.func) in HAZARDOUS_PAYLOAD_CALLS
        ):
            yield payload, (
                "sending a set: iteration order (and therefore the "
                "packed wire image) is nondeterministic; send a sorted "
                "array/list, or register a sizer via "
                "runtime.payload.register_payload_type"
            )
        elif isinstance(payload, ast.GeneratorExp):
            yield payload, (
                "sending a generator: the payload size estimate "
                "consumes it and the receiver sees an exhausted "
                "iterator; materialise a list/array first"
            )
